//! Quickstart: the full LCRB pipeline on a hand-built toy network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a two-community directed graph, starts a rumor in one
//! community, opens a [`Solver`] session, solves LCRB-D with SCBG
//! (batched alongside a max-degree baseline via `solve_many`), and
//! verifies with a DOAM simulation that the rumor never escapes.

use lcrb_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A network with two communities:
    //   community 0 (the office):   0, 1, 2, 3
    //   community 1 (the neighbors): 4, 5, 6, 7
    // The office gossips internally, and nodes 2 and 3 talk to the
    // neighbor community.
    let mut g = DiGraph::with_nodes(8);
    for (u, v) in [
        // dense office chatter
        (0, 1),
        (1, 2),
        (2, 0),
        (1, 3),
        (3, 1),
        (0, 3),
        // escape routes to the neighbors
        (2, 4),
        (3, 5),
        // neighbor-side chatter
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
    ] {
        g.add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    let partition = Partition::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]);

    // A rumor starts at node 0; a solver session owns the instance
    // and caches the artifacts every query shares. Solves go through
    // `&self`, so one session can serve many callers at once.
    let instance = RumorBlockingInstance::new(g, partition, 0, vec![NodeId::new(0)])?;
    let solver = Solver::new(instance);

    // Stage 1 of both algorithms: find the bridge ends.
    let bridges = find_bridge_ends(solver.instance(), BridgeEndRule::WithinCommunity);
    println!("bridge ends: {:?}", bridges.nodes);

    // Stage 2 (LCRB-D): SCBG picks the least-cost protector set. The
    // batched API answers the max-degree baseline in the same call —
    // results come back in request order.
    let batch = [
        SolveRequest::scbg(),
        SolveRequest::heuristic(Algorithm::MaxDegree, 2),
    ];
    let mut reports = solver.solve_many(&batch).into_iter();
    let report = reports.next().expect("one report per request")?;
    let baseline = reports.next().expect("one report per request")?;
    let SolveDetail::Scbg(solution) = &report.detail else {
        unreachable!("an SCBG request carries an SCBG detail");
    };
    println!(
        "scbg selected {} protector(s): {:?} (candidate pool {})",
        report.protectors.len(),
        report.protectors,
        solution.candidate_count
    );
    println!(
        "max-degree baseline would spend {} protector(s): {:?}",
        baseline.protectors.len(),
        baseline.protectors
    );
    assert!(solution.is_complete());

    // Verify: simulate DOAM with and without protection.
    let instance = solver.instance();
    let unprotected =
        DoamModel::default().run_deterministic(instance.graph(), &instance.seed_sets(vec![])?);
    let protected = DoamModel::default().run_deterministic(
        instance.graph(),
        &instance.seed_sets(report.protectors.clone())?,
    );
    println!(
        "infected without protection: {} / {}",
        unprotected.infected_count(),
        instance.graph().node_count()
    );
    println!(
        "infected with protection:    {} / {}",
        protected.infected_count(),
        instance.graph().node_count()
    );
    for v in &bridges.nodes {
        assert!(!protected.status(*v).is_infected());
    }
    println!("every bridge end is protected — the rumor never left its community.");
    Ok(())
}
