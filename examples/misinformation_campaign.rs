//! A realistic misinformation-response scenario on an Enron-like
//! corporate email network.
//!
//! ```text
//! cargo run --release --example misinformation_campaign
//! ```
//!
//! The communications team learns a rumor is circulating in one
//! department. This walkthrough runs the *operational* pipeline a
//! downstream user would run: detect the community structure with
//! Louvain (no planted ground truth used), locate the department, and
//! compare response strategies — SCBG versus contacting the rumor's
//! direct contacts (Proximity) versus briefing the most-connected
//! employees (MaxDegree) — all at the same staffing budget.

use lcrb::evaluate::evaluate_protector_sets;
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10% scale model of the Enron email network (~3.7k nodes).
    let ds = enron_like(&DatasetConfig::new(0.10, 2024));
    println!("network: {}", ds.summary());

    // Operational step 1: detect the community structure (the paper
    // uses Blondel et al. Louvain, §VI-B).
    let detected = louvain(&ds.graph, &LouvainConfig::default());
    println!(
        "louvain: {} communities, modularity {:.3}",
        detected.partition.community_count(),
        detected.modularity
    );

    // Step 2: the rumor was observed in a department of roughly 260
    // people; pick the detected community closest to that size.
    let dept = detected
        .partition
        .community_closest_to_size(260)
        .expect("network has communities");
    let dept_size = detected.partition.community_sizes()[dept];
    println!("rumor department: community {dept} with {dept_size} members");

    // Step 3: five employees are known to be spreading the rumor.
    let mut rng = SmallRng::seed_from_u64(99);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        detected.partition.clone(),
        dept,
        5,
        &mut rng,
    )?;
    let bridges = find_bridge_ends(&instance, BridgeEndRule::WithinCommunity);
    println!(
        "{} bridge ends connect the department to the rest of the company",
        bridges.len()
    );

    // Step 4: SCBG computes the cheapest full-coverage briefing list.
    let solution = scbg(&instance, &ScbgConfig::default());
    let budget = solution.protectors.len();
    println!("scbg needs {budget} employees briefed with the facts");

    // Step 5: compare against the intuitive alternatives at the SAME
    // staffing budget, under the DOAM (broadcast) model.
    let sets = vec![
        ("scbg".to_owned(), solution.protectors.clone()),
        (
            "proximity".to_owned(),
            ProximitySelector.select(&instance, budget, &mut rng),
        ),
        (
            "max-degree".to_owned(),
            MaxDegreeSelector.select(&instance, budget, &mut rng),
        ),
        ("do-nothing".to_owned(), Vec::new()),
    ];
    let report = evaluate_protector_sets(
        &instance,
        &DoamModel::default(),
        &sets,
        &MonteCarloConfig {
            runs: 1,
            base_seed: 7,
            threads: 1,
        },
    )?;
    println!("\nemployees reached by the rumor, per response strategy:");
    println!("{}", report.render_table());

    let final_counts: Vec<(String, f64)> = report
        .runs
        .iter()
        .map(|r| (r.name.clone(), r.averaged.mean_final_infected()))
        .collect();
    let scbg_final = final_counts[0].1;
    for (name, count) in &final_counts[1..] {
        println!(
            "scbg contains the rumor to {scbg_final:.0} people; {name} lets it reach {count:.0}"
        );
    }
    Ok(())
}
