//! Rumor forensics: locating the originators after the fact.
//!
//! ```text
//! cargo run --release --example rumor_forensics
//! ```
//!
//! The paper's conclusion points at "the problem of locating rumor
//! originators" as an open direction. This walkthrough simulates an
//! outbreak, hands the responder only the infection snapshot, and
//! uses the distance-centrality ranker (`lcrb::source`) to identify
//! the culprit — then shows why finding the source matters by
//! re-running containment with the inferred seed.

use lcrb::source::rank_sources;
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = hep_like(&DatasetConfig::new(0.08, 33));
    println!("network: {}", ds.summary());

    // The outbreak: one originator, caught after 3 broadcast hops.
    let mut rng = SmallRng::seed_from_u64(12);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        1,
        &mut rng,
    )?;
    let true_source = instance.rumor_seeds()[0];
    let outbreak = lcrb_repro::diffusion::DoamModel::new(3)
        .run_deterministic(instance.graph(), &instance.seed_sets(vec![])?);
    let snapshot = outbreak.infected_nodes();
    println!(
        "observed snapshot: {} infected nodes after 3 hops (true source hidden: node {true_source})",
        snapshot.len()
    );

    // Forensics: rank the suspected community's members by how well
    // they explain the snapshot.
    let suspects = instance.rumor_community_members();
    let ranking = rank_sources(instance.graph(), &snapshot, &suspects);
    let best = ranking.best().expect("candidates were supplied");
    let rank_of_truth = ranking
        .rank_of(true_source)
        .expect("the true source is in the suspected community");
    println!(
        "ranker's verdict: node {best} (true source actually ranked #{} of {})",
        rank_of_truth + 1,
        suspects.len()
    );
    for (i, score) in ranking.ranked.iter().take(5).enumerate() {
        println!(
            "  #{:<2} node {:>5}  unreachable {}  eccentricity {}  total distance {}",
            i + 1,
            score.candidate.to_string(),
            score.unreachable,
            score.eccentricity,
            score.total_distance
        );
    }

    // Why it matters: containment planned against the *inferred*
    // source still blocks the real outbreak when the inference is
    // close (bridge ends barely move for nearby sources).
    let inferred_instance = RumorBlockingInstance::new(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        vec![best],
    )?;
    let plan = scbg(&inferred_instance, &ScbgConfig::default());
    let replay = DoamModel::default().run_deterministic(
        instance.graph(),
        &instance.seed_sets(
            plan.protectors
                .iter()
                .copied()
                .filter(|p| *p != true_source)
                .collect(),
        )?,
    );
    let true_bridges = find_bridge_ends(&instance, BridgeEndRule::WithinCommunity);
    let saved = true_bridges
        .nodes
        .iter()
        .filter(|&&v| !replay.status(v).is_infected())
        .count();
    println!(
        "containment planned from the inferred source protects {saved}/{} of the real bridge ends",
        true_bridges.len()
    );
    Ok(())
}
