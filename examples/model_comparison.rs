//! Comparing the same protector set across diffusion models.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```
//!
//! The paper's conclusion invites studying LCRB "under other
//! influence diffusion models". This example seeds one instance,
//! solves it with SCBG, and measures the containment the same
//! protector set achieves under all four models implemented here:
//! OPOAO, DOAM, competitive IC, and competitive LT.

use lcrb_repro::diffusion::{CompetitiveIcModel, CompetitiveLtModel, CompetitiveSisModel};
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn containment<M: TwoCascadeModel + Sync>(
    name: &str,
    model: &M,
    instance: &RumorBlockingInstance,
    protectors: &[NodeId],
    bridge_ends: &[NodeId],
) -> Result<(), Box<dyn std::error::Error>> {
    let mc = MonteCarloConfig {
        runs: 200,
        base_seed: 5,
        threads: 0,
    };
    let without = monte_carlo(model, instance.graph(), &instance.seed_sets(vec![])?, &mc);
    let with = monte_carlo(
        model,
        instance.graph(),
        &instance.seed_sets(protectors.to_vec())?,
        &mc,
    );
    // How many bridge ends stay safe on average is what LCRB cares
    // about; re-run one representative simulation to count them.
    let mut rng = SmallRng::seed_from_u64(11);
    let outcome = model.run(
        instance.graph(),
        &instance.seed_sets(protectors.to_vec())?,
        &mut rng,
    );
    let safe = bridge_ends
        .iter()
        .filter(|&&v| !outcome.status(v).is_infected())
        .count();
    println!(
        "{name:>15}: mean infected {:7.1} -> {:7.1}  (bridge ends safe in sample run: {safe}/{})",
        without.mean_final_infected(),
        with.mean_final_infected(),
        bridge_ends.len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = hep_like(&DatasetConfig::new(0.10, 77));
    println!("network: {}", ds.summary());
    let mut rng = SmallRng::seed_from_u64(3);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        3,
        &mut rng,
    )?;
    let solution = scbg(&instance, &ScbgConfig::default());
    println!(
        "instance: {} rumor seeds, {} bridge ends, scbg picked {} protectors\n",
        instance.rumor_seeds().len(),
        solution.bridge_ends.len(),
        solution.protectors.len()
    );

    let bridge_ends = &solution.bridge_ends.nodes;
    let protectors = &solution.protectors;
    containment(
        "doam",
        &DoamModel::default(),
        &instance,
        protectors,
        bridge_ends,
    )?;
    containment(
        "opoao",
        &OpoaoModel::default(),
        &instance,
        protectors,
        bridge_ends,
    )?;
    containment(
        "competitive-ic",
        &CompetitiveIcModel::new(0.15)?,
        &instance,
        protectors,
        bridge_ends,
    )?;
    containment(
        "competitive-lt",
        &CompetitiveLtModel::default(),
        &instance,
        protectors,
        bridge_ends,
    )?;

    // Bonus: the non-progressive SIS view (Trpevski et al., related
    // work) — prevalence with and without the protector campaign.
    let sis = CompetitiveSisModel::new(0.2, 0.35, 0.25, 60)?;
    let mut rng = SmallRng::seed_from_u64(17);
    let quiet = sis.run(instance.graph(), &instance.seed_sets(vec![])?, &mut rng);
    let fought = sis.run(
        instance.graph(),
        &instance.seed_sets(protectors.to_vec())?,
        &mut rng,
    );
    println!(
        "{:>15}: endemic infected {:>7} -> {:>7}  (non-progressive prevalence after 60 steps)",
        "competitive-sis",
        quiet.final_infected(),
        fought.final_infected()
    );

    println!(
        "\nthe scbg cover is provably exact under DOAM; under the stochastic models\n\
         the same set still blocks most escapes but carries no guarantee — the\n\
         behaviour the paper's LCRB-P/LCRB-D split formalizes.\n\
         note the competitive-LT line: protector weight counts toward the shared\n\
         activation threshold, so adding protectors can *increase* total\n\
         activations — a concrete instance of the non-submodular models the\n\
         paper's conclusion flags as future work."
    );
    Ok(())
}
