//! How much protection does each additional protector buy?
//!
//! ```text
//! cargo run --release --example protection_budget [mc|sketch]
//! ```
//!
//! Runs the LCRB-P greedy (Algorithm 1, with CELF) in budget mode and
//! prints the marginal value of every pick — the diminishing-returns
//! curve that Theorem 1's submodularity guarantees — then solves the
//! α-target variants the problem definition asks for.
//!
//! The optional argument picks the σ̂ estimator behind the greedy:
//! `mc` (default) evaluates protector sets on fixed Monte-Carlo
//! realizations; `sketch` switches to the RR-sketch estimator, which
//! trades a one-time sampling pass for much cheaper per-set queries.

use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let estimator = match std::env::args().nth(1).as_deref() {
        None | Some("mc") => Estimator::MonteCarlo,
        Some("sketch") => Estimator::Sketch(SketchParams::default()),
        Some(other) => {
            return Err(format!("unknown estimator {other:?} (expected mc or sketch)").into())
        }
    };
    println!(
        "estimator: {}",
        match estimator {
            Estimator::MonteCarlo => "monte carlo",
            Estimator::Sketch(_) => "rr sketch",
        }
    );
    let ds = hep_like(&DatasetConfig::new(0.08, 5));
    println!("network: {}", ds.summary());
    let mut rng = SmallRng::seed_from_u64(21);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        2,
        &mut rng,
    )?;

    let config = GreedyConfig {
        realizations: 32,
        candidates: CandidatePool::BackwardRadius(2),
        master_seed: 9,
        estimator,
        ..GreedyConfig::default()
    };

    // Budget sweep: watch σ̂ climb with diminishing returns.
    let budget = 12;
    let selection = greedy_with_budget(&instance, budget, &config)?;
    let total_bridges = selection.bridge_ends.len() as f64;
    println!(
        "{} bridge ends; σ̂ after each greedy pick (expected bridge ends kept safe):",
        selection.bridge_ends.len()
    );
    let mut previous = 0.0;
    for (i, (&node, &sigma)) in selection
        .protectors
        .iter()
        .zip(&selection.sigma_history)
        .enumerate()
    {
        println!(
            "  pick {:>2}: node {:>5}  σ̂ = {:6.2} ({:5.1}% of |B|)  marginal +{:.2}",
            i + 1,
            node.to_string(),
            sigma,
            100.0 * sigma / total_bridges,
            sigma - previous
        );
        previous = sigma;
    }
    println!(
        "  ({} σ̂ evaluations thanks to CELF lazy evaluation)\n",
        selection.evaluations
    );

    // α-target mode: the LCRB-P problem statement.
    for alpha in [0.5, 0.8, 0.95] {
        let sel = greedy_lcrb_p(&instance, &GreedyConfig { alpha, ..config })?;
        println!(
            "alpha = {alpha:4.2}: target σ̂ >= {:6.2} -> {} protectors, achieved {:6.2} ({})",
            sel.target,
            sel.protectors.len(),
            sel.achieved,
            if sel.target_met { "met" } else { "NOT met" }
        );
    }
    Ok(())
}
