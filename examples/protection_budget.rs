//! How much protection does each additional protector buy?
//!
//! ```text
//! cargo run --release --example protection_budget \
//!     [--estimator mc|sketch] [--max-sims N] [--deadline-ms MS]
//! ```
//!
//! Opens a [`Solver`] session, runs the LCRB-P greedy (Algorithm 1,
//! with CELF) in budget mode, and prints the marginal value of every
//! pick — the diminishing-returns curve that Theorem 1's
//! submodularity guarantees — then solves the α-target variants the
//! problem definition asks for. Because every query goes through the
//! same session, the α solves reuse the bridge ends, the estimator
//! state, and the CELF trajectory the budget sweep already paid for;
//! the cache counters printed at the end show the reuse.
//!
//! The `--estimator` flag picks the σ̂ estimator behind the greedy:
//! `mc` (default) evaluates protector sets on fixed Monte-Carlo
//! realizations; `sketch` switches to the RR-sketch estimator, which
//! trades a one-time sampling pass for much cheaper per-set queries.
//!
//! `--max-sims` caps the Monte-Carlo simulation budget (a
//! deterministic work-unit cap: the solve degrades to the same prefix
//! on every run) and `--deadline-ms` attaches an advisory wall-clock
//! deadline; either way a starved solve reports `Completion::Degraded`
//! instead of failing.

use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Options {
    estimator: Estimator,
    budget: RunBudget,
}

fn parse_options() -> Result<Options, String> {
    let mut estimator = Estimator::MonteCarlo;
    let mut budget = RunBudget::unlimited();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
            None => (flag, None),
        };
        let value = match inline {
            Some(v) => v,
            None => match args.next() {
                Some(v) => v,
                None => return Err(format!("{name} needs a value")),
            },
        };
        match name.as_str() {
            "--estimator" => {
                estimator = match value.as_str() {
                    "mc" => Estimator::MonteCarlo,
                    "sketch" => Estimator::Sketch(SketchParams::default()),
                    other => {
                        return Err(format!(
                            "unknown estimator {other:?} (expected mc or sketch)"
                        ))
                    }
                }
            }
            "--max-sims" => {
                let n: u64 = value
                    .parse()
                    .map_err(|e| format!("--max-sims expects a count: {e}"))?;
                budget = budget.with_max_sims(n);
            }
            "--deadline-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("--deadline-ms expects milliseconds: {e}"))?;
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            other => {
                return Err(format!(
                "unknown argument {other:?} (expected --estimator, --max-sims, or --deadline-ms)"
            ))
            }
        }
    }
    Ok(Options { estimator, budget })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Options { estimator, budget } = parse_options()?;
    println!(
        "estimator: {}",
        match estimator {
            Estimator::MonteCarlo => "monte carlo",
            Estimator::Sketch(_) => "rr sketch",
        }
    );
    let ds = hep_like(&DatasetConfig::new(0.08, 5));
    println!("network: {}", ds.summary());
    let mut rng = SmallRng::seed_from_u64(21);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        2,
        &mut rng,
    )?;

    let solver = Solver::with_config(instance, SolverConfig { master_seed: 9 });
    let base = SolveRequest {
        realizations: 32,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        budget,
        ..SolveRequest::greedy_budget(0)
    };

    // Budget sweep: watch σ̂ climb with diminishing returns.
    let picks = 12;
    let report = solver.solve(&base.clone().with_stop(StopRule::Budget(picks)))?;
    if let Completion::Degraded {
        checkpoints_done,
        checkpoints_total,
        reason,
    } = report.completion
    {
        println!(
            "degraded solve: {reason} after {checkpoints_done}/{checkpoints_total} checkpoints"
        );
    }
    let SolveDetail::Greedy(selection) = &report.detail else {
        unreachable!("a greedy request carries a greedy detail");
    };
    let total_bridges = selection.bridge_ends.len() as f64;
    println!(
        "{} bridge ends; σ̂ after each greedy pick (expected bridge ends kept safe):",
        selection.bridge_ends.len()
    );
    let mut previous = 0.0;
    for (i, (&node, &sigma)) in report
        .protectors
        .iter()
        .zip(&selection.sigma_history)
        .enumerate()
    {
        println!(
            "  pick {:>2}: node {:>5}  σ̂ = {:6.2} ({:5.1}% of |B|)  marginal +{:.2}",
            i + 1,
            node.to_string(),
            sigma,
            100.0 * sigma / total_bridges,
            sigma - previous
        );
        previous = sigma;
    }
    println!(
        "  ({} σ̂ evaluations thanks to CELF lazy evaluation)\n",
        selection.evaluations
    );

    // α-target mode: the LCRB-P problem statement. The three targets
    // go through `solve_many` as one batch — each resumes the
    // session's cached trajectory instead of starting cold, and the
    // cache-counter delta around the batch shows the reuse.
    let alphas = [0.5, 0.8, 0.95];
    let batch = alphas.map(|alpha| base.clone().with_stop(StopRule::Alpha(alpha)));
    let before = solver.cache_stats();
    let reports = solver.solve_many(&batch);
    let batch_delta = solver.cache_stats().delta_since(&before);
    for (alpha, report) in alphas.iter().zip(reports) {
        let report = report?;
        let SolveDetail::Greedy(sel) = &report.detail else {
            unreachable!("a greedy request carries a greedy detail");
        };
        println!(
            "alpha = {alpha:4.2}: target σ̂ >= {:6.2} -> {} protectors, achieved {:6.2} ({}; {} new σ̂ evaluations)",
            sel.target,
            report.protectors.len(),
            sel.achieved,
            if sel.target_met { "met" } else { "NOT met" },
            sel.evaluations,
        );
    }
    println!(
        "alpha batch: {} cache hits / {} misses across {} batched solves",
        batch_delta.hits(),
        batch_delta.misses(),
        alphas.len()
    );
    let stats = solver.cache_stats();
    println!(
        "\nsession cache: {} hits / {} misses across {} solves",
        stats.hits(),
        stats.misses(),
        4
    );
    Ok(())
}
