//! How much protection does each additional protector buy?
//!
//! ```text
//! cargo run --release --example protection_budget [--estimator mc|sketch]
//! ```
//!
//! Opens a [`Solver`] session, runs the LCRB-P greedy (Algorithm 1,
//! with CELF) in budget mode, and prints the marginal value of every
//! pick — the diminishing-returns curve that Theorem 1's
//! submodularity guarantees — then solves the α-target variants the
//! problem definition asks for. Because every query goes through the
//! same session, the α solves reuse the bridge ends, the estimator
//! state, and the CELF trajectory the budget sweep already paid for;
//! the cache counters printed at the end show the reuse.
//!
//! The `--estimator` flag picks the σ̂ estimator behind the greedy:
//! `mc` (default) evaluates protector sets on fixed Monte-Carlo
//! realizations; `sketch` switches to the RR-sketch estimator, which
//! trades a one-time sampling pass for much cheaper per-set queries.

use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn parse_estimator() -> Result<Estimator, String> {
    let mut args = std::env::args().skip(1);
    let value = match args.next().as_deref() {
        None => None,
        Some("--estimator") => match args.next() {
            Some(v) => Some(v),
            None => return Err("--estimator needs a value (mc or sketch)".to_owned()),
        },
        Some(flag) => match flag.strip_prefix("--estimator=") {
            Some(v) => Some(v.to_owned()),
            None => return Err(format!("unknown argument {flag:?} (expected --estimator)")),
        },
    };
    match value.as_deref() {
        None | Some("mc") => Ok(Estimator::MonteCarlo),
        Some("sketch") => Ok(Estimator::Sketch(SketchParams::default())),
        Some(other) => Err(format!(
            "unknown estimator {other:?} (expected mc or sketch)"
        )),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let estimator = parse_estimator()?;
    println!(
        "estimator: {}",
        match estimator {
            Estimator::MonteCarlo => "monte carlo",
            Estimator::Sketch(_) => "rr sketch",
        }
    );
    let ds = hep_like(&DatasetConfig::new(0.08, 5));
    println!("network: {}", ds.summary());
    let mut rng = SmallRng::seed_from_u64(21);
    let instance = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        2,
        &mut rng,
    )?;

    let solver = Solver::with_config(instance, SolverConfig { master_seed: 9 });
    let base = SolveRequest {
        realizations: 32,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        ..SolveRequest::greedy_budget(0)
    };

    // Budget sweep: watch σ̂ climb with diminishing returns.
    let budget = 12;
    let report = solver.solve(&base.with_stop(StopRule::Budget(budget)))?;
    let SolveDetail::Greedy(selection) = &report.detail else {
        unreachable!("a greedy request carries a greedy detail");
    };
    let total_bridges = selection.bridge_ends.len() as f64;
    println!(
        "{} bridge ends; σ̂ after each greedy pick (expected bridge ends kept safe):",
        selection.bridge_ends.len()
    );
    let mut previous = 0.0;
    for (i, (&node, &sigma)) in report
        .protectors
        .iter()
        .zip(&selection.sigma_history)
        .enumerate()
    {
        println!(
            "  pick {:>2}: node {:>5}  σ̂ = {:6.2} ({:5.1}% of |B|)  marginal +{:.2}",
            i + 1,
            node.to_string(),
            sigma,
            100.0 * sigma / total_bridges,
            sigma - previous
        );
        previous = sigma;
    }
    println!(
        "  ({} σ̂ evaluations thanks to CELF lazy evaluation)\n",
        selection.evaluations
    );

    // α-target mode: the LCRB-P problem statement. The three targets
    // go through `solve_many` as one batch — each resumes the
    // session's cached trajectory instead of starting cold, and the
    // cache-counter delta around the batch shows the reuse.
    let alphas = [0.5, 0.8, 0.95];
    let batch = alphas.map(|alpha| base.with_stop(StopRule::Alpha(alpha)));
    let before = solver.cache_stats();
    let reports = solver.solve_many(&batch);
    let batch_delta = solver.cache_stats().delta_since(&before);
    for (alpha, report) in alphas.iter().zip(reports) {
        let report = report?;
        let SolveDetail::Greedy(sel) = &report.detail else {
            unreachable!("a greedy request carries a greedy detail");
        };
        println!(
            "alpha = {alpha:4.2}: target σ̂ >= {:6.2} -> {} protectors, achieved {:6.2} ({}; {} new σ̂ evaluations)",
            sel.target,
            report.protectors.len(),
            sel.achieved,
            if sel.target_met { "met" } else { "NOT met" },
            sel.evaluations,
        );
    }
    println!(
        "alpha batch: {} cache hits / {} misses across {} batched solves",
        batch_delta.hits(),
        batch_delta.misses(),
        alphas.len()
    );
    let stats = solver.cache_stats();
    println!(
        "\nsession cache: {} hits / {} misses across {} solves",
        stats.hits(),
        stats.misses(),
        4
    );
    Ok(())
}
