//! Calibration tests: the synthetic stand-ins must match the
//! statistics the paper reports for its datasets (§VI-A), because
//! those statistics are exactly what the substitution argument in
//! DESIGN.md §3 relies on.

use lcrb_repro::datasets::{enron_like, enron_stats, hep_like, hep_stats, DatasetConfig};
use lcrb_repro::graph::metrics::{average_out_degree, reciprocity};

#[test]
fn enron_like_hits_paper_statistics() {
    let scale = 0.1;
    let ds = enron_like(&DatasetConfig::new(scale, 3));
    let g = &ds.graph;
    let want_nodes = (enron_stats::NODES as f64 * scale).round();
    assert!(
        (g.node_count() as f64 - want_nodes).abs() / want_nodes < 0.02,
        "nodes {} vs {want_nodes}",
        g.node_count()
    );
    let want_edges = (enron_stats::EDGES as f64 * scale).round() as usize;
    assert_eq!(g.edge_count(), want_edges);
    // Paper: "an average node degree of 10.0".
    assert!((average_out_degree(g) - 10.0).abs() < 0.3);
    // Email graphs are directed: reciprocity well below 1.
    assert!(reciprocity(g) < 0.7);
}

#[test]
fn enron_like_pins_both_paper_communities() {
    let ds = enron_like(&DatasetConfig::new(0.1, 3));
    let sizes = ds.planted.community_sizes();
    assert_eq!(ds.pinned_communities.len(), 2);
    let large = sizes[ds.pinned_communities[0]];
    let small = sizes[ds.pinned_communities[1]];
    assert_eq!(
        large,
        (enron_stats::LARGE_COMMUNITY as f64 * 0.1).round() as usize
    );
    assert_eq!(
        small,
        (enron_stats::SMALL_COMMUNITY as f64 * 0.1).round() as usize
    );
}

#[test]
fn hep_like_hits_paper_statistics() {
    let scale = 0.1;
    let ds = hep_like(&DatasetConfig::new(scale, 4));
    let g = &ds.graph;
    let want_nodes = (hep_stats::NODES as f64 * scale).round();
    assert!((g.node_count() as f64 - want_nodes).abs() / want_nodes < 0.02);
    // Undirected edges become two arcs; the paper's "average node
    // degree of 7.73" is 2m/n.
    assert!(
        (average_out_degree(g) - 7.73).abs() < 0.3,
        "{}",
        average_out_degree(g)
    );
    assert_eq!(reciprocity(g), 1.0);
    let sizes = ds.planted.community_sizes();
    assert_eq!(
        sizes[ds.pinned_communities[0]],
        (hep_stats::COMMUNITY as f64 * scale).round() as usize
    );
}

#[test]
fn full_scale_datasets_match_exactly() {
    // The headline numbers of §VI-A at scale 1 — generation stays
    // fast enough to test (≈60 ms for Enron).
    let ds = enron_like(&DatasetConfig::default());
    assert_eq!(ds.graph.node_count(), enron_stats::NODES);
    assert_eq!(ds.graph.edge_count(), enron_stats::EDGES);
    let ds = hep_like(&DatasetConfig::default());
    assert_eq!(ds.graph.node_count(), hep_stats::NODES);
    assert_eq!(ds.graph.edge_count(), 2 * hep_stats::UNDIRECTED_EDGES);
}

#[test]
fn community_size_distribution_is_heavy_tailed() {
    let ds = enron_like(&DatasetConfig::new(0.1, 9));
    let mut sizes = ds.planted.community_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    assert!(sizes.len() >= 10, "only {} communities", sizes.len());
    // The largest community dwarfs the median, as in real Louvain
    // partitions of social networks.
    let median = sizes[sizes.len() / 2];
    assert!(
        sizes[0] >= 5 * median,
        "largest {} vs median {median}",
        sizes[0]
    );
}
