//! Property harness for the `Solver` session cache: a warm re-solve
//! must be *bitwise* identical to a cold solve on a fresh session —
//! and a concurrent batch must be bitwise identical to serial solves.
//!
//! The engine's contract (DESIGN.md §10–§11) is that the epoch-keyed
//! artifact cache is a pure memoization layer — the bridge set, the
//! RR-sketch index, and the resumable CELF trajectory may only change
//! *when* work happens, never *what* is selected. These properties
//! pin that across randomized instances:
//!
//! 1. asking the same request twice returns the identical report
//!    payload (pure replay);
//! 2. a budget-changed request on a warm session (sketch index and
//!    trajectory reused, trajectory extended) matches the cold solve
//!    of that budget on a fresh session;
//! 3. both hold at every inner-sweep thread count in {1, 2, 7} — the
//!    parallel gain sweep partitions work but never reorders results;
//! 4. `solve_many` over a *shuffled* batch, fanned across {1, 2, 7}
//!    workers, matches serial sorted-order solving on a fresh
//!    session — worker identity, arrival order, and cache
//!    interleaving never leak into the answers;
//! 5. a batch of *identical* CELF requests racing on one session
//!    builds the trajectory exactly once (single-builder/waiters),
//!    and every waiter gets the builder's bits.
//!
//! "Bitwise" means protector identity **and** the `f64` σ̂ history
//! compared via `to_bits` — no tolerance. Fingerprints deliberately
//! exclude evaluation counts and cache counters: those describe how
//! much work a particular interleaving did, not what was selected.

use lcrb_repro::graph::generators;
use lcrb_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

const THREADS: [usize; 3] = [1, 2, 7];

/// A small two-community instance; every case draws its own topology
/// and rumor placement from `seed`.
fn instance(seed: u64) -> RumorBlockingInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (g, labels) = generators::planted_partition(&[30, 30], 0.25, 0.05, false, &mut rng)
        .expect("community sizes are positive");
    let partition = Partition::from_labels(labels);
    RumorBlockingInstance::with_random_seeds(g, partition, 0, 2, &mut rng)
        .expect("pinned community is non-empty")
}

fn request(budget: usize, threads: usize, estimator: Estimator) -> SolveRequest {
    SolveRequest {
        realizations: 8,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        threads,
        ..SolveRequest::greedy_budget(budget)
    }
}

fn session(seed: u64) -> Solver {
    Solver::with_config(instance(seed), SolverConfig { master_seed: 5 })
}

/// Everything a greedy solve decides, with σ̂ values as raw bits.
fn fingerprint(report: &SolveReport) -> (Vec<NodeId>, Vec<u64>) {
    let SolveDetail::Greedy(sel) = &report.detail else {
        panic!("greedy requests carry greedy details");
    };
    (
        report.protectors.clone(),
        sel.sigma_history.iter().map(|s| s.to_bits()).collect(),
    )
}

/// Runs `work` and returns its output with the session cache-counter
/// delta it charged.
fn charged<R>(solver: &Solver, work: impl FnOnce() -> R) -> (R, CacheStats) {
    let before = solver.cache_stats();
    let out = work();
    (out, solver.cache_stats().delta_since(&before))
}

proptest! {
    #[test]
    fn same_request_twice_replays_bitwise(
        seed in 0u64..512,
        budget in 1usize..5,
        ti in 0usize..3,
    ) {
        let threads = THREADS[ti];
        let est = Estimator::Sketch(SketchParams::default());
        let solver = session(seed);
        let first = solver.solve(&request(budget, threads, est)).expect("valid request");
        let (second, delta) =
            charged(&solver, || solver.solve(&request(budget, threads, est)));
        let second = second.expect("valid request");
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
        // The replay touched no new artifacts: every lookup hit.
        prop_assert_eq!(delta.misses(), 0);
        prop_assert!(delta.hits() > 0);
    }

    #[test]
    fn budget_changed_warm_resolve_matches_cold(
        seed in 0u64..512,
        small in 1usize..4,
        extra in 1usize..4,
        ti in 0usize..3,
    ) {
        let threads = THREADS[ti];
        let est = Estimator::Sketch(SketchParams::default());
        let large = small + extra;

        let cold = session(seed);
        let cold_report = cold.solve(&request(large, threads, est)).expect("valid request");

        let warm = session(seed);
        warm.solve(&request(small, threads, est)).expect("valid request");
        let (warm_report, delta) =
            charged(&warm, || warm.solve(&request(large, threads, est)));
        let warm_report = warm_report.expect("valid request");

        // The sketch index and bridge set were reused, the trajectory
        // extended — and the answer is still bit-for-bit the cold one.
        prop_assert!(delta.hits() > 0);
        prop_assert_eq!(fingerprint(&cold_report), fingerprint(&warm_report));

        // Shrinking back to the small budget replays the prefix the
        // warm session already served before the extension.
        let shrunk = warm.solve(&request(small, threads, est)).expect("valid request");
        let fresh = session(seed);
        let fresh_small = fresh.solve(&request(small, threads, est)).expect("valid request");
        prop_assert_eq!(fingerprint(&shrunk), fingerprint(&fresh_small));
    }

    #[test]
    fn thread_count_never_changes_the_answer(
        seed in 0u64..512,
        budget in 1usize..5,
    ) {
        let est = Estimator::Sketch(SketchParams::default());
        let base = session(seed);
        let reference = base.solve(&request(budget, 1, est)).expect("valid request");
        for threads in [2usize, 7] {
            let solver = session(seed);
            let report = solver.solve(&request(budget, threads, est)).expect("valid request");
            prop_assert_eq!(fingerprint(&reference), fingerprint(&report));
        }
        // A warm session serves a thread-count-changed ask from the
        // cache (the CELF key excludes `threads`) — still identical.
        let (warm, delta) = charged(&base, || base.solve(&request(budget, 7, est)));
        let warm = warm.expect("valid request");
        prop_assert_eq!(fingerprint(&reference), fingerprint(&warm));
        prop_assert_eq!(delta.misses(), 0);
    }

    #[test]
    fn shuffled_batch_matches_serial_sorted_solving(
        seed in 0u64..128,
        budgets in proptest::collection::vec(1usize..6, 2..6),
        shuffle_seed in 0u64..64,
        wi in 0usize..3,
    ) {
        let workers = THREADS[wi];
        let est = Estimator::Sketch(SketchParams::default());

        // Reference: a fresh session answers every distinct budget
        // serially, smallest first (so each later ask extends the
        // trajectory the previous one left behind).
        let mut sorted = budgets.clone();
        sorted.sort_unstable();
        let serial = session(seed);
        let mut reference = BTreeMap::new();
        for &budget in &sorted {
            let report = serial.solve(&request(budget, 1, est)).expect("valid request");
            reference.insert(budget, fingerprint(&report));
        }

        // Candidate: the same budgets, shuffled, as one `solve_many`
        // batch on another fresh session. Workers race on the shared
        // cache; budgets extend / replay / shrink the one trajectory
        // in whatever order the scheduler produces.
        let mut shuffled = budgets.clone();
        shuffled.shuffle(&mut SmallRng::seed_from_u64(shuffle_seed));
        let batch: Vec<SolveRequest> =
            shuffled.iter().map(|&b| request(b, 1, est)).collect();
        let solver = session(seed);
        let reports = solver.solve_many_threaded(&batch, workers);
        prop_assert_eq!(reports.len(), batch.len());
        for (&budget, report) in shuffled.iter().zip(&reports) {
            let report = report.as_ref().expect("valid request");
            prop_assert_eq!(
                reference.get(&budget).expect("reference covers every budget"),
                &fingerprint(report)
            );
        }
    }
}

/// Satellite stress: a batch of *identical* CELF requests racing on
/// one session must build each artifact exactly once. With six
/// same-key requests at six workers, the cold pass charges exactly
/// one miss per family (bridge, sketch, trajectory) — three total —
/// and every other lookup waits on the builder's gate and hits.
#[test]
fn concurrent_same_key_requests_build_each_artifact_once() {
    let est = Estimator::Sketch(SketchParams::default());
    let reference_session = session(42);
    let reference = reference_session
        .solve(&request(3, 1, est))
        .expect("valid request");

    for _round in 0..8 {
        let solver = session(42);
        let batch = vec![request(3, 1, est); 6];
        let (reports, delta) = charged(&solver, || solver.solve_many_threaded(&batch, 6));
        assert_eq!(
            delta.misses(),
            3,
            "exactly one cold build per family (bridge, sketch, celf)"
        );
        assert_eq!(delta.hits(), 15, "five waiters hit each of three families");
        for report in &reports {
            let report = report.as_ref().expect("valid request");
            assert_eq!(
                fingerprint(&reference),
                fingerprint(report),
                "waiters must see the builder's bits"
            );
        }
    }
}
