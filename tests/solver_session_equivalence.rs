//! Property harness for the `Solver` session cache: a warm re-solve
//! must be *bitwise* identical to a cold solve on a fresh session.
//!
//! The engine's contract (DESIGN.md §10) is that the epoch-keyed
//! artifact cache is a pure memoization layer — the bridge set, the
//! RR-sketch index, and the resumable CELF trajectory may only change
//! *when* work happens, never *what* is selected. These properties
//! pin that across randomized instances:
//!
//! 1. asking the same request twice returns the identical report
//!    payload (pure replay);
//! 2. a budget-changed request on a warm session (sketch index and
//!    trajectory reused, trajectory extended) matches the cold solve
//!    of that budget on a fresh session;
//! 3. both hold at every thread count in {1, 2, 7} — the parallel
//!    gain sweep partitions work but never reorders results.
//!
//! "Bitwise" means protector identity **and** the `f64` σ̂ history
//! compared via `to_bits` — no tolerance.

use lcrb_repro::graph::generators;
use lcrb_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 7];

/// A small two-community instance; every case draws its own topology
/// and rumor placement from `seed`.
fn instance(seed: u64) -> RumorBlockingInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (g, labels) = generators::planted_partition(&[30, 30], 0.25, 0.05, false, &mut rng)
        .expect("community sizes are positive");
    let partition = Partition::from_labels(labels);
    RumorBlockingInstance::with_random_seeds(g, partition, 0, 2, &mut rng)
        .expect("pinned community is non-empty")
}

fn request(budget: usize, threads: usize, estimator: Estimator) -> SolveRequest {
    SolveRequest {
        realizations: 8,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        threads,
        ..SolveRequest::greedy_budget(budget)
    }
}

fn session(seed: u64) -> Solver {
    Solver::with_config(instance(seed), SolverConfig { master_seed: 5 })
}

/// Everything a greedy solve decides, with σ̂ values as raw bits.
fn fingerprint(report: &SolveReport) -> (Vec<NodeId>, Vec<u64>) {
    let SolveDetail::Greedy(sel) = &report.detail else {
        panic!("greedy requests carry greedy details");
    };
    (
        report.protectors.clone(),
        sel.sigma_history.iter().map(|s| s.to_bits()).collect(),
    )
}

proptest! {
    #[test]
    fn same_request_twice_replays_bitwise(
        seed in 0u64..512,
        budget in 1usize..5,
        ti in 0usize..3,
    ) {
        let threads = THREADS[ti];
        let est = Estimator::Sketch(SketchParams::default());
        let mut solver = session(seed);
        let first = solver.solve(&request(budget, threads, est)).expect("valid request");
        let second = solver.solve(&request(budget, threads, est)).expect("valid request");
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
        // The replay touched no new artifacts: every lookup hit.
        prop_assert_eq!(second.cache_misses(), 0);
        prop_assert!(second.cache_hits() > 0);
    }

    #[test]
    fn budget_changed_warm_resolve_matches_cold(
        seed in 0u64..512,
        small in 1usize..4,
        extra in 1usize..4,
        ti in 0usize..3,
    ) {
        let threads = THREADS[ti];
        let est = Estimator::Sketch(SketchParams::default());
        let large = small + extra;

        let mut cold = session(seed);
        let cold_report = cold.solve(&request(large, threads, est)).expect("valid request");

        let mut warm = session(seed);
        warm.solve(&request(small, threads, est)).expect("valid request");
        let warm_report = warm.solve(&request(large, threads, est)).expect("valid request");

        // The sketch index and bridge set were reused, the trajectory
        // extended — and the answer is still bit-for-bit the cold one.
        prop_assert!(warm_report.cache_hits() > 0);
        prop_assert_eq!(fingerprint(&cold_report), fingerprint(&warm_report));

        // Shrinking back to the small budget replays the prefix the
        // warm session already served before the extension.
        let shrunk = warm.solve(&request(small, threads, est)).expect("valid request");
        let mut fresh = session(seed);
        let fresh_small = fresh.solve(&request(small, threads, est)).expect("valid request");
        prop_assert_eq!(fingerprint(&shrunk), fingerprint(&fresh_small));
    }

    #[test]
    fn thread_count_never_changes_the_answer(
        seed in 0u64..512,
        budget in 1usize..5,
    ) {
        let est = Estimator::Sketch(SketchParams::default());
        let mut base = session(seed);
        let reference = base.solve(&request(budget, 1, est)).expect("valid request");
        for threads in [2usize, 7] {
            let mut solver = session(seed);
            let report = solver.solve(&request(budget, threads, est)).expect("valid request");
            prop_assert_eq!(fingerprint(&reference), fingerprint(&report));
        }
        // A warm session serves a thread-count-changed ask from the
        // cache (the CELF key excludes `threads`) — still identical.
        let warm = base.solve(&request(budget, 7, est)).expect("valid request");
        prop_assert_eq!(fingerprint(&reference), fingerprint(&warm));
        prop_assert_eq!(warm.cache_misses(), 0);
    }
}
