//! Statistical equivalence harness for the two LCRB-P σ̂ estimators.
//!
//! The RR-sketch estimator trades the Monte-Carlo objective's
//! replayed cascades for sampled reverse-reachable sets, so its
//! greedy selections need not be byte-identical to the MC greedy's —
//! but they must be *statistically indistinguishable* when judged by
//! an independent evaluation. These tests pin that contract three
//! ways, none of them with exact-float asserts on stochastic output:
//!
//! 1. the MC-evaluated infection counts of the two selections have
//!    overlapping 95% confidence intervals (mean ± z·σ/√n, z = 1.96);
//! 2. the exact (deterministic) DOAM analytic oracle anchors both
//!    selections below the no-protection baseline, reproducibly;
//! 3. the raw σ̂ values the two estimators report for the *same*
//!    protector set agree within the MC objective's own confidence
//!    interval plus the sketch's ε·|B| accuracy budget.

use lcrb_repro::diffusion::{AveragedOutcome, PAPER_OPOAO_HOPS};
use lcrb_repro::lcrb::ProtectionObjective;
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const Z_95: f64 = 1.96;
const JUDGE_RUNS: usize = 128;

/// A ~760-node hep-like instance with two rumor originators.
fn instance() -> RumorBlockingInstance {
    let ds = hep_like(&DatasetConfig::new(0.05, 5));
    let mut rng = SmallRng::seed_from_u64(21);
    RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        2,
        &mut rng,
    )
    .expect("pinned community is non-empty")
}

fn select(inst: &RumorBlockingInstance, estimator: Estimator) -> Vec<NodeId> {
    let cfg = GreedyConfig {
        realizations: 8,
        candidates: CandidatePool::BackwardRadius(2),
        master_seed: 9,
        estimator,
        ..GreedyConfig::default()
    };
    greedy_with_budget(inst, 3, &cfg)
        .expect("budget-mode greedy cannot fail on a valid instance")
        .protectors
}

/// Judges a protector set with an independent OPOAO Monte-Carlo batch
/// (fresh seed, disjoint from both estimators' sampling seeds).
fn judge(inst: &RumorBlockingInstance, protectors: Vec<NodeId>) -> AveragedOutcome {
    let seeds = inst.seed_sets(protectors).expect("selection is valid");
    monte_carlo(
        &OpoaoModel::default(),
        inst.graph(),
        &seeds,
        &MonteCarloConfig {
            runs: JUDGE_RUNS,
            base_seed: 777,
            threads: 0,
        },
    )
}

#[test]
fn selections_have_overlapping_95pct_confidence_intervals() {
    let inst = instance();
    let mc_sel = select(&inst, Estimator::MonteCarlo);
    let sk_sel = select(&inst, Estimator::Sketch(SketchParams::default()));
    assert_eq!(mc_sel.len(), 3);
    assert_eq!(sk_sel.len(), 3);

    let mc = judge(&inst, mc_sel);
    let sk = judge(&inst, sk_sel);
    let none = judge(&inst, Vec::new());

    // Both selections actually protect: fewer infections than doing
    // nothing by more than the no-blocking run's own standard error.
    let none_se = none.std_final_infected / (JUDGE_RUNS as f64).sqrt();
    assert!(
        mc.mean_final_infected() < none.mean_final_infected() - none_se,
        "MC selection does not protect: {} vs {}",
        mc.mean_final_infected(),
        none.mean_final_infected()
    );
    assert!(
        sk.mean_final_infected() < none.mean_final_infected() - none_se,
        "sketch selection does not protect: {} vs {}",
        sk.mean_final_infected(),
        none.mean_final_infected()
    );

    // The harness's equivalence criterion: 95% CIs overlap, i.e. the
    // gap between means is at most the sum of the CI half-widths.
    let gap = (mc.mean_final_infected() - sk.mean_final_infected()).abs();
    let half_widths =
        Z_95 * (mc.std_final_infected + sk.std_final_infected) / (JUDGE_RUNS as f64).sqrt();
    assert!(
        gap <= half_widths,
        "selections are statistically distinguishable: |{} - {}| = {gap} > {half_widths}",
        mc.mean_final_infected(),
        sk.mean_final_infected()
    );
}

#[test]
fn doam_analytic_oracle_anchors_both_selections() {
    let inst = instance();
    let mc_sel = select(&inst, Estimator::MonteCarlo);
    let sk_sel = select(&inst, Estimator::Sketch(SketchParams::default()));

    let count = |protectors: Vec<NodeId>| {
        doam_analytic(
            inst.graph(),
            &inst.seed_sets(protectors).expect("selection is valid"),
        )
        .infected_count()
    };
    let baseline = count(Vec::new());
    let mc_infected = count(mc_sel.clone());
    let sk_infected = count(sk_sel.clone());

    // The oracle is exact and deterministic: rerunning it is the one
    // place where exact equality *is* the right assertion.
    assert_eq!(mc_infected, count(mc_sel));
    assert_eq!(sk_infected, count(sk_sel));
    // Protection under the deterministic model never hurts, for
    // either estimator's picks.
    assert!(mc_infected <= baseline);
    assert!(sk_infected <= baseline);
}

#[test]
fn estimators_agree_on_sigma_for_shared_protector_sets() {
    let inst = instance();
    let bridges = find_bridge_ends(&inst, BridgeEndRule::default());
    let params = SketchParams::default();
    let realizations = 64;

    let mc = ProtectionObjective::new(
        &inst,
        bridges.nodes.clone(),
        realizations,
        42,
        PAPER_OPOAO_HOPS,
    )
    .expect("realization count is positive");
    let sk = SketchObjective::build(&inst, bridges.nodes.clone(), params, 43, PAPER_OPOAO_HOPS)
        .expect("default sketch params are valid");

    // MC-side CI half-width for one protector set, from the
    // per-realization saved counts.
    let mc_ci = |set: &[NodeId]| {
        let mut saved = Vec::with_capacity(realizations);
        for i in 0..realizations {
            saved.push(mc.saved_on_realization(i, set).expect("index in range") as f64);
        }
        let n = saved.len() as f64;
        let mean = saved.iter().sum::<f64>() / n;
        let var = saved.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
        Z_95 * (var.sqrt() / n.sqrt())
    };
    let sketch_budget = params.epsilon * bridges.nodes.len() as f64;
    let total_bridges = bridges.nodes.len() as f64;

    // Nested candidate sets of growing size drawn from the bridge
    // ends themselves — the nodes both estimators care most about.
    //
    // The sketch inverts the §V-A label-free timestamp rule, a
    // relaxation of the stepwise engine the MC objective replays: a
    // relay the rumor captured still forwards protection in the
    // timestamp rule, so the sketch σ̂ may sit *above* the MC σ̂ on
    // small sets (see DESIGN.md). The relaxation never loses a save
    // the engine finds, and the slack vanishes as coverage saturates
    // — so the contract is one-sided closeness plus agreement at the
    // top of the chain, not pointwise equality.
    let sizes = [1usize, 2, 4, 8, 16, 32];
    let mut prev_mc = 0.0f64;
    let mut prev_sk = 0.0f64;
    for &size in &sizes {
        let set: Vec<NodeId> = bridges.nodes.iter().copied().take(size).collect();
        let sigma_mc = mc.sigma(&set).expect("valid protectors");
        let sigma_sk = sk.sigma(&set).expect("valid protectors");

        // Both estimates live in [0, |B|].
        assert!((0.0..=total_bridges).contains(&sigma_mc), "mc {sigma_mc}");
        assert!((0.0..=total_bridges).contains(&sigma_sk), "sk {sigma_sk}");
        // Both are monotone along the nested chain.
        assert!(sigma_mc >= prev_mc - 1e-9, "MC not monotone at {size}");
        assert!(sigma_sk >= prev_sk - 1e-9, "sketch not monotone at {size}");
        prev_mc = sigma_mc;
        prev_sk = sigma_sk;

        // One-sided: the sketch never under-reports protection beyond
        // the MC CI plus its own ε·|B| accuracy budget.
        let tolerance = mc_ci(&set) + sketch_budget;
        assert!(
            sigma_sk >= sigma_mc - tolerance,
            "size {size}: sketch {sigma_sk} under-reports MC {sigma_mc} beyond {tolerance}"
        );
    }

    // Where coverage saturates the relaxation slack is gone and the
    // two estimators must agree within CI + ε·|B|.
    let full: Vec<NodeId> = bridges.nodes.iter().copied().take(32).collect();
    let sigma_mc = mc.sigma(&full).expect("valid protectors");
    let sigma_sk = sk.sigma(&full).expect("valid protectors");
    let tolerance = mc_ci(&full) + sketch_budget;
    assert!(
        (sigma_mc - sigma_sk).abs() <= tolerance,
        "saturated sets disagree: |{sigma_mc} - {sigma_sk}| > {tolerance}"
    );
}
