//! Property harness for work-unit budgets (DESIGN.md §12): degraded
//! solves are *bitwise reproducible*. Deadlines are advisory —
//! wall-clock stops land wherever the clock says — but `max_sims` /
//! `max_sketches` / `max_advances` budgets are checked only at
//! deterministic checkpoint boundaries, so the same budget must cut
//! the same solve at the same checkpoint every time:
//!
//! 1. a work-budget solve produces the identical report (selection,
//!    σ̂ bits, and `Completion` payload) at every inner-sweep thread
//!    count in {1, 2, 7} on fresh sessions — parallel workers
//!    partition work but budget arithmetic happens at serial
//!    boundaries;
//! 2. an advance-capped solve is the bitwise *prefix* of the
//!    uncancelled run: same first-n picks, same first-n σ̂ bits —
//!    degradation never reorders or re-optimizes what was already
//!    selected;
//! 3. both hold for the Monte-Carlo estimator under `max_sims` and
//!    the RR-sketch estimator under `max_sketches`.
//!
//! "Bitwise" means protector identity **and** σ̂ compared via
//! `to_bits`, plus the full `Completion` value — checkpoint counts
//! are part of the reproducibility contract.

use lcrb_repro::graph::generators;
use lcrb_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 7];

/// A small two-community instance drawn from `seed`.
fn instance(seed: u64) -> RumorBlockingInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (g, labels) = generators::planted_partition(&[30, 30], 0.25, 0.05, false, &mut rng)
        .expect("community sizes are positive");
    let partition = Partition::from_labels(labels);
    RumorBlockingInstance::with_random_seeds(g, partition, 0, 2, &mut rng)
        .expect("pinned community is non-empty")
}

fn request(budget: usize, threads: usize, estimator: Estimator) -> SolveRequest {
    SolveRequest {
        realizations: 8,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        threads,
        ..SolveRequest::greedy_budget(budget)
    }
}

fn session(seed: u64) -> Solver {
    Solver::with_config(instance(seed), SolverConfig { master_seed: 5 })
}

/// Everything a budgeted greedy solve decides: the selection, the σ̂
/// history as raw bits, and the completion status with its
/// checkpoint counts.
fn fingerprint(report: &SolveReport) -> (Vec<NodeId>, Vec<u64>, Completion) {
    let SolveDetail::Greedy(sel) = &report.detail else {
        panic!("greedy requests carry greedy details");
    };
    (
        report.protectors.clone(),
        sel.sigma_history.iter().map(|s| s.to_bits()).collect(),
        report.completion,
    )
}

proptest! {
    #[test]
    fn sim_budget_degradation_is_thread_count_invariant(
        seed in 0u64..256,
        budget in 1usize..4,
        max_sims in 0u64..2000,
    ) {
        let cap = RunBudget::unlimited().with_max_sims(max_sims);
        let mut prints = THREADS.iter().map(|&threads| {
            let solver = session(seed);
            let req = request(budget, threads, Estimator::MonteCarlo).with_budget(cap);
            fingerprint(&solver.solve(&req).expect("budget stops degrade, not error"))
        });
        let first = prints.next().expect("three thread counts");
        for other in prints {
            prop_assert_eq!(&first, &other);
        }
    }

    #[test]
    fn sketch_budget_degradation_is_thread_count_invariant(
        seed in 0u64..256,
        budget in 1usize..4,
        max_sketches in 1u64..400,
    ) {
        let cap = RunBudget::unlimited().with_max_sketches(max_sketches);
        let est = Estimator::Sketch(SketchParams::default());
        let mut prints = THREADS.iter().map(|&threads| {
            let solver = session(seed);
            let req = request(budget, threads, est).with_budget(cap);
            fingerprint(&solver.solve(&req).expect("budget stops degrade, not error"))
        });
        let first = prints.next().expect("three thread counts");
        for other in prints {
            prop_assert_eq!(&first, &other);
        }
    }

    #[test]
    fn advance_cap_is_a_bitwise_prefix_of_the_uncancelled_run(
        seed in 0u64..256,
        budget in 2usize..5,
        cap in 1u64..4,
        ti in 0usize..3,
        est_sel in 0usize..2,
    ) {
        let threads = THREADS[ti];
        let est = if est_sel == 0 {
            Estimator::MonteCarlo
        } else {
            Estimator::Sketch(SketchParams::default())
        };
        let req = request(budget, threads, est);
        let exact = session(seed).solve(&req).expect("valid request");
        let capped = session(seed)
            .solve(&req.clone().with_budget(RunBudget::unlimited().with_max_advances(cap)))
            .expect("budget stops degrade, not error");

        let (e_picks, e_bits, _) = fingerprint(&exact);
        let (c_picks, c_bits, completion) = fingerprint(&capped);
        if completion.is_exact() {
            // The cap covered the whole run: identical reports.
            prop_assert!(c_picks.len() <= cap as usize);
            prop_assert_eq!(&c_picks, &e_picks);
            prop_assert_eq!(&c_bits, &e_bits);
        } else {
            // Degraded: exactly the first `cap` checkpoints of the
            // uncancelled run, bit for bit.
            prop_assert_eq!(c_picks.len(), cap as usize);
            prop_assert_eq!(&c_picks[..], &e_picks[..cap as usize]);
            prop_assert_eq!(&c_bits[..], &e_bits[..cap as usize]);
        }
    }

    #[test]
    fn repeated_budgeted_solves_make_monotone_anytime_progress(
        seed in 0u64..256,
        budget in 1usize..4,
        cap in 1u64..3,
    ) {
        // Budgets meter the work a solve *performs*, not the size of
        // its answer: re-asking the same capped request of one session
        // resumes the parked trajectory with a fresh allowance, so
        // each round extends the previous answer (bitwise) until the
        // run completes — and once exact, replays are bitwise stable.
        let exact = fingerprint(&session(seed).solve(
            &request(budget, 2, Estimator::MonteCarlo),
        ).expect("valid request"));
        let solver = session(seed);
        let req = request(budget, 2, Estimator::MonteCarlo)
            .with_budget(RunBudget::unlimited().with_max_advances(cap));
        let mut prev = fingerprint(&solver.solve(&req).expect("valid request"));
        for _ in 0..8 {
            let next = fingerprint(&solver.solve(&req).expect("valid request"));
            // Monotone prefix growth, never reordering.
            prop_assert!(next.0.len() >= prev.0.len());
            prop_assert_eq!(&next.0[..prev.0.len()], &prev.0[..]);
            prop_assert_eq!(&next.1[..prev.1.len()], &prev.1[..]);
            if prev.2.is_exact() {
                // Terminal state: pure bitwise replay from here on.
                prop_assert_eq!(&next, &prev);
            }
            prev = next;
        }
        // Enough rounds always reach the uncancelled answer.
        prop_assert_eq!(prev, exact);
    }
}
