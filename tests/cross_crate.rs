//! Cross-crate consistency checks: properties that only emerge when
//! the substrates are composed.

use lcrb_repro::community::metrics::{mixing_parameter, normalized_mutual_information};
use lcrb_repro::diffusion::OpoaoRealization;
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn doam_oracle_matches_simulator_on_dataset_graphs() {
    let ds = enron_like(&DatasetConfig::new(0.03, 17));
    let mut rng = SmallRng::seed_from_u64(17);
    let inst = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        4,
        &mut rng,
    )
    .unwrap();
    let seeds = inst.seed_sets(vec![]).unwrap();
    let sim = DoamModel::default().run_deterministic(inst.graph(), &seeds);
    let ana = doam_analytic(inst.graph(), &seeds);
    assert_eq!(sim.statuses(), ana.statuses());
    assert_eq!(sim.trace(), ana.trace());
}

#[test]
fn bridge_ends_are_exactly_the_first_escapes_under_doam() {
    // Without protectors, the earliest nodes infected outside the
    // rumor community are bridge ends (community-restricted rule),
    // provided the shortest escape stays inside the community — the
    // paper's structural premise.
    let ds = hep_like(&DatasetConfig::new(0.05, 23));
    let mut rng = SmallRng::seed_from_u64(23);
    let inst = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        3,
        &mut rng,
    )
    .unwrap();
    let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
    let outcome =
        DoamModel::default().run_deterministic(inst.graph(), &inst.seed_sets(vec![]).unwrap());
    // All bridge ends get infected when nothing is done.
    for &v in &bridges.nodes {
        assert!(outcome.status(v).is_infected());
    }
    // The earliest outside infection happens at a bridge end.
    let earliest_outside = inst
        .graph()
        .nodes()
        .filter(|&v| !inst.in_rumor_community(v))
        .filter_map(|v| outcome.activation_hop(v).map(|h| (h, v)))
        .min();
    if let Some((_, v)) = earliest_outside {
        assert!(
            bridges.nodes.binary_search(&v).is_ok(),
            "first escape {v} is not a bridge end"
        );
    }
}

#[test]
fn louvain_recovers_planted_structure_of_datasets() {
    let ds = hep_like(&DatasetConfig::new(0.05, 31));
    let result = louvain(&ds.graph, &LouvainConfig::default());
    let nmi = normalized_mutual_information(&result.partition, &ds.planted);
    assert!(nmi > 0.6, "nmi = {nmi}");
    // Louvain's partition keeps cross-community edges scarce, the
    // property the LCRB strategy depends on.
    let mu = mixing_parameter(&ds.graph, &result.partition);
    assert!(mu < 0.45, "mixing = {mu}");
}

#[test]
fn coupled_realizations_share_rumor_randomness() {
    // With a common realization, runs that differ only in protectors
    // agree on every node that neither protector run touches: the
    // rumor side of the coupling is identical (the point of §V-A's
    // construction).
    let ds = hep_like(&DatasetConfig::new(0.03, 5));
    let mut rng = SmallRng::seed_from_u64(5);
    let inst = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        2,
        &mut rng,
    )
    .unwrap();
    let model = OpoaoModel::new(15);
    let real = OpoaoRealization::new(99);
    let base = model.run_realized(inst.graph(), &inst.seed_sets(vec![]).unwrap(), &real);
    // Pick a protector far from the action: an isolated-ish node in
    // another community (any non-rumor node works for the coupling
    // property we check).
    let protector = inst
        .graph()
        .nodes()
        .find(|&v| !inst.in_rumor_community(v) && !base.status(v).is_active())
        .expect("some node stays inactive in 15 hops");
    let with = model.run_realized(
        inst.graph(),
        &inst.seed_sets(vec![protector]).unwrap(),
        &real,
    );
    // Coupling: infections can only shrink, never move around.
    for v in inst.graph().nodes() {
        if with.status(v).is_infected() {
            assert!(
                base.status(v).is_infected(),
                "node {v} infected only when a protector was added"
            );
        }
    }
}

#[test]
fn graph_io_round_trips_a_dataset() {
    let ds = hep_like(&DatasetConfig::new(0.02, 2));
    let mut buf = Vec::new();
    lcrb_repro::graph::io::write_edge_list(&ds.graph, &mut buf).unwrap();
    let loaded = lcrb_repro::graph::io::read_edge_list(&buf[..]).unwrap();
    assert_eq!(loaded.graph.edge_count(), ds.graph.edge_count());
    // Labels are decimal ids, so structure is preserved under the
    // identity mapping... but first-appearance order may renumber;
    // check via degree multiset instead.
    let mut a: Vec<usize> = ds.graph.nodes().map(|v| ds.graph.out_degree(v)).collect();
    let mut b: Vec<usize> = loaded
        .graph
        .nodes()
        .map(|v| loaded.graph.out_degree(v))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    // Isolated nodes never appear in an edge list.
    let isolated = a.iter().filter(|&&d| d == 0).count();
    let isolated_in = ds
        .graph
        .nodes()
        .filter(|&v| ds.graph.degree(v) == 0)
        .count();
    assert_eq!(
        a.len() - b.len(),
        isolated_in,
        "only fully isolated nodes may be dropped ({isolated} zero-out-degree)"
    );
}
