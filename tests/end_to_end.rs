//! End-to-end integration tests spanning every crate: dataset
//! generation → community detection → bridge ends → solvers →
//! simulation-verified protection.

use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hep_instance(scale: f64, seed: u64, rumors: usize) -> RumorBlockingInstance {
    let ds = hep_like(&DatasetConfig::new(scale, seed));
    let mut rng = SmallRng::seed_from_u64(seed);
    RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        ds.planted.clone(),
        ds.pinned_communities[0],
        rumors,
        &mut rng,
    )
    .expect("pinned community exists")
}

#[test]
fn scbg_contains_the_rumor_end_to_end() {
    let inst = hep_instance(0.08, 42, 3);
    let solution = scbg(&inst, &ScbgConfig::default());
    assert!(solution.is_complete());
    assert!(!solution.protectors.is_empty());

    // Without protection the rumor escapes: every bridge end is
    // infected under DOAM (they are reachable by construction).
    let unprotected =
        DoamModel::default().run_deterministic(inst.graph(), &inst.seed_sets(vec![]).unwrap());
    for &v in &solution.bridge_ends.nodes {
        assert!(
            unprotected.status(v).is_infected(),
            "bridge end {v} not reached"
        );
    }

    // With the SCBG protectors, none is.
    let protected = DoamModel::default().run_deterministic(
        inst.graph(),
        &inst.seed_sets(solution.protectors.clone()).unwrap(),
    );
    for &v in &solution.bridge_ends.nodes {
        assert!(!protected.status(v).is_infected());
    }
    // Containment is dramatic: protected run infects a small fraction
    // of what the unprotected run does.
    assert!(protected.infected_count() * 5 < unprotected.infected_count());
}

#[test]
fn pipeline_works_with_detected_communities() {
    // Operational pipeline: Louvain instead of planted labels.
    let ds = enron_like(&DatasetConfig::new(0.04, 7));
    let detected = louvain(&ds.graph, &LouvainConfig::default());
    assert!(detected.partition.community_count() > 3);
    assert!(detected.modularity > 0.3);

    let community = detected
        .partition
        .community_closest_to_size(100)
        .expect("communities exist");
    let mut rng = SmallRng::seed_from_u64(1);
    let inst = RumorBlockingInstance::with_random_seeds(
        ds.graph.clone(),
        detected.partition.clone(),
        community,
        3,
        &mut rng,
    )
    .unwrap();
    let solution = scbg(&inst, &ScbgConfig::default());
    assert!(solution.is_complete());
    let outcome = DoamModel::default().run_deterministic(
        inst.graph(),
        &inst.seed_sets(solution.protectors.clone()).unwrap(),
    );
    for &v in &solution.bridge_ends.nodes {
        assert!(!outcome.status(v).is_infected());
    }
}

#[test]
fn greedy_beats_no_blocking_under_opoao() {
    let inst = hep_instance(0.05, 11, 2);
    let cfg = GreedyConfig {
        realizations: 16,
        candidates: CandidatePool::BackwardRadius(1),
        master_seed: 4,
        ..GreedyConfig::default()
    };
    let budget = 4;
    let selection = greedy_with_budget(&inst, budget, &cfg).unwrap();
    assert!(selection.protectors.len() <= budget);

    let mc = MonteCarloConfig {
        runs: 40,
        base_seed: 9,
        threads: 0,
    };
    let model = OpoaoModel::default();
    let blocked = monte_carlo(
        &model,
        inst.graph(),
        &inst.seed_sets(selection.protectors.clone()).unwrap(),
        &mc,
    );
    let unblocked = monte_carlo(&model, inst.graph(), &inst.seed_sets(vec![]).unwrap(), &mc);
    assert!(
        blocked.mean_final_infected() < unblocked.mean_final_infected(),
        "greedy protection did not reduce infections: {} vs {}",
        blocked.mean_final_infected(),
        unblocked.mean_final_infected()
    );
}

#[test]
fn scbg_needs_fewer_protectors_than_coverage_heuristics() {
    // The Table I headline, as a regression test at small scale.
    use lcrb::protectors_to_cover_all;
    let inst = hep_instance(0.08, 5, 8);
    let solution = scbg(&inst, &ScbgConfig::default());

    let md_order = MaxDegreeSelector.ordering(&inst);
    let md = protectors_to_cover_all(&inst, BridgeEndRule::WithinCommunity, &md_order)
        .expect("max-degree ordering covers eventually");
    assert!(
        solution.protectors.len() <= md.len(),
        "scbg {} > max-degree {}",
        solution.protectors.len(),
        md.len()
    );
}

#[test]
fn alpha_one_greedy_matches_problem_definition() {
    // LCRB-D is LCRB with alpha = 1 (Definition 3): the greedy at
    // alpha close to 1 should protect nearly all bridge ends in
    // expectation.
    let inst = hep_instance(0.04, 3, 2);
    let cfg = GreedyConfig {
        alpha: 0.9,
        realizations: 16,
        candidates: CandidatePool::BbstUnion,
        master_seed: 2,
        ..GreedyConfig::default()
    };
    let sel = greedy_lcrb_p(&inst, &cfg).unwrap();
    assert!(sel.target_met, "greedy failed to hit alpha = 0.9 target");
    assert!(sel.achieved >= 0.9 * sel.bridge_ends.len() as f64 - 1e-9);
}

#[test]
fn greedy_generalizes_to_competitive_ic() {
    use lcrb::ObjectiveModel;
    use lcrb_repro::diffusion::CompetitiveIcModel;
    let inst = hep_instance(0.05, 21, 2);
    let ic = CompetitiveIcModel::new(0.5).unwrap();
    let cfg = GreedyConfig {
        realizations: 16,
        model: ObjectiveModel::CompetitiveIc(ic),
        candidates: CandidatePool::BackwardRadius(1),
        master_seed: 6,
        ..GreedyConfig::default()
    };
    let sel = greedy_with_budget(&inst, 4, &cfg).unwrap();
    assert!(!sel.protectors.is_empty());

    // The selection genuinely helps under the IC model it optimized.
    let mc = MonteCarloConfig {
        runs: 200,
        base_seed: 3,
        threads: 0,
    };
    let blocked = monte_carlo(
        &ic,
        inst.graph(),
        &inst.seed_sets(sel.protectors.clone()).unwrap(),
        &mc,
    );
    let unblocked = monte_carlo(&ic, inst.graph(), &inst.seed_sets(vec![]).unwrap(), &mc);
    assert!(blocked.mean_final_infected() < unblocked.mean_final_infected());
    // Variance tracking is populated for stochastic models.
    assert!(unblocked.std_final_infected > 0.0);
}

#[test]
fn umbrella_reexports_are_usable() {
    // Every crate is reachable through the umbrella.
    let g = lcrb_repro::graph::generators::path_graph(3);
    assert_eq!(g.node_count(), 3);
    let p = lcrb_repro::community::Partition::singletons(3);
    assert_eq!(p.community_count(), 3);
    let seeds = lcrb_repro::diffusion::SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
    assert_eq!(seeds.rumors().len(), 1);
    assert_eq!(lcrb_repro::lcrb::setcover::harmonic(1), 1.0);
    let ds = lcrb_repro::datasets::hep_like(&DatasetConfig::new(0.02, 1));
    assert!(ds.graph.node_count() > 100);
}
