//! Deterministic-schedule model checking of the Solver cache protocol.
//!
//! These tests run the *real* engine types (`lcrb::engine::Gate`,
//! `lcrb::engine::FamilyCache`, the full `Solver::solve_many` path)
//! under the `lcrb-sync` deterministic scheduler: every context switch
//! is a recorded decision, small protocols are explored exhaustively
//! (DFS), the full solve path is driven through a fixed seed corpus,
//! and injected faults exercise the drop-guard recovery paths under
//! explored schedules. Every failure prints a replay decision string
//! that reproduces it deterministically.
//!
//! Model runs require every participating thread to be a modeled
//! logical thread, so solve requests here pin the greedy's *internal*
//! sweep to `threads: 1`; the cross-request parallelism of
//! `solve_many_threaded` is what's being explored.

use std::sync::atomic::{AtomicU64, Ordering};

use lcrb::engine::{Algorithm, Completion, FamilyCache, Gate, SolveRequest, Solver};
use lcrb::{CancelToken, LcrbError, RumorBlockingInstance, RunBudget, StopReason};
use lcrb_community::Partition;
use lcrb_diffusion::ScratchPool;
use lcrb_graph::{DiGraph, NodeId};
use lcrb_sync::sched::{self, Config};
use lcrb_sync::{thread, Mutex};

/// Two communities bridged in the middle; rumor starts at node 0.
fn tiny_instance() -> RumorBlockingInstance {
    let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 2), (2, 4)])
        .expect("graph");
    let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
    RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).expect("instance")
}

/// A small greedy request with the internal sweep pinned serial (see
/// module docs) so every thread in a model run is a modeled one.
fn greedy_request(budget: usize) -> SolveRequest {
    SolveRequest {
        realizations: 4,
        max_hops: 6,
        threads: 1,
        ..SolveRequest::greedy_budget(budget)
    }
}

#[test]
fn dfs_gate_open_wait_has_no_lost_wakeup() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        let gate = Gate::default();
        thread::scope(|scope| {
            let waiter = scope.spawn(|| gate.wait());
            let opener = scope.spawn(|| gate.open());
            waiter.join().expect("waiter");
            opener.join().expect("opener");
        });
    })
    .expect("the Gate protocol must be wakeup-safe under every schedule");
    assert!(
        exploration.schedules > 1,
        "degenerate exploration: only {} schedule(s)",
        exploration.schedules
    );
    assert!(exploration.complete);
}

#[test]
fn dfs_family_cache_builds_exactly_once_per_key_and_epoch() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        let cache: FamilyCache<u8, u64> = FamilyCache::default();
        let builds = AtomicU64::new(0);
        thread::scope(|scope| {
            let handles = [
                scope.spawn(|| {
                    cache.get_or_build(7, 0, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        42
                    })
                }),
                scope.spawn(|| {
                    cache.get_or_build(7, 0, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        42
                    })
                }),
            ];
            for h in handles {
                assert_eq!(h.join().expect("prober"), 42);
            }
        });
        // The protocol's core invariant: one build per (key, epoch)
        // no matter how the probes interleave.
        assert_eq!(builds.load(Ordering::Relaxed), 1, "duplicate build");
        let counters = cache.counter_snapshot();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.hits, 1);
    })
    .expect("single-builder discipline must hold under every schedule");
    assert!(exploration.schedules > 1);
    assert!(exploration.complete);
}

/// An intentionally broken protocol — waiting on a [`Gate`] while
/// holding the lock the opener needs — must be caught as a deadlock,
/// and the reported decision string must reproduce it.
#[test]
fn dfs_catches_gate_wait_while_holding_the_family_lock() {
    let body = || {
        let map = Mutex::new(0u32);
        let gate = Gate::default();
        thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                // BROKEN on purpose: the map lock is held across the
                // gate wait, so the opener can never reach `open`.
                let _map = map.lock().expect("map");
                gate.wait();
            });
            let opener = scope.spawn(|| {
                let _map = map.lock().expect("map");
                gate.open();
            });
            waiter.join().expect("waiter");
            opener.join().expect("opener");
        });
    };
    let failure = sched::explore_dfs(&Config::default(), body)
        .expect_err("wait-under-lock must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"), "got: {failure}");
    let replayed = sched::replay(&sched::parse_replay(&failure.replay_string()), body)
        .expect_err("the replay string must reproduce the deadlock");
    assert!(replayed.message.contains("deadlock"));
}

/// The fixed seed corpus for full-solve-path exploration; CI also runs
/// one fresh seed per build (see `fresh_seed_explores_full_solve_path`).
fn seed_corpus() -> Vec<u64> {
    (0..64).collect()
}

fn explore_solve_path(seeds: &[u64]) {
    let inst = tiny_instance();
    let batch = [
        greedy_request(1),
        SolveRequest::scbg(),
        SolveRequest::heuristic(Algorithm::MaxDegree, 2),
        greedy_request(2),
    ];
    // Reference reports from an untouched serial solver, computed
    // outside any model run.
    let reference_solver = Solver::new(inst.clone());
    let reference: Vec<_> = batch
        .iter()
        .map(|r| reference_solver.solve(r).expect("reference solve"))
        .collect();

    let exploration = sched::explore_seeds(&Config::default(), seeds, || {
        let solver = Solver::new(inst.clone());
        let reports = solver.solve_many_threaded(&batch, 3);
        // Under every explored schedule the batch is deterministic:
        // same order, same algorithms, same protector sets.
        assert_eq!(reports.len(), reference.len());
        for (got, want) in reports.iter().zip(&reference) {
            let got = got.as_ref().expect("solve");
            assert_eq!(got.algorithm, want.algorithm);
            assert_eq!(got.protectors, want.protectors);
        }
        // And the caches did their job: the duplicate-key greedy pair
        // shares one bridge build.
        assert_eq!(solver.cache_stats().bridge.misses, 1);
    })
    .unwrap_or_else(|failure| panic!("solve-path exploration failed: {failure}"));
    assert_eq!(exploration.schedules, seeds.len());
}

#[test]
fn seed_corpus_explores_full_solve_path() {
    explore_solve_path(&seed_corpus());
}

/// CI passes a per-build random seed through `LCRB_SCHED_SEED` so the
/// corpus keeps growing coverage over time; locally this runs one
/// extra fixed seed. The seed is printed so a failure in CI logs is
/// reproducible.
#[test]
fn fresh_seed_explores_full_solve_path() {
    let seed = std::env::var("LCRB_SCHED_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    println!("exploring full solve path with fresh seed {seed}");
    explore_solve_path(&[seed]);
}

/// A builder that panics mid-build (injected at the `family.build`
/// fault point) must never strand its waiter or publish a half-built
/// slot: the waiter recovers, rebuilds, and exactly one extra miss is
/// charged.
#[test]
fn injected_family_build_panic_frees_waiters_and_charges_one_extra_miss() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        sched::arm_fault("family.build", 1);
        let cache: FamilyCache<u8, u64> = FamilyCache::default();
        let builds = AtomicU64::new(0);
        thread::scope(|scope| {
            let probe = || {
                cache.get_or_build(7, 0, || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    42
                })
            };
            let results = [scope.spawn(probe).join(), scope.spawn(probe).join()];
            let faulted = results.iter().filter(|r| r.is_err()).count();
            assert_eq!(faulted, 1, "exactly the armed slot claim panics");
            for r in results {
                match r {
                    Ok(v) => assert_eq!(v, 42, "survivor sees the rebuilt value"),
                    Err(payload) => {
                        let msg = sched::payload_message(payload.as_ref());
                        assert!(sched::is_fault_panic(&msg), "unexpected panic: {msg}");
                    }
                }
            }
        });
        // The failed claim charged a miss before the fault fired, the
        // recovery rebuild charged the second; the builder closure ran
        // exactly once.
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let counters = cache.counter_snapshot();
        assert_eq!(counters.misses, 2);
        // The published value survives: a fresh probe is a pure hit.
        assert_eq!(cache.get_or_build(7, 0, || unreachable!("must hit")), 42);
        assert_eq!(cache.counter_snapshot().hits, counters.hits + 1);
    })
    .expect("builder-panic recovery must hold under every schedule");
    assert!(exploration.schedules > 1);
}

/// A solve that panics between taking the CELF lease and storing the
/// advanced trajectory (injected at `celf.advance`) must vacate the
/// slot: the next same-key solve cold-builds and its answer is
/// identical to an untouched cold solve.
#[test]
fn injected_celf_advance_panic_vacates_lease_and_next_solve_is_cold_equal() {
    let inst = tiny_instance();
    let req = greedy_request(2);
    let cold = Solver::new(inst.clone())
        .solve(&req)
        .expect("cold reference solve");

    let exploration = sched::explore_seeds(&Config::default(), &[11, 29], || {
        sched::arm_fault("celf.advance", 1);
        let solver = Solver::new(inst.clone());
        thread::scope(|scope| {
            let faulted = scope.spawn(|| solver.solve(&req)).join();
            let payload = faulted.expect_err("the armed solve must panic");
            let msg = sched::payload_message(payload.as_ref());
            assert!(sched::is_fault_panic(&msg), "unexpected panic: {msg}");
        });
        // The lease was dropped without a store: the slot is vacant,
        // so this solve cold-builds the trajectory (second celf miss)
        // while reusing the already-built bridge artifact.
        let report = solver.solve(&req).expect("recovery solve");
        assert_eq!(report.protectors, cold.protectors);
        let stats = solver.cache_stats();
        assert_eq!(stats.celf.misses, 2, "vacated lease must recharge");
        assert_eq!(stats.celf.hits, 0);
        assert_eq!(stats.bridge.misses, 1);
        assert_eq!(stats.bridge.hits, 1);
    })
    .unwrap_or_else(|failure| panic!("celf fault exploration failed: {failure}"));
    assert_eq!(exploration.schedules, 2);
}

/// A lease interrupted by an injected panic (at `scratch.lease`) must
/// still park its value back in the pool during unwind.
#[test]
fn injected_scratch_lease_panic_returns_the_scratch_to_the_pool() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        // nth = 2: the warm-up lease below is execution 1.
        sched::arm_fault("scratch.lease", 2);
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        {
            let mut warm = pool.lease();
            warm.push(7);
        }
        assert_eq!(pool.pooled(), 1);
        thread::scope(|scope| {
            let leaser = scope.spawn(|| {
                let _lease = pool.lease();
            });
            let payload = leaser.join().expect_err("the armed lease must panic");
            let msg = sched::payload_message(payload.as_ref());
            assert!(sched::is_fault_panic(&msg), "unexpected panic: {msg}");
        });
        // The guard's unwind parked the warm value back.
        assert_eq!(pool.pooled(), 1, "scratch lost during unwind");
        assert_eq!(*pool.lease(), vec![7]);
    })
    .expect("lease-unwind recovery must hold under every schedule");
    assert!(exploration.schedules > 1);
}

/// Cancellation is the fourth recovery-critical window: a builder
/// that observes a cancelled token returns `Err(Interrupted)` from
/// inside the `family.build` window, and under every 2-thread
/// schedule the Building slot is vacated, the waiter is released to
/// rebuild (or built first and never saw the error), and the miss
/// accounting matches whichever order the schedule chose.
#[test]
fn dfs_cancelled_family_build_frees_waiters_and_vacates_the_slot() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        let cache: FamilyCache<u8, u64> = FamilyCache::default();
        let token = CancelToken::new();
        token.cancel();
        thread::scope(|scope| {
            // The cancelled request: its builder polls the token the
            // way the engine's metered builders do and bails.
            let cancelled = scope.spawn(|| {
                cache.get_or_try_build(7, 0, || {
                    if token.is_cancelled() {
                        return Err(LcrbError::Interrupted {
                            reason: StopReason::Cancelled,
                        });
                    }
                    Ok(41)
                })
            });
            // An uncancelled request racing it on the same key.
            let clean = scope.spawn(|| cache.get_or_try_build::<LcrbError>(7, 0, || Ok(42)));
            let cancelled = cancelled.join().expect("no panic");
            let clean = clean.join().expect("no panic").expect("clean build");
            match cancelled {
                // The cancelled claim won the slot: it errored, the
                // waiter was released and rebuilt.
                Err(LcrbError::Interrupted {
                    reason: StopReason::Cancelled,
                }) => {
                    assert_eq!(clean, 42);
                    assert_eq!(cache.counter_snapshot().misses, 2);
                }
                // The clean claim won: the cancelled prober hit the
                // published value and its builder never ran.
                Ok(v) => {
                    assert_eq!(v, 42);
                    assert_eq!(clean, 42);
                    assert_eq!(cache.counter_snapshot().misses, 1);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        });
        // Never a poisoned slot: a fresh probe is a pure hit.
        let counters = cache.counter_snapshot();
        assert_eq!(cache.get_or_build(7, 0, || unreachable!("must hit")), 42);
        assert_eq!(cache.counter_snapshot().hits, counters.hits + 1);
    })
    .expect("cancelled-build recovery must hold under every schedule");
    assert!(exploration.schedules > 1);
    assert!(exploration.complete);
}

/// A cancel token flipped by a concurrent thread while a solve is in
/// flight (so cancellation can land inside the `family.build` and
/// `celf.advance` windows, both scheduling points) either interrupts
/// the solve or loses the race cleanly — and either way the session
/// is left unpoisoned: an uncancelled re-solve completes exactly and
/// cold-equal.
#[test]
fn cancellation_racing_a_solve_never_poisons_the_session() {
    let inst = tiny_instance();
    let req = greedy_request(2);
    let cold = Solver::new(inst.clone())
        .solve(&req)
        .expect("cold reference solve");

    let exploration = sched::explore_seeds(&Config::default(), &[5, 13, 23, 37], || {
        let solver = Solver::new(inst.clone());
        let token = CancelToken::new();
        let cancellable = req.clone().with_cancel(token.clone());
        thread::scope(|scope| {
            let solving = scope.spawn(|| solver.solve(&cancellable));
            let canceller = scope.spawn(|| token.cancel());
            let outcome = solving.join().expect("a cancelled solve never panics");
            canceller.join().expect("canceller");
            match outcome {
                Ok(report) => {
                    // Cancellation lost the race to every checkpoint.
                    assert_eq!(report.completion, Completion::Exact);
                    assert_eq!(report.protectors, cold.protectors);
                }
                Err(LcrbError::Interrupted { reason }) => {
                    assert_eq!(reason, StopReason::Cancelled);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        });
        // Recovery-critical invariant: whatever the race did, slots
        // were vacated, gates opened, and the session still produces
        // the exact cold answer.
        let after = solver.solve(&req).expect("recovery solve");
        assert_eq!(after.completion, Completion::Exact);
        assert_eq!(after.protectors, cold.protectors);
    })
    .unwrap_or_else(|failure| panic!("cancellation race exploration failed: {failure}"));
    assert_eq!(exploration.schedules, 4);
}

/// Two concurrent work-budget solves park prefix-consistent partial
/// trajectories under every schedule. Budgets meter the work a solve
/// *performs*, not the size of its answer, so a solve that resumes
/// the other's parked one-pick trajectory may finish inside the same
/// advance budget — every outcome is either the exact answer or its
/// one-pick prefix, and the follow-up unlimited solve always resumes
/// to the exact cold answer.
/// Two five-node communities with several escape routes, sized so a
/// budget-2 greedy actually commits two picks.
fn wider_instance() -> RumorBlockingInstance {
    let g = DiGraph::from_edges(
        10,
        [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (4, 5),
            (3, 6),
            (2, 7),
            (5, 8),
            (6, 9),
            (7, 8),
            (8, 9),
            (5, 6),
        ],
    )
    .expect("graph");
    let p = Partition::from_labels(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
    RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).expect("instance")
}

#[test]
fn degraded_parking_under_concurrent_solves_stays_prefix_consistent() {
    let inst = wider_instance();
    let full = greedy_request(2);
    let cold = Solver::new(inst.clone())
        .solve(&full)
        .expect("cold reference solve");
    assert!(
        cold.protectors.len() >= 2,
        "fixture must have at least two picks for a meaningful prefix"
    );
    let starved = full
        .clone()
        .with_budget(RunBudget::unlimited().with_max_advances(1));

    let exploration = sched::explore_seeds(&Config::default(), &[3, 17], || {
        let solver = Solver::new(inst.clone());
        thread::scope(|scope| {
            let a = scope.spawn(|| solver.solve(&starved));
            let b = scope.spawn(|| solver.solve(&starved));
            let mut degraded = 0;
            for h in [a, b] {
                let report = h
                    .join()
                    .expect("a budget stop never panics")
                    .expect("a budget stop degrades instead of erroring");
                if report.is_degraded() {
                    // Best-so-far is the bitwise prefix of the cold run.
                    assert_eq!(report.protectors[..], cold.protectors[..1]);
                    degraded += 1;
                } else {
                    // This solve resumed the other's parked prefix and
                    // finished inside its own advance budget.
                    assert_eq!(report.protectors, cold.protectors);
                }
            }
            // A cold trajectory cannot reach two picks on one advance:
            // at least one of the pair must have degraded.
            assert!(degraded >= 1, "both solves claimed to finish cold");
        });
        // The parked one-pick trajectory resumes, never restarts.
        let resumed = solver.solve(&full).expect("resume solve");
        assert_eq!(resumed.completion, Completion::Exact);
        assert_eq!(resumed.protectors, cold.protectors);
    })
    .unwrap_or_else(|failure| panic!("degraded-parking exploration failed: {failure}"));
    assert_eq!(exploration.schedules, 2);
}
