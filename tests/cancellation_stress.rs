//! Randomized cancellation/budget stress for the shared `Solver`
//! session: `solve_many` batches with per-request budgets drawn at
//! random (work-unit caps, advisory deadlines, pre-armed and
//! mid-flight cancel tokens) racing a batch-wide cancel. The point is
//! not the answers — it is the absence of the failure modes the
//! anytime contract forbids: hangs, panics, poisoned `FamilyCache`
//! slots, and stranded `Gate` waiters.
//!
//! CI passes a per-build random seed through `LCRB_STRESS_SEED` (it
//! is logged to the step summary); locally a fixed seed runs. The
//! seed is printed so any failure is reproducible from the logs.

use std::time::Duration;

use lcrb_repro::graph::generators;
use lcrb_repro::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn instance(seed: u64) -> RumorBlockingInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (g, labels) = generators::planted_partition(&[30, 30], 0.25, 0.05, false, &mut rng)
        .expect("community sizes are positive");
    let partition = Partition::from_labels(labels);
    RumorBlockingInstance::with_random_seeds(g, partition, 0, 2, &mut rng)
        .expect("pinned community is non-empty")
}

/// One randomized budget: unlimited, a work-unit cap, or a short
/// advisory deadline.
fn random_budget(rng: &mut SmallRng) -> RunBudget {
    match rng.gen_range(0..6u32) {
        0 | 1 => RunBudget::unlimited(),
        2 => RunBudget::unlimited().with_max_sims(rng.gen_range(0..1500)),
        3 => RunBudget::unlimited().with_max_sketches(rng.gen_range(1..300)),
        4 => RunBudget::unlimited().with_max_advances(rng.gen_range(0..3)),
        _ => RunBudget::unlimited().with_deadline(Duration::from_micros(rng.gen_range(0..2000))),
    }
}

fn random_request(rng: &mut SmallRng) -> SolveRequest {
    let estimator = if rng.gen_range(0..2u32) == 0 {
        Estimator::MonteCarlo
    } else {
        Estimator::Sketch(SketchParams::default())
    };
    SolveRequest {
        realizations: 8,
        candidates: CandidatePool::BackwardRadius(2),
        estimator,
        threads: rng.gen_range(1..4),
        ..SolveRequest::greedy_budget(rng.gen_range(1..4usize))
    }
    .with_budget(random_budget(rng))
}

#[test]
fn randomized_budgets_and_cancellation_never_poison_the_session() {
    let seed = std::env::var("LCRB_STRESS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0xB0_A710AD);
    println!("cancellation stress seed: {seed}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let inst = instance(seed);

    for round in 0..4 {
        let solver = Solver::new(inst.clone());
        let mut batch = Vec::new();
        let mut live_tokens = Vec::new();
        for _ in 0..8 {
            let mut req = random_request(&mut rng);
            match rng.gen_range(0..4u32) {
                // A quarter of the requests carry a pre-tripped token:
                // they must fail fast at the entry checkpoint.
                0 => {
                    let token = CancelToken::new();
                    token.cancel();
                    req = req.with_cancel(token);
                }
                // Another quarter get a token the canceller thread
                // flips somewhere mid-flight.
                1 => {
                    let token = CancelToken::new();
                    live_tokens.push(token.clone());
                    req = req.with_cancel(token);
                }
                _ => {}
            }
            batch.push(req);
        }

        let batch_token = CancelToken::new();
        let delay = Duration::from_micros(rng.gen_range(0..3000));
        let reports = std::thread::scope(|scope| {
            let canceller = scope.spawn({
                let batch_token = batch_token.clone();
                let live_tokens = live_tokens.clone();
                move || {
                    std::thread::sleep(delay);
                    for token in &live_tokens {
                        token.cancel();
                    }
                    // Every other round also trips the batch-wide
                    // cancel mid-flight.
                    if round % 2 == 0 {
                        batch_token.cancel();
                    }
                }
            });
            let reports = solver.solve_many_with_cancel(&batch, 4, &batch_token);
            canceller.join().expect("canceller thread");
            reports
        });

        // No hangs (we got here), no panics, and every slot resolved
        // to a legal outcome: an exact or degraded report, or a typed
        // interruption.
        assert_eq!(reports.len(), batch.len());
        for (req, slot) in batch.iter().zip(&reports) {
            match slot {
                Ok(report) => {
                    if report.completion.is_exact() {
                        assert!(!report.is_degraded());
                    }
                    if let StopRule::Budget(b) = req.stop {
                        assert!(report.protectors.len() <= b);
                    }
                }
                Err(LcrbError::Interrupted { .. }) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }

        // Recovery: the same session, stripped of budgets and tokens,
        // answers every request exactly and cold-equal — no poisoned
        // slot or stranded gate survives the chaos.
        let fresh = Solver::new(inst.clone());
        for req in &batch {
            let mut plain = req.clone().with_budget(RunBudget::unlimited());
            plain.cancel = None;
            let recovered = solver.solve(&plain).expect("recovery solve");
            assert!(recovered.completion.is_exact());
            let cold = fresh.solve(&plain).expect("cold reference solve");
            assert_eq!(recovered.protectors, cold.protectors);
        }

        // Cache-stat consistency: with every artifact rebuilt, a full
        // replay of the recovery set is pure hits.
        let before = solver.cache_stats();
        for req in &batch {
            let mut plain = req.clone().with_budget(RunBudget::unlimited());
            plain.cancel = None;
            solver.solve(&plain).expect("replay solve");
        }
        let delta = solver.cache_stats().delta_since(&before);
        assert_eq!(delta.misses(), 0, "replay after recovery must not rebuild");
        assert!(delta.hits() > 0);
    }
}
