//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use lcrb_graph::components::{strongly_connected_components, weakly_connected_labels};
use lcrb_graph::distance::{eccentricity, harmonic_closeness_in};
use lcrb_graph::generators;
use lcrb_graph::kcore::core_decomposition;
use lcrb_graph::pagerank::{pagerank, PageRankConfig};
use lcrb_graph::traversal::{
    bfs_distances, is_reachable, relax_with_source, reverse_bfs_distances,
};
use lcrb_graph::{CsrGraph, DiGraph, GraphError, NodeId, UnionFind};

/// Strategy: a random directed graph as (node count, edge pairs).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            let mut g = DiGraph::with_nodes(n);
            for (u, v) in pairs {
                if u != v {
                    let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn bfs_distances_satisfy_edge_relaxation(g in arb_graph(40, 160), src in 0usize..40) {
        let src = src % g.node_count();
        let d = bfs_distances(&g, &[NodeId::new(src)]);
        // Every edge (u, v): d[v] <= d[u] + 1 when u is reached.
        for (u, v) in g.edges() {
            if let Some(du) = d[u.index()] {
                let dv = d[v.index()].expect("neighbor of reached node must be reached");
                prop_assert!(dv <= du + 1);
            }
        }
        // Every reached non-source node has an in-neighbor one hop closer.
        for v in g.nodes() {
            if let Some(dv) = d[v.index()] {
                if dv > 0 {
                    let ok = g
                        .in_neighbors(v)
                        .iter()
                        .any(|&u| d[u.index()] == Some(dv - 1));
                    prop_assert!(ok, "node {v} at distance {dv} lacks a predecessor");
                }
            }
        }
    }

    #[test]
    fn reverse_bfs_matches_forward_on_reversed_graph(g in arb_graph(30, 120), src in 0usize..30) {
        let src = src % g.node_count();
        let rev = g.reversed();
        let a = reverse_bfs_distances(&g, &[NodeId::new(src)]);
        let b = bfs_distances(&rev, &[NodeId::new(src)]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn incremental_relaxation_matches_batch(g in arb_graph(30, 120), srcs in proptest::collection::vec(0usize..30, 1..5)) {
        let n = g.node_count();
        let srcs: Vec<NodeId> = srcs.into_iter().map(|s| NodeId::new(s % n)).collect();
        let mut incremental = vec![None; n];
        for &s in &srcs {
            relax_with_source(&g, &mut incremental, s);
        }
        let batch = bfs_distances(&g, &srcs);
        prop_assert_eq!(incremental, batch);
    }

    #[test]
    fn weak_components_agree_with_symmetric_reachability(g in arb_graph(20, 60)) {
        let labels = weakly_connected_labels(&g);
        let s = g.symmetrized();
        for u in g.nodes() {
            for v in g.nodes() {
                let connected = is_reachable(&s, u, v);
                prop_assert_eq!(labels[u.index()] == labels[v.index()], connected);
            }
        }
    }

    #[test]
    fn scc_partition_and_mutual_reachability(g in arb_graph(16, 60)) {
        let sccs = strongly_connected_components(&g);
        let total: usize = sccs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        // Nodes in the same SCC are mutually reachable.
        for c in &sccs {
            for &u in c {
                for &v in c {
                    prop_assert!(is_reachable(&g, u, v));
                }
            }
        }
        // Representatives of different SCCs are not mutually reachable.
        for (i, a) in sccs.iter().enumerate() {
            for b in sccs.iter().skip(i + 1) {
                let (u, v) = (a[0], b[0]);
                prop_assert!(!(is_reachable(&g, u, v) && is_reachable(&g, v, u)));
            }
        }
    }

    #[test]
    fn union_find_labels_are_an_equivalence(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
        let mut uf = UnionFind::new(20);
        let mut naive: Vec<usize> = (0..20).collect();
        for (a, b) in ops {
            uf.union(a, b);
            // Naive merge for cross-checking.
            let (ra, rb) = (naive[a], naive[b]);
            if ra != rb {
                for x in naive.iter_mut() {
                    if *x == rb {
                        *x = ra;
                    }
                }
            }
        }
        let labels = uf.labels();
        for a in 0..20 {
            for b in 0..20 {
                prop_assert_eq!(labels[a] == labels[b], naive[a] == naive[b]);
            }
        }
    }

    #[test]
    fn reversed_preserves_edge_count_and_flips(g in arb_graph(25, 80)) {
        let r = g.reversed();
        prop_assert_eq!(r.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(r.has_edge(v, u));
        }
    }

    #[test]
    fn induced_subgraph_edges_subset(g in arb_graph(20, 60), keep in proptest::collection::btree_set(0usize..20, 1..10)) {
        let keep: Vec<NodeId> = keep
            .into_iter()
            .filter(|&i| i < g.node_count())
            .map(NodeId::new)
            .collect();
        prop_assume!(!keep.is_empty());
        let sub = g.induced_subgraph(&keep);
        for (u, v) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.parent_id(u), sub.parent_id(v)));
        }
        // Every parent edge between kept nodes survives.
        let mut expected = 0usize;
        for &u in &keep {
            for &v in &keep {
                if g.has_edge(u, v) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(sub.graph.edge_count(), expected);
    }

    #[test]
    fn gnm_directed_is_exact_and_simple(n in 3usize..40, seed in 0u64..1000) {
        let max = n * (n - 1);
        let m = max / 3;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnm_directed(n, m, &mut rng).unwrap();
        prop_assert_eq!(g.edge_count(), m);
        // Simplicity: the edges iterator yields no duplicates.
        let set: std::collections::HashSet<_> = g.edges().collect();
        prop_assert_eq!(set.len(), m);
    }

    #[test]
    fn planted_partition_labels_cover_all_nodes(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[8, 12, 5], 0.4, 0.05, false, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), 25);
        prop_assert_eq!(labels.len(), 25);
        prop_assert_eq!(*labels.iter().max().unwrap(), 2);
    }

    #[test]
    fn core_numbers_match_peeling_definition(g in arb_graph(25, 100)) {
        let d = core_decomposition(&g);
        let und = g.symmetrized();
        // Naive verification: iteratively peel nodes with undirected
        // degree < k; survivors are exactly the k-core.
        for k in 1..=d.degeneracy {
            let mut alive: Vec<bool> = vec![true; g.node_count()];
            loop {
                let mut changed = false;
                for v in und.nodes() {
                    if alive[v.index()] {
                        let deg = und
                            .out_neighbors(v)
                            .iter()
                            .filter(|w| alive[w.index()])
                            .count();
                        if deg < k as usize {
                            alive[v.index()] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in g.nodes() {
                prop_assert_eq!(
                    alive[v.index()],
                    d.core_of(v) >= k,
                    "node {} at k = {}", v, k
                );
            }
        }
    }

    #[test]
    fn pagerank_is_a_probability_distribution(g in arb_graph(25, 100)) {
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
        prop_assert!(pr.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn eccentricity_is_max_bfs_distance(g in arb_graph(20, 60), src in 0usize..20) {
        let src = NodeId::new(src % g.node_count());
        let d = bfs_distances(&g, &[src]);
        let expected = d.iter().flatten().copied().filter(|&x| x > 0).max();
        prop_assert_eq!(eccentricity(&g, src), expected);
    }

    #[test]
    fn harmonic_closeness_is_bounded(g in arb_graph(20, 80), v in 0usize..20) {
        let v = NodeId::new(v % g.node_count());
        let c = harmonic_closeness_in(&g, v);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "closeness {c}");
    }

    #[test]
    fn csr_snapshots_of_generator_graphs_validate(g in arb_graph(30, 120)) {
        let csr = CsrGraph::from(&g);
        prop_assert_eq!(csr.validate(), Ok(()));
        // And the checked constructor round-trips the same arrays.
        let out_offsets: Vec<u32> = std::iter::once(0)
            .chain(g.nodes().scan(0u32, |acc, v| {
                *acc += g.out_degree(v) as u32;
                Some(*acc)
            }))
            .collect();
        let in_offsets: Vec<u32> = std::iter::once(0)
            .chain(g.nodes().scan(0u32, |acc, v| {
                *acc += g.in_degree(v) as u32;
                Some(*acc)
            }))
            .collect();
        let out_targets: Vec<NodeId> =
            g.nodes().flat_map(|v| g.out_neighbors(v).to_vec()).collect();
        let in_sources: Vec<NodeId> =
            g.nodes().flat_map(|v| g.in_neighbors(v).to_vec()).collect();
        let rebuilt = CsrGraph::from_parts(out_offsets, out_targets, in_offsets, in_sources);
        prop_assert!(rebuilt.is_ok());
        let rebuilt = rebuilt.unwrap();
        for v in g.nodes() {
            prop_assert_eq!(rebuilt.out_neighbors(v), csr.out_neighbors(v));
            prop_assert_eq!(rebuilt.in_neighbors(v), csr.in_neighbors(v));
        }
    }

    #[test]
    fn csr_validate_rejects_corrupted_offsets(
        g in arb_graph(20, 80),
        node in 0usize..20,
        bump in 1u32..5,
    ) {
        prop_assume!(g.edge_count() > 0);
        let csr = CsrGraph::from(&g);
        let node = node % g.node_count();
        // Push one out-offset past the adjacency length: if it is the
        // final offset this breaks the length agreement, otherwise the
        // array stops being monotone — validate must catch both.
        let mut out_offsets: Vec<u32> = std::iter::once(0)
            .chain(g.nodes().scan(0u32, |acc, v| {
                *acc += g.out_degree(v) as u32;
                Some(*acc)
            }))
            .collect();
        out_offsets[node + 1] = g.edge_count() as u32 + bump;
        let in_offsets: Vec<u32> = std::iter::once(0)
            .chain(g.nodes().scan(0u32, |acc, v| {
                *acc += g.in_degree(v) as u32;
                Some(*acc)
            }))
            .collect();
        let out_targets: Vec<NodeId> =
            g.nodes().flat_map(|v| g.out_neighbors(v).to_vec()).collect();
        let in_sources: Vec<NodeId> =
            g.nodes().flat_map(|v| g.in_neighbors(v).to_vec()).collect();
        let rebuilt = CsrGraph::from_parts(out_offsets, out_targets, in_offsets, in_sources);
        prop_assert!(matches!(rebuilt, Err(GraphError::InvalidCsr { .. })));
        let _ = csr;
    }

    #[test]
    fn chung_lu_meets_exact_budgets(seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) = generators::community_chung_lu(
            &[30, 20], &[90, 50], 25, 2.5, false, &mut rng,
        )
        .unwrap();
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        prop_assert_eq!(intra, 140);
        prop_assert_eq!(inter, 25);
        // Simple graph: no duplicate edges or self-loops.
        let set: std::collections::HashSet<_> = g.edges().collect();
        prop_assert_eq!(set.len(), g.edge_count());
        prop_assert!(g.edges().all(|(u, v)| u != v));
    }
}
