//! Edge-list I/O in the SNAP-style text format used by the paper's
//! datasets (Enron email, Hep collaboration).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{DiGraph, NodeId, ParseEdgeListError};

/// The result of parsing an edge list: the graph plus bookkeeping
/// about the original labels and any rows that were dropped.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The parsed graph with dense ids in first-appearance order.
    pub graph: DiGraph,
    /// `labels[i]` is the original token of node `i` in the file.
    pub labels: Vec<String>,
    /// Number of `(v, v)` rows dropped.
    pub skipped_self_loops: usize,
    /// Number of repeated rows dropped.
    pub skipped_duplicates: usize,
}

impl LoadedGraph {
    /// Looks up the dense id assigned to an original label.
    #[must_use]
    pub fn id_of(&self, label: &str) -> Option<NodeId> {
        self.labels.iter().position(|l| l == label).map(NodeId::new)
    }
}

/// Reads a whitespace-separated edge list.
///
/// Lines starting with `#` or `%` (after trimming) and blank lines
/// are ignored. Each remaining line must hold at least two tokens
/// `source target`; extra tokens (e.g. weights or timestamps) are
/// ignored. Node labels are arbitrary strings mapped to dense ids in
/// first-appearance order. Self-loops and duplicate edges are dropped
/// and counted, matching how the paper's datasets are normally
/// cleaned.
///
/// # Errors
///
/// Returns [`ParseEdgeListError::Io`] on read failures and
/// [`ParseEdgeListError::MalformedLine`] for a non-comment line with
/// fewer than two tokens.
///
/// # Examples
///
/// ```
/// use lcrb_graph::io::read_edge_list;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# a comment\n0 1\n1 2\n";
/// let loaded = read_edge_list(text.as_bytes())?;
/// assert_eq!(loaded.graph.node_count(), 3);
/// assert_eq!(loaded.graph.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, ParseEdgeListError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut labels: Vec<String> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut skipped_self_loops = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (tokens.next(), tokens.next()) else {
            return Err(ParseEdgeListError::MalformedLine {
                line: lineno + 1,
                contents: line.clone(),
            });
        };
        let mut intern = |tok: &str| -> NodeId {
            if let Some(&id) = ids.get(tok) {
                id
            } else {
                let id = NodeId::new(labels.len());
                ids.insert(tok.to_owned(), id);
                labels.push(tok.to_owned());
                id
            }
        };
        let u = intern(a);
        let v = intern(b);
        if u == v {
            skipped_self_loops += 1;
        } else {
            edges.push((u, v));
        }
    }

    let mut graph = DiGraph::with_nodes(labels.len());
    let mut skipped_duplicates = 0usize;
    for (u, v) in edges {
        match graph.add_edge(u, v) {
            Ok(true) => {}
            Ok(false) => skipped_duplicates += 1,
            Err(e) => unreachable!("interned ids are always in bounds: {e}"),
        }
    }
    Ok(LoadedGraph {
        graph,
        labels,
        skipped_self_loops,
        skipped_duplicates,
    })
}

/// Writes the graph as a `source target` edge list with a header
/// comment, readable back via [`read_edge_list`].
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
pub fn write_edge_list<W: Write>(graph: &DiGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# directed edge list: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_extra_tokens() {
        let text = "# comment\n% other comment\n\n a b 0.5\nb c\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.node_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 2);
        assert_eq!(loaded.labels, vec!["a", "b", "c"]);
        assert_eq!(loaded.id_of("b"), Some(NodeId::new(1)));
        assert_eq!(loaded.id_of("zzz"), None);
    }

    #[test]
    fn ids_follow_first_appearance() {
        let loaded = read_edge_list("5 3\n3 9\n".as_bytes()).unwrap();
        assert_eq!(loaded.labels, vec!["5", "3", "9"]);
        assert!(loaded.graph.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn self_loops_and_duplicates_are_counted() {
        let loaded = read_edge_list("a a\na b\na b\nb a\n".as_bytes()).unwrap();
        assert_eq!(loaded.skipped_self_loops, 1);
        assert_eq!(loaded.skipped_duplicates, 1);
        assert_eq!(loaded.graph.edge_count(), 2);
    }

    #[test]
    fn malformed_line_is_reported_with_position() {
        let err = read_edge_list("a b\nonly-one\n".as_bytes()).unwrap_err();
        match err {
            ParseEdgeListError::MalformedLine { line, contents } => {
                assert_eq!(line, 2);
                assert_eq!(contents, "only-one");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        assert_eq!(loaded.graph.node_count(), 4);
        assert_eq!(loaded.graph.edge_count(), 5);
        assert_eq!(loaded.skipped_duplicates, 0);
        for (u, v) in g.edges() {
            // Labels are the decimal ids, so the mapping is identity.
            assert!(loaded.graph.has_edge(u, v));
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let loaded = read_edge_list("".as_bytes()).unwrap();
        assert!(loaded.graph.is_empty());
        assert!(loaded.labels.is_empty());
    }
}
