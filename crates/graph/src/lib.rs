//! # lcrb-graph
//!
//! Directed-graph substrate for the reproduction of *Least Cost Rumor
//! Blocking in Social Networks* (Fan et al., ICDCS 2013).
//!
//! The paper models a social network as a directed graph `G = (N, E)`
//! (§III) and all of its algorithms — Rumor Forward Search Trees,
//! Bridge-end Backward Search Trees, the two diffusion models — are
//! built on breadth-first traversal of that graph. This crate
//! provides everything those layers need, built from scratch:
//!
//! - [`DiGraph`]: a mutable adjacency-list directed graph with dense
//!   `u32` ids, maintained in both directions;
//! - [`CsrGraph`]: a frozen compressed-sparse-row snapshot for hot
//!   simulation loops;
//! - [`traversal`]: multi-source / bounded / filtered BFS, BFS trees,
//!   incremental distance relaxation, DFS, topological sort;
//! - [`components`]: weakly connected components (via [`UnionFind`])
//!   and Tarjan strongly connected components;
//! - [`generators`]: Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//!   planted-partition and exact-budget community graphs, plus
//!   deterministic fixtures;
//! - [`io`]: SNAP-style edge-list reading and writing;
//! - [`metrics`]: density, degree statistics, reciprocity,
//!   clustering — used to calibrate the synthetic datasets.
//!
//! ## Example
//!
//! ```
//! use lcrb_graph::{DiGraph, NodeId};
//! use lcrb_graph::traversal::bfs_distances;
//!
//! # fn main() -> Result<(), lcrb_graph::GraphError> {
//! let mut g = DiGraph::with_nodes(4);
//! g.add_edge(NodeId::new(0), NodeId::new(1))?;
//! g.add_edge(NodeId::new(1), NodeId::new(2))?;
//! g.add_edge(NodeId::new(2), NodeId::new(3))?;
//!
//! let dist = bfs_distances(&g, &[NodeId::new(0)]);
//! assert_eq!(dist[3], Some(3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod betweenness;
pub mod components;
mod csr;
mod digraph;
pub mod distance;
mod error;
pub mod generators;
pub mod io;
pub mod kcore;
pub mod metrics;
mod node;
pub mod pagerank;
pub mod traversal;
mod union_find;

pub use csr::CsrGraph;
pub use digraph::{DiGraph, Edges, Nodes, Subgraph};
pub use error::{GraphError, ParseEdgeListError};
pub use node::NodeId;
pub use union_find::UnionFind;
