//! PageRank by power iteration.
//!
//! A classic influence proxy, provided both as a network-science
//! helper for dataset characterization and as the basis of the
//! PageRank protector-selection baseline in the `lcrb` crate (an
//! extension beyond the paper's MaxDegree/Proximity heuristics).

// xtask-allow-file: index -- rank vectors are node_count-sized and swapped wholesale each iteration
use crate::DiGraph;

/// Configuration for [`pagerank`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` (teleport probability `1 - d`).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 change between iterations.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// The result of [`pagerank`].
#[derive(Clone, Debug, PartialEq)]
pub struct PageRank {
    /// Scores, indexed by node; they sum to 1 (for non-empty graphs).
    pub scores: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// `true` if the L1 change dropped below the tolerance before the
    /// iteration cap.
    pub converged: bool,
}

/// Computes PageRank with uniform teleportation; dangling nodes
/// (out-degree 0) redistribute their mass uniformly.
///
/// # Panics
///
/// Panics if `config.damping` is not in `[0, 1)`.
///
/// # Examples
///
/// ```
/// use lcrb_graph::pagerank::{pagerank, PageRankConfig};
/// use lcrb_graph::generators::star_graph;
/// use lcrb_graph::NodeId;
///
/// // The hub of a star collects the most rank.
/// let g = star_graph(6);
/// let pr = pagerank(&g, &PageRankConfig::default());
/// let hub = pr.scores[0];
/// assert!(pr.scores[1..].iter().all(|&s| s < hub));
/// ```
#[must_use]
pub fn pagerank(g: &DiGraph, config: &PageRankConfig) -> PageRank {
    assert!(
        (0.0..1.0).contains(&config.damping),
        "damping must be in [0, 1), got {}",
        config.damping
    );
    let n = g.node_count();
    if n == 0 {
        return PageRank {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut dangling = 0.0;
        for v in g.nodes() {
            let out = g.out_degree(v);
            if out == 0 {
                dangling += rank[v.index()];
            }
        }
        let base = (1.0 - config.damping) / nf + config.damping * dangling / nf;
        next.iter_mut().for_each(|x| *x = base);
        for v in g.nodes() {
            let out = g.out_degree(v);
            if out > 0 {
                let share = config.damping * rank[v.index()] / out as f64;
                for &w in g.out_neighbors(v) {
                    next[w.index()] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        core::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    PageRank {
        scores: rank,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph};
    use crate::NodeId;

    #[test]
    fn empty_graph() {
        let pr = pagerank(&DiGraph::new(), &PageRankConfig::default());
        assert!(pr.scores.is_empty());
        assert!(pr.converged);
    }

    #[test]
    fn scores_sum_to_one() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 2), (2, 4)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(pr.converged);
        assert!(pr.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn symmetric_graphs_have_uniform_rank() {
        for g in [cycle_graph(7), complete_graph(5)] {
            let pr = pagerank(&g, &PageRankConfig::default());
            let expected = 1.0 / g.node_count() as f64;
            for &s in &pr.scores {
                assert!((s - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn authority_attracts_rank() {
        // 0, 1, 2 all point to 3.
        let g = DiGraph::from_edges(4, [(0, 3), (1, 3), (2, 3)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr.scores[3] > pr.scores[0] * 2.0);
    }

    #[test]
    fn dangling_mass_is_preserved() {
        // Node 1 is a sink; mass must not leak.
        let g = DiGraph::from_edges(3, [(0, 1), (2, 1)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = cycle_graph(10);
        let pr = pagerank(
            &g,
            &PageRankConfig {
                max_iterations: 2,
                tolerance: 0.0,
                ..PageRankConfig::default()
            },
        );
        assert_eq!(pr.iterations, 2);
        assert!(!pr.converged);
    }

    #[test]
    #[should_panic(expected = "damping must be in [0, 1)")]
    fn rejects_bad_damping() {
        let _ = pagerank(
            &DiGraph::with_nodes(1),
            &PageRankConfig {
                damping: 1.0,
                ..PageRankConfig::default()
            },
        );
    }

    #[test]
    fn zero_damping_is_uniform() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let pr = pagerank(
            &g,
            &PageRankConfig {
                damping: 0.0,
                ..PageRankConfig::default()
            },
        );
        for &s in &pr.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-12);
        }
        let _ = NodeId::new(0);
    }
}
