//! Betweenness centrality (Brandes' algorithm).
//!
//! The last of the classic centralities used to characterize the
//! synthetic datasets and to reason about protector placement:
//! bridge ends with high betweenness sit on many escape paths.

// xtask-allow-file: index -- the Brandes buffers are node-indexed arrays sized together before each source's pass
use std::collections::VecDeque;

use crate::{DiGraph, NodeId};

/// Computes directed, unweighted betweenness centrality for every
/// node with Brandes' algorithm (`O(n·m)` time, `O(n + m)` space).
///
/// `scores[v] = Σ_{s != v != t} σ_st(v) / σ_st`, where `σ_st` counts
/// shortest `s → t` paths and `σ_st(v)` those passing through `v`.
/// Endpoints are excluded, unreachable pairs contribute 0, and no
/// normalization is applied (divide by `(n-1)(n-2)` yourself if you
/// need it).
///
/// # Examples
///
/// ```
/// use lcrb_graph::betweenness::betweenness_centrality;
/// use lcrb_graph::generators::path_graph;
///
/// // On a directed path 0 -> 1 -> 2, only the middle node carries
/// // flow (the single 0 -> 2 path).
/// let g = path_graph(3);
/// let b = betweenness_centrality(&g);
/// assert_eq!(b, vec![0.0, 1.0, 0.0]);
/// ```
#[must_use]
pub fn betweenness_centrality(g: &DiGraph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    // Reused per-source scratch.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut queue = VecDeque::new();

    for s in g.nodes() {
        // Single-source shortest-path counting.
        for i in 0..n {
            sigma[i] = 0.0;
            dist[i] = -1;
            delta[i] = 0.0;
            preds[i].clear();
        }
        stack.clear();
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.out_neighbors(v) {
                if dist[w.index()] < 0 {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dist[v.index()] + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    preds[w.index()].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            for &v in &preds[w.index()] {
                delta[v.index()] += sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
            if w != s {
                centrality[w.index()] += delta[w.index()];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn empty_and_singleton() {
        assert!(betweenness_centrality(&DiGraph::new()).is_empty());
        assert_eq!(betweenness_centrality(&DiGraph::with_nodes(1)), vec![0.0]);
    }

    #[test]
    fn directed_path_interior_counts() {
        // 0 -> 1 -> 2 -> 3: node v at position i carries all pairs
        // (s < i, t > i): node 1 -> 1*2 = 2 pairs, node 2 -> 2*1 = 2.
        let g = path_graph(4);
        let b = betweenness_centrality(&g);
        assert_eq!(b, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn star_hub_carries_all_leaf_pairs() {
        // Symmetric star on 5 nodes: 4 leaves, each ordered leaf pair
        // (4*3 = 12) routes through the hub.
        let g = star_graph(5);
        let b = betweenness_centrality(&g);
        assert_eq!(b[0], 12.0);
        for &leaf in &b[1..5] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn complete_graph_has_zero_betweenness() {
        let g = complete_graph(5);
        let b = betweenness_centrality(&g);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn directed_cycle_is_uniform() {
        // Every node lies on the unique path between the pairs that
        // wrap around it; by symmetry all scores are equal.
        let g = cycle_graph(6);
        let b = betweenness_centrality(&g);
        for &x in &b {
            assert!((x - b[0]).abs() < 1e-12);
        }
        assert!(b[0] > 0.0);
        // Total betweenness = sum over pairs of (path length - 1):
        // pairs at distance d contribute d - 1; 6 nodes × distances
        // 1..5 -> 6 * (0+1+2+3+4) = 60.
        let total: f64 = b.iter().sum();
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn split_paths_share_credit() {
        // Two equal-length 0 -> 3 routes (via 1 and via 2): each
        // interior node carries half of the single (0, 3) pair.
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let b = betweenness_centrality(&g);
        assert!((b[1] - 0.5).abs() < 1e-12);
        assert!((b[2] - 0.5).abs() < 1e-12);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[3], 0.0);
    }

    #[test]
    fn matches_naive_counting_on_random_graphs() {
        use crate::traversal::bfs_distances;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let g = crate::generators::gnm_directed(24, 72, &mut rng).unwrap();
        let fast = betweenness_centrality(&g);
        // Naive: enumerate shortest paths by DP over the BFS DAG.
        let n = g.node_count();
        let mut naive = vec![0.0f64; n];
        for s in g.nodes() {
            let dist = bfs_distances(&g, &[s]);
            // σ from s.
            let mut order: Vec<NodeId> = g.nodes().filter(|v| dist[v.index()].is_some()).collect();
            order.sort_by_key(|v| dist[v.index()].unwrap());
            let mut sigma = vec![0.0f64; n];
            sigma[s.index()] = 1.0;
            for &v in &order {
                for &w in g.out_neighbors(v) {
                    if dist[w.index()] == Some(dist[v.index()].unwrap() + 1) {
                        sigma[w.index()] += sigma[v.index()];
                    }
                }
            }
            for t in g.nodes() {
                if t == s || dist[t.index()].is_none() || sigma[t.index()] == 0.0 {
                    continue;
                }
                // σ_st(v): paths through v = σ_sv * σ_vt where
                // distances add up; compute σ_vt by reverse DP.
                let dt = dist[t.index()].unwrap();
                let mut sigma_to_t = vec![0.0f64; n];
                sigma_to_t[t.index()] = 1.0;
                for &v in order.iter().rev() {
                    for &w in g.out_neighbors(v) {
                        if dist[w.index()] == Some(dist[v.index()].unwrap() + 1) {
                            sigma_to_t[v.index()] += sigma_to_t[w.index()];
                        }
                    }
                }
                for v in g.nodes() {
                    if v == s || v == t {
                        continue;
                    }
                    if let Some(dv) = dist[v.index()] {
                        if dv < dt && sigma_to_t[v.index()] > 0.0 {
                            naive[v.index()] +=
                                sigma[v.index()] * sigma_to_t[v.index()] / sigma[t.index()];
                        }
                    }
                }
            }
        }
        for v in 0..n {
            assert!(
                (fast[v] - naive[v]).abs() < 1e-9,
                "node {v}: {} vs {}",
                fast[v],
                naive[v]
            );
        }
    }
}
