//! k-core decomposition (degeneracy ordering) on the symmetrized
//! graph.
//!
//! Network-science helper used to characterize the synthetic datasets
//! and as an alternative protector-placement signal: high-core nodes
//! sit in densely knit regions, which correlates with how fast they
//! can relay a protector cascade.

// xtask-allow-file: index -- degree/bin/position arrays are node_count-sized and permuted together by the peeling loop
use crate::{DiGraph, NodeId};

/// The result of [`core_decomposition`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of node `v` (the largest `k` such
    /// that `v` belongs to a subgraph of minimum total degree `k`,
    /// degrees counted on the symmetrized graph).
    pub core: Vec<u32>,
    /// Nodes in degeneracy order (peeling order: lowest-degree
    /// first).
    pub order: Vec<NodeId>,
    /// The degeneracy of the graph (`max(core)`, 0 for empty graphs).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Core number of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    #[must_use]
    pub fn core_of(&self, node: NodeId) -> u32 {
        self.core[node.index()]
    }

    /// All nodes with core number at least `k`, in increasing id
    /// order.
    #[must_use]
    pub fn k_core(&self, k: u32) -> Vec<NodeId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

/// Computes the k-core decomposition of the symmetrized graph with
/// the linear-time bucket peeling algorithm (Batagelj–Zaveršnik).
///
/// Edge direction is ignored: each node's degree is its undirected
/// degree (a reciprocal pair counts once).
///
/// # Examples
///
/// ```
/// use lcrb_graph::kcore::core_decomposition;
/// use lcrb_graph::generators::complete_graph;
/// use lcrb_graph::NodeId;
///
/// let g = complete_graph(5);
/// let d = core_decomposition(&g);
/// assert_eq!(d.degeneracy, 4);
/// assert!(g.nodes().all(|v| d.core_of(v) == 4));
/// ```
#[must_use]
pub fn core_decomposition(g: &DiGraph) -> CoreDecomposition {
    let n = g.node_count();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            order: Vec::new(),
            degeneracy: 0,
        };
    }
    // Undirected neighbor sets (deduplicated).
    let und = g.symmetrized();
    let degree: Vec<usize> = und.nodes().map(|v| und.out_degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    {
        let mut next = bins.clone();
        for v in 0..n {
            pos[v] = next[degree[v]];
            vert[pos[v]] = v;
            next[degree[v]] += 1;
        }
    }

    let mut deg = degree.clone();
    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    for i in 0..n {
        let v = vert[i];
        core[v] = deg[v] as u32;
        order.push(NodeId::new(v));
        for &w in und.out_neighbors(NodeId::new(v)) {
            let w = w.index();
            if deg[w] > deg[v] {
                // Move w one bucket down: swap with the first node of
                // its current bucket.
                let dw = deg[w];
                let pw = pos[w];
                let pstart = bins[dw];
                let u = vert[pstart];
                if u != w {
                    vert[pstart] = w;
                    vert[pw] = u;
                    pos[w] = pstart;
                    pos[u] = pw;
                }
                bins[dw] += 1;
                deg[w] -= 1;
            }
        }
    }
    // Core numbers are nondecreasing along the peel, so the last
    // peeled node carries the degeneracy.
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core,
        order,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, path_graph, star_graph};

    #[test]
    fn empty_and_isolated() {
        let d = core_decomposition(&DiGraph::new());
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
        let d = core_decomposition(&DiGraph::with_nodes(3));
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.core, vec![0, 0, 0]);
        assert_eq!(d.order.len(), 3);
    }

    #[test]
    fn path_is_one_core() {
        let d = core_decomposition(&path_graph(6));
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn star_leaves_are_one_core() {
        let d = core_decomposition(&star_graph(6));
        assert_eq!(d.degeneracy, 1);
        assert_eq!(d.core_of(NodeId::new(0)), 1);
        assert_eq!(d.k_core(1).len(), 6);
        assert!(d.k_core(2).is_empty());
    }

    #[test]
    fn clique_core_equals_size_minus_one() {
        let d = core_decomposition(&complete_graph(6));
        assert_eq!(d.degeneracy, 5);
        assert_eq!(d.k_core(5).len(), 6);
    }

    #[test]
    fn clique_with_pendant_tail() {
        // K4 on {0,1,2,3} plus a tail 3 -> 4 -> 5.
        let mut g = complete_graph(4);
        let four = g.add_node();
        let five = g.add_node();
        g.add_edge(NodeId::new(3), four).unwrap();
        g.add_edge(four, five).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 3);
        for i in 0..4 {
            assert_eq!(d.core_of(NodeId::new(i)), 3, "clique node {i}");
        }
        assert_eq!(d.core_of(four), 1);
        assert_eq!(d.core_of(five), 1);
        assert_eq!(
            d.k_core(3),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn direction_is_ignored() {
        // A directed 3-cycle and its reverse have the same cores as
        // the undirected triangle.
        let cyc = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let d = core_decomposition(&cyc);
        assert_eq!(d.degeneracy, 2);
        let d_rev = core_decomposition(&cyc.reversed());
        assert_eq!(d.core, d_rev.core);
    }

    #[test]
    fn peel_order_contains_every_node_once() {
        let g = DiGraph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 6)]).unwrap();
        let d = core_decomposition(&g);
        let mut ids: Vec<usize> = d.order.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        // Core numbers never decrease along the peel order.
        let mut prev = 0;
        for v in &d.order {
            let c = d.core_of(*v);
            assert!(c >= prev || c == d.core_of(*v));
            prev = prev.max(c);
        }
    }

    #[test]
    fn invariant_core_at_most_degree() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let g = crate::generators::gnm_directed(80, 400, &mut rng).unwrap();
        let und = g.symmetrized();
        let d = core_decomposition(&g);
        for v in g.nodes() {
            assert!(d.core_of(v) as usize <= und.out_degree(v));
        }
        // Every node in the k-core has >= k neighbors inside it.
        let k = d.degeneracy;
        let members = d.k_core(k);
        let inside: std::collections::HashSet<_> = members.iter().copied().collect();
        for &v in &members {
            let internal = und
                .out_neighbors(v)
                .iter()
                .filter(|w| inside.contains(w))
                .count();
            assert!(internal as u32 >= k, "node {v} has {internal} < {k}");
        }
    }
}
