//! Connected components: weak (undirected sense) and strong (Tarjan).

// xtask-allow-file: index -- Tarjan/Kosaraju index and lowlink arrays are node_count-sized and indexed by the graph's own NodeIds
use crate::{DiGraph, NodeId, UnionFind};

/// Labels every node with the index of its weakly connected component
/// (edges treated as undirected). Labels are dense in
/// `0..component count`, assigned in order of first appearance.
///
/// # Examples
///
/// ```
/// use lcrb_graph::DiGraph;
/// use lcrb_graph::components::weakly_connected_labels;
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(4, [(0, 1), (2, 3)])?;
/// let labels = weakly_connected_labels(&g);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[1], labels[2]);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn weakly_connected_labels(g: &DiGraph) -> Vec<usize> {
    let mut uf = UnionFind::new(g.node_count());
    for (u, v) in g.edges() {
        uf.union(u.index(), v.index());
    }
    uf.labels()
}

/// Groups nodes by weakly connected component.
///
/// Components appear in order of their smallest node id; nodes within
/// a component are sorted by id.
#[must_use]
pub fn weakly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let labels = weakly_connected_labels(g);
    let count = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut comps: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in g.nodes() {
        comps[labels[v.index()]].push(v);
    }
    comps
}

/// Returns the nodes of the largest weakly connected component
/// (ties broken by smallest label). Empty for an empty graph.
#[must_use]
pub fn largest_weakly_connected_component(g: &DiGraph) -> Vec<NodeId> {
    weakly_connected_components(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Computes strongly connected components with Tarjan's algorithm
/// (iterative, so recursion depth is not a concern).
///
/// Components are emitted in reverse topological order of the
/// condensation, which is the natural Tarjan output order.
#[must_use]
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next out-neighbor offset).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in g.nodes() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut offset)) = frames.last_mut() {
            let nbrs = g.out_neighbors(v);
            if *offset < nbrs.len() {
                let w = nbrs[*offset];
                *offset += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    loop {
                        // xtask-allow: panic -- Tarjan invariant: v is on the stack when its SCC is popped
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_components_of_disconnected_graph() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let g = DiGraph::from_edges(3, [(1, 0), (1, 2)]).unwrap();
        let labels = weakly_connected_labels(&g);
        assert_eq!(labels[0], labels[2]);
    }

    #[test]
    fn largest_component_selected() {
        let g = DiGraph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 5)]).unwrap();
        let big = largest_weakly_connected_component(&g);
        assert_eq!(big.len(), 4);
        assert!(big.contains(&NodeId::new(2)));
    }

    #[test]
    fn empty_graph_components() {
        let g = DiGraph::new();
        assert!(weakly_connected_components(&g).is_empty());
        assert!(largest_weakly_connected_component(&g).is_empty());
        assert!(strongly_connected_components(&g).is_empty());
    }

    #[test]
    fn scc_of_cycle_is_single_component() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 4);
    }

    #[test]
    fn scc_of_dag_is_all_singletons() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
        // Tarjan emits reverse topological order: sinks first.
        assert_eq!(sccs[0], vec![NodeId::new(3)]);
    }

    #[test]
    fn scc_mixed_structure() {
        // Two 2-cycles joined by a one-way edge plus an isolated node.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let mut sccs = strongly_connected_components(&g);
        for c in &mut sccs {
            c.sort_unstable();
        }
        assert_eq!(sccs.len(), 3);
        assert!(sccs.contains(&vec![NodeId::new(0), NodeId::new(1)]));
        assert!(sccs.contains(&vec![NodeId::new(2), NodeId::new(3)]));
        assert!(sccs.contains(&vec![NodeId::new(4)]));
    }

    #[test]
    fn scc_components_partition_nodes() {
        let g = DiGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (6, 7),
            ],
        )
        .unwrap();
        let sccs = strongly_connected_components(&g);
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        let mut all: Vec<usize> = sccs.iter().flatten().map(|v| v.index()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }
}
