//! Error types for graph construction and parsing.

use core::fmt;

use crate::NodeId;

/// Errors produced when building or mutating a [`DiGraph`](crate::DiGraph).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node id outside the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes currently in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was supplied; the diffusion models in this
    /// workspace give self-loops no semantics, so the graph type
    /// rejects them outright.
    SelfLoop {
        /// The node that would have looped onto itself.
        node: NodeId,
    },
    /// A CSR snapshot failed structural validation (see
    /// [`CsrGraph::validate`](crate::CsrGraph::validate)).
    InvalidCsr {
        /// Which structural invariant was violated.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node {node} is out of bounds for a graph with {node_count} nodes"
            ),
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::InvalidCsr { detail } => {
                write!(f, "invalid csr snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors produced when parsing an edge-list file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseEdgeListError {
    /// An underlying I/O failure while reading.
    Io(std::io::Error),
    /// A non-comment line did not contain at least two whitespace
    /// separated tokens.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending line contents.
        contents: String,
    },
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEdgeListError::Io(e) => write!(f, "i/o error while reading edge list: {e}"),
            ParseEdgeListError::MalformedLine { line, contents } => {
                write!(f, "malformed edge-list line {line}: {contents:?}")
            }
        }
    }
}

impl std::error::Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseEdgeListError::Io(e) => Some(e),
            ParseEdgeListError::MalformedLine { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseEdgeListError {
    fn from(e: std::io::Error) -> Self {
        ParseEdgeListError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(9),
            node_count: 4,
        };
        assert_eq!(
            e.to_string(),
            "node 9 is out of bounds for a graph with 4 nodes"
        );
        let e = GraphError::SelfLoop {
            node: NodeId::new(2),
        };
        assert_eq!(e.to_string(), "self-loop on node 2 is not allowed");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
        assert_send_sync::<ParseEdgeListError>();
    }

    #[test]
    fn parse_error_from_io() {
        let io = std::io::Error::other("boom");
        let e = ParseEdgeListError::from(io);
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn malformed_line_display() {
        let e = ParseEdgeListError::MalformedLine {
            line: 3,
            contents: "just-one-token".to_owned(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
