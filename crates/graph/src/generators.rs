//! Random and deterministic graph generators.
//!
//! These provide both the test fixtures for the workspace and the raw
//! material for the synthetic dataset stand-ins in `lcrb-datasets`
//! (see DESIGN.md §3). All stochastic generators take an explicit
//! `&mut impl Rng` so experiments are reproducible from a seed.

// xtask-allow-file: index -- generator-owned arrays are indexed by ids drawn below the requested node count
use core::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DiGraph, NodeId};

/// Errors from graph generators.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum GeneratorError {
    /// A probability parameter was outside `[0, 1]` or NaN.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// More edges were requested than the graph class can hold.
    TooManyEdges {
        /// Requested edge count.
        requested: usize,
        /// Maximum possible for the given node count.
        maximum: usize,
    },
    /// A structural parameter was invalid (e.g. Barabási–Albert with
    /// `m == 0`, Watts–Strogatz with odd `k`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: &'static str,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::InvalidProbability { value } => {
                write!(f, "probability {value} is not in [0, 1]")
            }
            GeneratorError::TooManyEdges { requested, maximum } => {
                write!(f, "requested {requested} edges but at most {maximum} fit")
            }
            GeneratorError::InvalidParameter { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for GeneratorError {}

fn check_probability(p: f64) -> Result<(), GeneratorError> {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        Err(GeneratorError::InvalidProbability { value: p })
    } else {
        Ok(())
    }
}

/// Iterates the indices selected by Bernoulli(p) skip sampling over
/// `0..total`, calling `f` for each selected index. Runs in
/// `O(selected)` expected time.
fn skip_sample<R: Rng + ?Sized, F: FnMut(usize)>(total: usize, p: f64, rng: &mut R, mut f: F) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        // Geometric skip: floor(ln(U) / ln(1-p)) failures before the
        // next success.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor();
        if skip >= (total - i) as f64 {
            return;
        }
        i += skip as usize;
        f(i);
        i += 1;
        if i >= total {
            return;
        }
    }
}

/// Maps a linear index over the `n*(n-1)` ordered non-loop pairs to
/// the pair itself.
#[inline]
fn ordered_pair(n: usize, idx: usize) -> (usize, usize) {
    let u = idx / (n - 1);
    let mut v = idx % (n - 1);
    if v >= u {
        v += 1;
    }
    (u, v)
}

/// Maps a linear index over the `n*(n-1)/2` unordered pairs `u < v`
/// to the pair itself.
#[inline]
fn unordered_pair(n: usize, idx: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+1)/2 of pairs (u, u+1..n).
    // Solve by scanning rows is O(n); use the closed form instead.
    let idxf = idx as f64;
    let nf = n as f64;
    // u is the largest integer with u*nf - u*(u+1)/2 <= idx.
    let mut u =
        ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * idxf).sqrt()) / 2.0).floor() as usize;
    // Guard against floating-point boundary slips.
    loop {
        let start = u * n - u * (u + 1) / 2;
        if start > idx {
            u -= 1;
            continue;
        }
        let end = (u + 1) * n - (u + 1) * (u + 2) / 2;
        if idx >= end {
            u += 1;
            continue;
        }
        return (u, u + 1 + (idx - start));
    }
}

/// Erdős–Rényi `G(n, p)` directed graph: every ordered non-loop pair
/// is an edge independently with probability `p`. Runs in expected
/// `O(n + m)` time via geometric skip sampling.
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidProbability`] if `p` is not a
/// probability.
pub fn gnp_directed<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    check_probability(p)?;
    let mut g = DiGraph::with_nodes(n);
    if n >= 2 {
        skip_sample(n * (n - 1), p, rng, |idx| {
            let (u, v) = ordered_pair(n, idx);
            let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
        });
    }
    Ok(g)
}

/// Erdős–Rényi `G(n, p)` undirected graph, returned in symmetrized
/// directed form (both arcs for every sampled pair).
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidProbability`] if `p` is not a
/// probability.
pub fn gnp_undirected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    check_probability(p)?;
    let mut g = DiGraph::with_nodes(n);
    if n >= 2 {
        skip_sample(n * (n - 1) / 2, p, rng, |idx| {
            let (u, v) = unordered_pair(n, idx);
            let _ = g.add_edge_symmetric(NodeId::new(u), NodeId::new(v));
        });
    }
    Ok(g)
}

/// `G(n, m)` directed graph: exactly `m` distinct non-loop directed
/// edges chosen uniformly.
///
/// # Errors
///
/// Returns [`GeneratorError::TooManyEdges`] if `m > n*(n-1)`.
pub fn gnm_directed<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    let maximum = n.saturating_mul(n.saturating_sub(1));
    if m > maximum {
        return Err(GeneratorError::TooManyEdges {
            requested: m,
            maximum,
        });
    }
    let mut g = DiGraph::with_nodes(n);
    while g.edge_count() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    Ok(g)
}

/// `G(n, m)` undirected graph in symmetrized directed form: exactly
/// `m` distinct unordered pairs, hence `2m` arcs.
///
/// # Errors
///
/// Returns [`GeneratorError::TooManyEdges`] if `m > n*(n-1)/2`.
pub fn gnm_undirected<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    let maximum = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > maximum {
        return Err(GeneratorError::TooManyEdges {
            requested: m,
            maximum,
        });
    }
    let mut g = DiGraph::with_nodes(n);
    let mut pairs = 0usize;
    while pairs < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(NodeId::new(u), NodeId::new(v)) {
            let _ = g.add_edge_symmetric(NodeId::new(u), NodeId::new(v));
            pairs += 1;
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m + 1` nodes, then each new node attaches to `m` distinct
/// existing nodes with probability proportional to degree. Returned
/// in symmetrized directed form.
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidParameter`] if `m == 0` or
/// `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    if m == 0 {
        return Err(GeneratorError::InvalidParameter {
            message: "barabási–albert requires m >= 1",
        });
    }
    if n <= m {
        return Err(GeneratorError::InvalidParameter {
            message: "barabási–albert requires n > m",
        });
    }
    let mut g = DiGraph::with_nodes(n);
    // `targets` holds one entry per edge endpoint, so sampling a
    // uniform element is degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::new();
    for u in 0..=m {
        for v in (u + 1)..=m {
            let _ = g.add_edge_symmetric(NodeId::new(u), NodeId::new(v));
            targets.push(u);
            targets.push(v);
        }
    }
    let mut chosen = Vec::with_capacity(m);
    for new in (m + 1)..n {
        chosen.clear();
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            let _ = g.add_edge_symmetric(NodeId::new(new), NodeId::new(t));
            targets.push(new);
            targets.push(t);
        }
    }
    Ok(g)
}

/// Watts–Strogatz small world: ring lattice where each node connects
/// to its `k/2` nearest neighbors on each side, then each lattice
/// edge is rewired with probability `beta`. Returned in symmetrized
/// directed form.
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidParameter`] if `k` is odd, zero,
/// or `k >= n`, and [`GeneratorError::InvalidProbability`] for a bad
/// `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<DiGraph, GeneratorError> {
    check_probability(beta)?;
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GeneratorError::InvalidParameter {
            message: "watts–strogatz requires a positive even k",
        });
    }
    if k >= n {
        return Err(GeneratorError::InvalidParameter {
            message: "watts–strogatz requires k < n",
        });
    }
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for step in 1..=(k / 2) {
            let mut v = (u + step) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target; skip on the
                // (rare) failure to find a free slot.
                let mut attempts = 0;
                loop {
                    let candidate = rng.gen_range(0..n);
                    if candidate != u && !g.has_edge(NodeId::new(u), NodeId::new(candidate)) {
                        v = candidate;
                        break;
                    }
                    attempts += 1;
                    if attempts > 32 {
                        break;
                    }
                }
            }
            let _ = g.add_edge_symmetric(NodeId::new(u), NodeId::new(v));
        }
    }
    Ok(g)
}

/// Planted-partition (stochastic block) model: nodes are split into
/// blocks of the given `sizes`; ordered non-loop pairs inside a block
/// are edges with probability `p_in`, pairs across blocks with
/// probability `p_out`. When `symmetric` is set, pairs are sampled
/// unordered and both arcs inserted.
///
/// Returns the graph and the planted block label of every node (the
/// ground-truth community structure used to validate the Louvain
/// implementation and to build calibrated datasets).
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidProbability`] for bad
/// probabilities and [`GeneratorError::InvalidParameter`] if `sizes`
/// contains a zero.
pub fn planted_partition<R: Rng + ?Sized>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    symmetric: bool,
    rng: &mut R,
) -> Result<(DiGraph, Vec<usize>), GeneratorError> {
    check_probability(p_in)?;
    check_probability(p_out)?;
    if sizes.contains(&0) {
        return Err(GeneratorError::InvalidParameter {
            message: "planted partition blocks must be non-empty",
        });
    }
    let n: usize = sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(sizes.len());
    {
        let mut offset = 0;
        for (b, &s) in sizes.iter().enumerate() {
            starts.push(offset);
            labels.extend(std::iter::repeat_n(b, s));
            offset += s;
        }
    }
    let mut g = DiGraph::with_nodes(n);

    // Intra-block edges.
    for (b, &s) in sizes.iter().enumerate() {
        let base = starts[b];
        if s < 2 {
            continue;
        }
        if symmetric {
            skip_sample(s * (s - 1) / 2, p_in, rng, |idx| {
                let (u, v) = unordered_pair(s, idx);
                let _ = g.add_edge_symmetric(NodeId::new(base + u), NodeId::new(base + v));
            });
        } else {
            skip_sample(s * (s - 1), p_in, rng, |idx| {
                let (u, v) = ordered_pair(s, idx);
                let _ = g.add_edge(NodeId::new(base + u), NodeId::new(base + v));
            });
        }
    }

    // Inter-block edges: skip-sample the full pair space and discard
    // intra-block hits (cheap because p_out is small in practice).
    if n >= 2 {
        if symmetric {
            skip_sample(n * (n - 1) / 2, p_out, rng, |idx| {
                let (u, v) = unordered_pair(n, idx);
                if labels[u] != labels[v] {
                    let _ = g.add_edge_symmetric(NodeId::new(u), NodeId::new(v));
                }
            });
        } else {
            skip_sample(n * (n - 1), p_out, rng, |idx| {
                let (u, v) = ordered_pair(n, idx);
                if labels[u] != labels[v] {
                    let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            });
        }
    }
    Ok((g, labels))
}

/// Community graph with exact edge budgets: block `b` receives
/// `intra_edges[b]` distinct internal edges and the whole graph
/// receives `inter_edges` distinct cross-block edges. When
/// `symmetric` is set the budgets count unordered pairs (two arcs
/// each). This is the calibrated generator behind the Enron-like and
/// Hep-like stand-ins.
///
/// Returns the graph and the planted block labels.
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidParameter`] on shape mismatch or
/// empty blocks and [`GeneratorError::TooManyEdges`] when a budget
/// exceeds the available pairs.
pub fn community_gnm<R: Rng + ?Sized>(
    sizes: &[usize],
    intra_edges: &[usize],
    inter_edges: usize,
    symmetric: bool,
    rng: &mut R,
) -> Result<(DiGraph, Vec<usize>), GeneratorError> {
    if sizes.len() != intra_edges.len() {
        return Err(GeneratorError::InvalidParameter {
            message: "sizes and intra_edges must have the same length",
        });
    }
    if sizes.contains(&0) {
        return Err(GeneratorError::InvalidParameter {
            message: "community blocks must be non-empty",
        });
    }
    let n: usize = sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(sizes.len());
    {
        let mut offset = 0;
        for (b, &s) in sizes.iter().enumerate() {
            starts.push(offset);
            labels.extend(std::iter::repeat_n(b, s));
            offset += s;
        }
    }

    // Validate intra budgets.
    for (b, (&s, &m)) in sizes.iter().zip(intra_edges).enumerate() {
        let maximum = if symmetric {
            s * (s.saturating_sub(1)) / 2
        } else {
            s * (s.saturating_sub(1))
        };
        if m > maximum {
            let _ = b;
            return Err(GeneratorError::TooManyEdges {
                requested: m,
                maximum,
            });
        }
    }
    let cross_pairs: usize = {
        let all = if symmetric {
            n * (n - 1) / 2
        } else {
            n * (n - 1)
        };
        let intra: usize = sizes
            .iter()
            .map(|&s| {
                if symmetric {
                    s * (s - 1) / 2
                } else {
                    s * (s - 1)
                }
            })
            .sum();
        all - intra
    };
    if inter_edges > cross_pairs {
        return Err(GeneratorError::TooManyEdges {
            requested: inter_edges,
            maximum: cross_pairs,
        });
    }

    let mut g = DiGraph::with_nodes(n);
    for (b, &s) in sizes.iter().enumerate() {
        let base = starts[b];
        let target = intra_edges[b];
        let mut placed = 0usize;
        // Dense blocks (budget above ~half the pairs) fall back to
        // explicit enumeration + shuffle to avoid rejection stalls.
        let maximum = if symmetric {
            s * (s - 1) / 2
        } else {
            s * (s - 1)
        };
        if maximum > 0 && target * 2 > maximum {
            let mut all: Vec<(usize, usize)> = Vec::with_capacity(maximum);
            for u in 0..s {
                let lo = if symmetric { u + 1 } else { 0 };
                for v in lo..s {
                    if u != v {
                        all.push((u, v));
                    }
                }
            }
            all.shuffle(rng);
            for &(u, v) in all.iter().take(target) {
                let (a, b2) = (NodeId::new(base + u), NodeId::new(base + v));
                if symmetric {
                    let _ = g.add_edge_symmetric(a, b2);
                } else {
                    let _ = g.add_edge(a, b2);
                }
            }
        } else {
            while placed < target {
                let u = rng.gen_range(0..s);
                let v = rng.gen_range(0..s);
                if u == v {
                    continue;
                }
                let (a, b2) = (NodeId::new(base + u), NodeId::new(base + v));
                if g.has_edge(a, b2) {
                    continue;
                }
                if symmetric {
                    let _ = g.add_edge_symmetric(a, b2);
                } else {
                    let _ = g.add_edge(a, b2);
                }
                placed += 1;
            }
        }
    }

    let mut placed = 0usize;
    while placed < inter_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || labels[u] == labels[v] {
            continue;
        }
        let (a, b) = (NodeId::new(u), NodeId::new(v));
        if g.has_edge(a, b) {
            continue;
        }
        if symmetric {
            let _ = g.add_edge_symmetric(a, b);
        } else {
            let _ = g.add_edge(a, b);
        }
        placed += 1;
    }
    Ok((g, labels))
}

/// Community graph with exact edge budgets *and heavy-tailed
/// degrees*: like [`community_gnm`], but edge endpoints inside and
/// across blocks are sampled proportionally to per-node Chung–Lu
/// weights drawn from a Pareto distribution with the given tail
/// `exponent` (≈ 2.5 matches social networks). Produces the hubs that
/// real email/collaboration graphs have and that the plain `G(n, m)`
/// blocks lack — used by the degree-heterogeneous dataset variants.
///
/// Returns the graph and the planted block labels.
///
/// # Errors
///
/// Same conditions as [`community_gnm`], plus
/// [`GeneratorError::InvalidParameter`] if `exponent <= 1`.
pub fn community_chung_lu<R: Rng + ?Sized>(
    sizes: &[usize],
    intra_edges: &[usize],
    inter_edges: usize,
    exponent: f64,
    symmetric: bool,
    rng: &mut R,
) -> Result<(DiGraph, Vec<usize>), GeneratorError> {
    if exponent.is_nan() || exponent <= 1.0 {
        return Err(GeneratorError::InvalidParameter {
            message: "chung–lu exponent must be greater than 1",
        });
    }
    if sizes.len() != intra_edges.len() {
        return Err(GeneratorError::InvalidParameter {
            message: "sizes and intra_edges must have the same length",
        });
    }
    if sizes.contains(&0) {
        return Err(GeneratorError::InvalidParameter {
            message: "community blocks must be non-empty",
        });
    }
    let n: usize = sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(sizes.len());
    {
        let mut offset = 0;
        for (b, &s) in sizes.iter().enumerate() {
            starts.push(offset);
            labels.extend(std::iter::repeat_n(b, s));
            offset += s;
        }
    }
    for (&s, &m) in sizes.iter().zip(intra_edges) {
        let maximum = if symmetric {
            s * (s.saturating_sub(1)) / 2
        } else {
            s * (s.saturating_sub(1))
        };
        if m > maximum {
            return Err(GeneratorError::TooManyEdges {
                requested: m,
                maximum,
            });
        }
    }

    // Pareto(α = exponent) node weights, capped so no node dominates
    // its block entirely.
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            u.powf(-1.0 / (exponent - 1.0)).min(n as f64 / 4.0)
        })
        .collect();
    // Per-block prefix sums for weighted endpoint sampling.
    let block_prefix: Vec<Vec<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(b, &s)| {
            let mut acc = 0.0;
            let mut prefix = Vec::with_capacity(s + 1);
            prefix.push(0.0);
            for i in 0..s {
                acc += weights[starts[b] + i];
                prefix.push(acc);
            }
            prefix
        })
        .collect();
    let global_prefix: Vec<f64> = {
        let mut acc = 0.0;
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for &w in &weights {
            acc += w;
            prefix.push(acc);
        }
        prefix
    };
    let draw = |prefix: &[f64], rng: &mut R| -> usize {
        // xtask-allow: panic -- callers pass a prefix-sum slice built from a non-empty degree vector
        let total = *prefix.last().expect("non-empty prefix");
        let x = rng.gen_range(0.0..total);
        // partition_point: first index with prefix[i] > x; node is i-1.
        prefix
            .partition_point(|&p| p <= x)
            .saturating_sub(1)
            .min(prefix.len() - 2)
    };

    let mut g = DiGraph::with_nodes(n);
    let add = |g: &mut DiGraph, u: usize, v: usize| -> bool {
        let (a, b) = (NodeId::new(u), NodeId::new(v));
        if u == v || g.has_edge(a, b) {
            return false;
        }
        if symmetric {
            let _ = g.add_edge_symmetric(a, b);
        } else {
            let _ = g.add_edge(a, b);
        }
        true
    };

    for (b, &target) in intra_edges.iter().enumerate() {
        let base = starts[b];
        let prefix = &block_prefix[b];
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < target {
            attempts += 1;
            let (u, v) = if attempts > 60 * target + 100 {
                // Weighted rejection is stalling (hub pairs saturated):
                // fall back to uniform pairs to land the exact budget.
                (rng.gen_range(0..sizes[b]), rng.gen_range(0..sizes[b]))
            } else {
                (draw(prefix, rng), draw(prefix, rng))
            };
            if add(&mut g, base + u, base + v) {
                placed += 1;
            }
        }
    }
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < inter_edges {
        attempts += 1;
        let (u, v) = if attempts > 60 * inter_edges + 100 {
            (rng.gen_range(0..n), rng.gen_range(0..n))
        } else {
            (draw(&global_prefix, rng), draw(&global_prefix, rng))
        };
        if labels[u] == labels[v] {
            continue;
        }
        if add(&mut g, u, v) {
            placed += 1;
        }
    }
    Ok((g, labels))
}

/// A directed path `0 -> 1 -> ... -> n-1`.
#[must_use]
pub fn path_graph(n: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for i in 1..n {
        let _ = g.add_edge(NodeId::new(i - 1), NodeId::new(i));
    }
    g
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0` (empty for `n < 2`).
#[must_use]
pub fn cycle_graph(n: usize) -> DiGraph {
    let mut g = path_graph(n);
    if n >= 2 {
        let _ = g.add_edge(NodeId::new(n - 1), NodeId::new(0));
    }
    g
}

/// The complete directed graph on `n` nodes (all ordered non-loop
/// pairs).
#[must_use]
pub fn complete_graph(n: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// A star with hub 0: arcs in both directions between the hub and
/// every leaf.
#[must_use]
pub fn star_graph(n: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for v in 1..n {
        let _ = g.add_edge_symmetric(NodeId::new(0), NodeId::new(v));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn ordered_pair_covers_all_pairs() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) {
            let (u, v) = ordered_pair(n, idx);
            assert_ne!(u, v);
            assert!(u < n && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn unordered_pair_covers_all_pairs() {
        for n in [2usize, 3, 5, 17, 64] {
            let mut seen = std::collections::HashSet::new();
            for idx in 0..n * (n - 1) / 2 {
                let (u, v) = unordered_pair(n, idx);
                assert!(u < v && v < n, "bad pair ({u},{v}) at idx {idx} n {n}");
                assert!(seen.insert((u, v)));
            }
            assert_eq!(seen.len(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn gnp_zero_and_one() {
        let mut r = rng(1);
        let g0 = gnp_directed(10, 0.0, &mut r).unwrap();
        assert_eq!(g0.edge_count(), 0);
        let g1 = gnp_directed(10, 1.0, &mut r).unwrap();
        assert_eq!(g1.edge_count(), 90);
    }

    #[test]
    fn gnp_rejects_bad_probability() {
        let mut r = rng(1);
        assert!(matches!(
            gnp_directed(5, 1.5, &mut r),
            Err(GeneratorError::InvalidProbability { .. })
        ));
        assert!(matches!(
            gnp_directed(5, f64::NAN, &mut r),
            Err(GeneratorError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut r = rng(42);
        let n = 300;
        let p = 0.02;
        let g = gnp_directed(n, p, &mut r).unwrap();
        let expected = (n * (n - 1)) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn gnp_undirected_is_symmetric() {
        let mut r = rng(3);
        let g = gnp_undirected(60, 0.1, &mut r).unwrap();
        assert_eq!(g.edge_count() % 2, 0);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng(4);
        let g = gnm_directed(50, 200, &mut r).unwrap();
        assert_eq!(g.edge_count(), 200);
        let g = gnm_undirected(50, 100, &mut r).unwrap();
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    fn gnm_rejects_overfull() {
        let mut r = rng(4);
        assert!(matches!(
            gnm_directed(3, 7, &mut r),
            Err(GeneratorError::TooManyEdges { maximum: 6, .. })
        ));
        assert!(matches!(
            gnm_undirected(3, 4, &mut r),
            Err(GeneratorError::TooManyEdges { maximum: 3, .. })
        ));
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut r = rng(5);
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, &mut r).unwrap();
        assert_eq!(g.node_count(), n);
        // Each of the n - m - 1 later nodes adds m pairs; the seed
        // clique has m*(m+1)/2 pairs; each pair is two arcs.
        let pairs = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), 2 * pairs);
        // Symmetry.
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        let mut r = rng(5);
        assert!(barabasi_albert(10, 0, &mut r).is_err());
        assert!(barabasi_albert(3, 3, &mut r).is_err());
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let mut r = rng(6);
        let g = barabasi_albert(500, 2, &mut r).unwrap();
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (max_deg as f64) > 4.0 * avg,
            "hub degree {max_deg} vs avg {avg}"
        );
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut r = rng(7);
        let g = watts_strogatz(20, 4, 0.0, &mut r).unwrap();
        assert_eq!(g.edge_count(), 20 * 4);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(19), NodeId::new(0)));
    }

    #[test]
    fn watts_strogatz_rejects_bad_k() {
        let mut r = rng(7);
        assert!(watts_strogatz(10, 3, 0.1, &mut r).is_err());
        assert!(watts_strogatz(10, 0, 0.1, &mut r).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut r).is_err());
    }

    #[test]
    fn planted_partition_labels_and_density() {
        let mut r = rng(8);
        let (g, labels) = planted_partition(&[50, 50], 0.2, 0.005, false, &mut r).unwrap();
        assert_eq!(g.node_count(), 100);
        assert_eq!(labels.len(), 100);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[99], 1);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 5, "intra {intra} inter {inter}");
    }

    #[test]
    fn planted_partition_symmetric_mode() {
        let mut r = rng(9);
        let (g, _) = planted_partition(&[30, 30, 30], 0.3, 0.01, true, &mut r).unwrap();
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn planted_partition_rejects_empty_block() {
        let mut r = rng(9);
        assert!(planted_partition(&[5, 0], 0.1, 0.1, false, &mut r).is_err());
    }

    #[test]
    fn community_gnm_exact_budgets() {
        let mut r = rng(10);
        let (g, labels) = community_gnm(&[40, 60], &[100, 200], 30, false, &mut r).unwrap();
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert_eq!(intra, 300);
        assert_eq!(inter, 30);
        assert_eq!(g.edge_count(), 330);
    }

    #[test]
    fn community_gnm_symmetric_budgets_are_pairs() {
        let mut r = rng(11);
        let (g, _) = community_gnm(&[20, 20], &[50, 50], 10, true, &mut r).unwrap();
        assert_eq!(g.edge_count(), 2 * (50 + 50 + 10));
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn community_gnm_dense_block_path() {
        let mut r = rng(12);
        // Budget above half the pairs triggers the shuffle path.
        let (g, _) = community_gnm(&[10], &[80], 0, false, &mut r).unwrap();
        assert_eq!(g.edge_count(), 80);
    }

    #[test]
    fn community_gnm_validation() {
        let mut r = rng(12);
        assert!(community_gnm(&[5], &[5, 5], 0, false, &mut r).is_err());
        assert!(matches!(
            community_gnm(&[3], &[7], 0, false, &mut r),
            Err(GeneratorError::TooManyEdges { .. })
        ));
        assert!(matches!(
            community_gnm(&[3, 3], &[0, 0], 100, false, &mut r),
            Err(GeneratorError::TooManyEdges { .. })
        ));
    }

    #[test]
    fn deterministic_graphs() {
        let p = path_graph(4);
        assert_eq!(p.edge_count(), 3);
        let c = cycle_graph(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(NodeId::new(3), NodeId::new(0)));
        let k = complete_graph(4);
        assert_eq!(k.edge_count(), 12);
        let s = star_graph(5);
        assert_eq!(s.edge_count(), 8);
        assert_eq!(s.out_degree(NodeId::new(0)), 4);
        // Degenerate sizes.
        assert_eq!(path_graph(0).node_count(), 0);
        assert_eq!(cycle_graph(1).edge_count(), 0);
        assert_eq!(star_graph(1).edge_count(), 0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = gnp_directed(80, 0.05, &mut rng(99)).unwrap();
        let g2 = gnp_directed(80, 0.05, &mut rng(99)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn community_chung_lu_exact_budgets_and_hubs() {
        let mut r = rng(31);
        let (g, labels) =
            community_chung_lu(&[300, 200], &[1200, 800], 150, 2.2, false, &mut r).unwrap();
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert_eq!(intra, 2000);
        assert_eq!(inter, 150);
        // Heavy tail: the max degree clearly exceeds the average.
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg as f64 > 3.5 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn community_chung_lu_symmetric_mode() {
        let mut r = rng(32);
        let (g, _) = community_chung_lu(&[50, 50], &[120, 120], 30, 2.5, true, &mut r).unwrap();
        assert_eq!(g.edge_count(), 2 * (120 + 120 + 30));
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn community_chung_lu_validation() {
        let mut r = rng(33);
        assert!(community_chung_lu(&[5], &[5], 0, 1.0, false, &mut r).is_err());
        assert!(community_chung_lu(&[5], &[5, 5], 0, 2.5, false, &mut r).is_err());
        assert!(matches!(
            community_chung_lu(&[3], &[7], 0, 2.5, false, &mut r),
            Err(GeneratorError::TooManyEdges { .. })
        ));
        assert!(community_chung_lu(&[3, 0], &[1, 0], 0, 2.5, false, &mut r).is_err());
    }

    #[test]
    fn community_chung_lu_dense_block_terminates() {
        let mut r = rng(34);
        // 10 nodes, 80 of 90 possible arcs: forces the uniform
        // fallback path.
        let (g, _) = community_chung_lu(&[10], &[80], 0, 2.0, false, &mut r).unwrap();
        assert_eq!(g.edge_count(), 80);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = GeneratorError::TooManyEdges {
            requested: 10,
            maximum: 6,
        };
        assert_eq!(e.to_string(), "requested 10 edges but at most 6 fit");
    }
}
