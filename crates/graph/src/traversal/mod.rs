//! Graph traversal: BFS (the paper's workhorse), DFS, reachability,
//! and topological sorting.

mod bfs;
mod csr_bfs;
mod dfs;

pub use bfs::{
    bfs_distances, bfs_distances_csr, bfs_distances_where, bfs_tree, relax_with_source,
    reverse_bfs_distances, Bfs, BfsTree, Direction,
};
pub use csr_bfs::CsrBfsScratch;
pub use dfs::{dfs_preorder, is_reachable, topological_sort, CycleError};
