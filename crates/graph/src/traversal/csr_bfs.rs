//! Reusable BFS scratch space over [`CsrGraph`] snapshots.
//!
//! SCBG builds one backward search tree per bridge end and the
//! coverage-mode heuristics re-relax distances once per added
//! protector; allocating fresh distance and queue buffers for each of
//! those traversals dominates their runtime on small graphs. A
//! [`CsrBfsScratch`] is allocated once and reused: distance validity is
//! tracked with an epoch stamp, so starting a new traversal is O(1)
//! instead of an O(n) clear.

use std::collections::VecDeque;

use super::Direction;
use crate::{CsrGraph, NodeId};

/// Reusable state for repeated BFS runs over a [`CsrGraph`].
///
/// A traversal is started with [`CsrBfsScratch::run`] (or
/// [`CsrBfsScratch::begin`] + [`CsrBfsScratch::relax_forward`] for
/// incremental multi-source relaxation); results stay readable via
/// [`CsrBfsScratch::distance`] and [`CsrBfsScratch::order`] until the
/// next traversal starts.
///
/// # Examples
///
/// ```
/// use lcrb_graph::traversal::{CsrBfsScratch, Direction};
/// use lcrb_graph::{CsrGraph, DiGraph, NodeId};
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let csr = CsrGraph::from(&g);
/// let mut scratch = CsrBfsScratch::new();
/// scratch.run(&csr, &[NodeId::new(0)], Direction::Forward, u32::MAX);
/// assert_eq!(scratch.distance(NodeId::new(3)), Some(3));
/// // Reuse for a bounded backward pass: no reallocation, no O(n) clear.
/// scratch.run(&csr, &[NodeId::new(3)], Direction::Backward, 2);
/// assert_eq!(scratch.distance(NodeId::new(0)), None);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct CsrBfsScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    /// Visit order of the last `run`; doubles as the BFS queue.
    order: Vec<NodeId>,
    /// Separate queue for `relax_forward`, which can revisit nodes.
    relax_queue: VecDeque<NodeId>,
}

impl CsrBfsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        CsrBfsScratch::default()
    }

    /// Starts a new traversal epoch sized for `n` nodes, invalidating
    /// all previous distances in O(1).
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.order.clear();
        self.relax_queue.clear();
    }

    /// Multi-source BFS from `sources`, traversing `direction`, never
    /// deeper than `max_depth`. Same semantics as
    /// [`bfs_distances_where`](super::bfs_distances_where) with an
    /// always-true expansion predicate.
    ///
    /// # Panics
    ///
    /// Panics if any source id is not in the graph.
    pub fn run(&mut self, g: &CsrGraph, sources: &[NodeId], direction: Direction, max_depth: u32) {
        let n = g.node_count();
        self.begin(n);
        for &s in sources {
            assert!(s.index() < n, "bfs source {s} out of bounds");
            if self.stamp[s.index()] != self.epoch {
                self.stamp[s.index()] = self.epoch;
                self.dist[s.index()] = 0;
                self.order.push(s);
            }
        }
        let mut head = 0;
        while head < self.order.len() {
            let v = self.order[head];
            head += 1;
            let d = self.dist[v.index()];
            if d >= max_depth {
                continue;
            }
            let neighbors = match direction {
                Direction::Forward => g.out_neighbors(v),
                Direction::Backward => g.in_neighbors(v),
            };
            for &w in neighbors {
                if self.stamp[w.index()] != self.epoch {
                    self.stamp[w.index()] = self.epoch;
                    self.dist[w.index()] = d + 1;
                    self.order.push(w);
                }
            }
        }
    }

    /// Relaxes the current distance map with an additional source,
    /// following out-edges: afterwards `distance(v)` is
    /// `min(old distance(v), hops from source)`. Only improved nodes
    /// are re-explored, mirroring
    /// [`relax_with_source`](super::relax_with_source).
    ///
    /// Call [`CsrBfsScratch::begin`] (or [`CsrBfsScratch::run`]) first
    /// to open the epoch; [`CsrBfsScratch::order`] is *not* maintained
    /// by relaxation.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not in the graph.
    pub fn relax_forward(&mut self, g: &CsrGraph, source: NodeId) {
        let n = g.node_count();
        assert!(source.index() < n, "bfs source {source} out of bounds");
        assert!(
            self.stamp.len() >= n && self.epoch > 0,
            "call begin() or run() before relax_forward()"
        );
        if self.stamp[source.index()] == self.epoch && self.dist[source.index()] == 0 {
            return;
        }
        self.stamp[source.index()] = self.epoch;
        self.dist[source.index()] = 0;
        self.relax_queue.clear();
        self.relax_queue.push_back(source);
        while let Some(v) = self.relax_queue.pop_front() {
            let d = self.dist[v.index()];
            for &w in g.out_neighbors(v) {
                let i = w.index();
                let improves = self.stamp[i] != self.epoch || d + 1 < self.dist[i];
                if improves {
                    self.stamp[i] = self.epoch;
                    self.dist[i] = d + 1;
                    self.relax_queue.push_back(w);
                }
            }
        }
    }

    /// Hop distance of `v` from the sources of the current epoch, or
    /// `None` if unreached.
    #[inline]
    #[must_use]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.epoch > 0 {
            Some(self.dist[i])
        } else {
            None
        }
    }

    /// Whether `v` was reached in the current epoch.
    #[inline]
    #[must_use]
    pub fn is_reached(&self, v: NodeId) -> bool {
        self.distance(v).is_some()
    }

    /// Nodes reached by the last [`CsrBfsScratch::run`] in level
    /// (dequeue) order, sources first.
    #[inline]
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_distances, bfs_distances_where, relax_with_source};
    use crate::{generators, DiGraph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_pair(seed: u64) -> (DiGraph, CsrGraph) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnm_directed(60, 240, &mut rng).unwrap();
        let csr = CsrGraph::from(&g);
        (g, csr)
    }

    #[test]
    fn scratch_matches_fresh_bfs_across_reuses() {
        let (g, csr) = random_pair(3);
        let mut scratch = CsrBfsScratch::new();
        for src in 0..20 {
            let sources = [NodeId::new(src), NodeId::new((src * 7 + 1) % 60)];
            scratch.run(&csr, &sources, Direction::Forward, u32::MAX);
            let fresh = bfs_distances(&g, &sources);
            for v in g.nodes() {
                assert_eq!(scratch.distance(v), fresh[v.index()], "src {src} node {v}");
            }
        }
    }

    #[test]
    fn backward_and_depth_bounded_runs_match_reference() {
        let (g, csr) = random_pair(11);
        let mut scratch = CsrBfsScratch::new();
        for (src, depth) in [(0usize, 1u32), (5, 2), (9, 0), (13, 3)] {
            scratch.run(&csr, &[NodeId::new(src)], Direction::Backward, depth);
            let fresh =
                bfs_distances_where(&g, &[NodeId::new(src)], Direction::Backward, depth, |_| {
                    true
                });
            for v in g.nodes() {
                assert_eq!(scratch.distance(v), fresh[v.index()]);
            }
        }
    }

    #[test]
    fn order_is_level_order_and_complete() {
        let (_, csr) = random_pair(5);
        let mut scratch = CsrBfsScratch::new();
        scratch.run(&csr, &[NodeId::new(0)], Direction::Forward, u32::MAX);
        let depths: Vec<u32> = scratch
            .order()
            .iter()
            .map(|&v| scratch.distance(v).unwrap())
            .collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(depths, sorted);
        let reached = csr.nodes().filter(|&v| scratch.is_reached(v)).count();
        assert_eq!(reached, scratch.order().len());
    }

    #[test]
    fn relax_matches_incremental_reference() {
        let (g, csr) = random_pair(21);
        let mut scratch = CsrBfsScratch::new();
        scratch.run(&csr, &[NodeId::new(2)], Direction::Forward, u32::MAX);
        let mut reference = bfs_distances(&g, &[NodeId::new(2)]);
        for extra in [17usize, 33, 48] {
            scratch.relax_forward(&csr, NodeId::new(extra));
            relax_with_source(&g, &mut reference, NodeId::new(extra));
            for v in g.nodes() {
                assert_eq!(scratch.distance(v), reference[v.index()], "after {extra}");
            }
        }
    }

    #[test]
    fn relax_from_empty_epoch_behaves_like_single_source_bfs() {
        let (g, csr) = random_pair(8);
        let mut scratch = CsrBfsScratch::new();
        scratch.begin(csr.node_count());
        scratch.relax_forward(&csr, NodeId::new(4));
        let fresh = bfs_distances(&g, &[NodeId::new(4)]);
        for v in g.nodes() {
            assert_eq!(scratch.distance(v), fresh[v.index()]);
        }
    }

    #[test]
    fn new_epoch_invalidates_previous_distances() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from(&g);
        let mut scratch = CsrBfsScratch::new();
        scratch.run(&csr, &[NodeId::new(0)], Direction::Forward, u32::MAX);
        assert!(scratch.is_reached(NodeId::new(2)));
        scratch.run(&csr, &[NodeId::new(2)], Direction::Forward, u32::MAX);
        assert_eq!(scratch.distance(NodeId::new(0)), None);
        assert_eq!(scratch.distance(NodeId::new(2)), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn run_panics_on_bad_source() {
        let g = DiGraph::with_nodes(2);
        let csr = CsrGraph::from(&g);
        let mut scratch = CsrBfsScratch::new();
        scratch.run(&csr, &[NodeId::new(7)], Direction::Forward, u32::MAX);
    }
}
