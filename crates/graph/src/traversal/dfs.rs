//! Depth-first search, reachability, and topological sorting.

// xtask-allow-file: index -- state and indegree arrays are node_count-sized and indexed by the graph's own NodeIds
use crate::{DiGraph, NodeId};

/// Visits all nodes reachable from `source` in depth-first preorder.
///
/// The traversal is iterative (explicit stack), so deep graphs cannot
/// overflow the call stack.
///
/// # Panics
///
/// Panics if `source` is not in the graph.
///
/// # Examples
///
/// ```
/// use lcrb_graph::{DiGraph, NodeId};
/// use lcrb_graph::traversal::dfs_preorder;
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2)])?;
/// let order = dfs_preorder(&g, NodeId::new(0));
/// assert_eq!(order.len(), 3);
/// assert_eq!(order[0], NodeId::new(0));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dfs_preorder(g: &DiGraph, source: NodeId) -> Vec<NodeId> {
    assert!(
        source.index() < g.node_count(),
        "dfs source {source} out of bounds"
    );
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so that neighbors are visited in adjacency
        // order, matching the recursive formulation.
        for &w in g.out_neighbors(v).iter().rev() {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// Returns `true` if `target` is reachable from `source` along
/// directed edges (every node reaches itself).
///
/// # Panics
///
/// Panics if either endpoint is not in the graph.
#[must_use]
pub fn is_reachable(g: &DiGraph, source: NodeId, target: NodeId) -> bool {
    assert!(
        target.index() < g.node_count(),
        "reachability target {target} out of bounds"
    );
    if source == target {
        assert!(
            source.index() < g.node_count(),
            "reachability source {source} out of bounds"
        );
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(v) = stack.pop() {
        for &w in g.out_neighbors(v) {
            if w == target {
                return true;
            }
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    false
}

/// The error returned by [`topological_sort`] when the graph has a
/// directed cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to lie on a cycle.
    pub node: NodeId,
}

impl core::fmt::Display for CycleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "graph contains a directed cycle through node {}",
            self.node
        )
    }
}

impl std::error::Error for CycleError {}

/// Orders the nodes so that every edge points forward in the order
/// (Kahn's algorithm).
///
/// # Errors
///
/// Returns [`CycleError`] if the graph contains a directed cycle.
pub fn topological_sort(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let mut indegree: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    let mut queue: Vec<NodeId> = g.nodes().filter(|&v| indegree[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            indegree[w.index()] -= 1;
            if indegree[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        let node = g
            .nodes()
            .find(|&v| indegree[v.index()] > 0)
            // xtask-allow: panic -- a cycle detected by Kahn's algorithm leaves at least one node with residual indegree
            .expect("a cyclic graph has a node with positive residual indegree");
        Err(CycleError { node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_visits_reachable_set() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let order = dfs_preorder(&g, NodeId::new(0));
        assert_eq!(order.len(), 4); // node 4 unreachable
        assert_eq!(order[0], NodeId::new(0));
        assert!(!order.contains(&NodeId::new(4)));
    }

    #[test]
    fn preorder_handles_cycles() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let order = dfs_preorder(&g, NodeId::new(1));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn reachability_is_directional() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(is_reachable(&g, NodeId::new(0), NodeId::new(2)));
        assert!(!is_reachable(&g, NodeId::new(2), NodeId::new(0)));
        assert!(is_reachable(&g, NodeId::new(1), NodeId::new(1)));
    }

    #[test]
    fn topological_sort_respects_edges() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let order = topological_sort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()], "edge {u}->{v} violated");
        }
    }

    #[test]
    fn topological_sort_detects_cycle() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 1), (2, 3)]).unwrap();
        let err = topological_sort(&g).unwrap_err();
        assert!(err.node == NodeId::new(1) || err.node == NodeId::new(2));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000;
        let g = DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let order = dfs_preorder(&g, NodeId::new(0));
        assert_eq!(order.len(), n);
    }
}
