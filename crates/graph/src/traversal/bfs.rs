//! Breadth-first search primitives.
//!
//! The paper's algorithms are BFS-heavy: Rumor Forward Search Trees
//! (Algorithm 1/3 step 3), Bridge-end Backward Search Trees
//! (Algorithm 3 step 4), and the analytic DOAM oracle all reduce to
//! (multi-source, possibly depth-bounded, possibly filtered) BFS.

// xtask-allow-file: index -- distance arrays are node_count-sized and queues only hold NodeIds of the traversed graph
use std::collections::VecDeque;

use crate::{DiGraph, NodeId};

/// Direction of traversal relative to edge orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from source to target (out-neighbors).
    Forward,
    /// Follow edges from target to source (in-neighbors).
    Backward,
}

impl Direction {
    #[inline]
    fn neighbors(self, g: &DiGraph, v: NodeId) -> &[NodeId] {
        match self {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        }
    }
}

/// Hop distances from a set of sources to every node.
///
/// `distances[v] == None` means `v` is unreachable. Sources are at
/// distance 0; duplicated sources are tolerated.
///
/// # Panics
///
/// Panics if any source id is not in the graph.
///
/// # Examples
///
/// ```
/// use lcrb_graph::{DiGraph, NodeId};
/// use lcrb_graph::traversal::bfs_distances;
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2)])?;
/// let d = bfs_distances(&g, &[NodeId::new(0)]);
/// assert_eq!(d[2], Some(2));
/// assert_eq!(d[3], None);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn bfs_distances(g: &DiGraph, sources: &[NodeId]) -> Vec<Option<u32>> {
    bfs_distances_where(g, sources, Direction::Forward, u32::MAX, |_| true)
}

/// Hop distances traversing edges backwards (along in-neighbors).
///
/// # Panics
///
/// Panics if any source id is not in the graph.
#[must_use]
pub fn reverse_bfs_distances(g: &DiGraph, sources: &[NodeId]) -> Vec<Option<u32>> {
    bfs_distances_where(g, sources, Direction::Backward, u32::MAX, |_| true)
}

/// The fully general multi-source BFS.
///
/// Explores in `direction`, never deeper than `max_depth`, and only
/// *expands* nodes for which `expand` returns `true` (nodes failing
/// the predicate still receive a distance when first reached — they
/// are frontier leaves — but their neighbors are not enqueued). This
/// is exactly the shape needed for the paper's Rumor Forward Search
/// Tree: expansion is confined to the rumor community while bridge
/// ends outside the community are still discovered as leaves.
///
/// # Panics
///
/// Panics if any source id is not in the graph.
#[must_use]
pub fn bfs_distances_where<F>(
    g: &DiGraph,
    sources: &[NodeId],
    direction: Direction,
    max_depth: u32,
    mut expand: F,
) -> Vec<Option<u32>>
where
    F: FnMut(NodeId) -> bool,
{
    let mut dist: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < g.node_count(), "bfs source {s} out of bounds");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        // xtask-allow: panic -- BFS invariant: a distance is written before the node is enqueued
        let d = dist[v.index()].expect("queued node has a distance");
        if d >= max_depth || !expand(v) {
            continue;
        }
        for &w in direction.neighbors(g, v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A BFS tree: distances plus one parent per reached non-source node.
///
/// Produced by [`bfs_tree`]. The parent pointers realize the paper's
/// search trees (RFST/BBST) concretely.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// `distance[v]` is the hop distance from the nearest source, or
    /// `None` if unreached.
    pub distance: Vec<Option<u32>>,
    /// `parent[v]` is the BFS predecessor of `v`; `None` for sources
    /// and unreached nodes.
    pub parent: Vec<Option<NodeId>>,
    /// All reached nodes in dequeue (level) order; sources first.
    pub order: Vec<NodeId>,
}

impl BfsTree {
    /// Reconstructs the path from the nearest source to `node`
    /// (inclusive), or `None` if `node` was not reached.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds for the tree.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.distance[node.index()]?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs a multi-source BFS and records the tree structure.
///
/// Same expansion semantics as [`bfs_distances_where`].
///
/// # Panics
///
/// Panics if any source id is not in the graph.
#[must_use]
pub fn bfs_tree<F>(
    g: &DiGraph,
    sources: &[NodeId],
    direction: Direction,
    max_depth: u32,
    mut expand: F,
) -> BfsTree
where
    F: FnMut(NodeId) -> bool,
{
    let mut dist: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < g.node_count(), "bfs source {s} out of bounds");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            order.push(s);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        // xtask-allow: panic -- BFS invariant: a distance is written before the node is enqueued
        let d = dist[v.index()].expect("queued node has a distance");
        if d >= max_depth || !expand(v) {
            continue;
        }
        for &w in direction.neighbors(g, v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                parent[w.index()] = Some(v);
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        distance: dist,
        parent,
        order,
    }
}

/// Relaxes an existing distance array with a new source.
///
/// After the call, `dist[v]` is `min(old dist[v], hops from source)`.
/// Only improved nodes are re-explored, so repeatedly adding sources
/// costs much less than recomputing from scratch — this powers the
/// incremental coverage checks of the Table I heuristics.
///
/// # Panics
///
/// Panics if `source` is out of bounds or `dist.len() !=
/// g.node_count()`.
pub fn relax_with_source(g: &DiGraph, dist: &mut [Option<u32>], source: NodeId) {
    assert_eq!(dist.len(), g.node_count(), "distance array length mismatch");
    assert!(
        source.index() < g.node_count(),
        "bfs source {source} out of bounds"
    );
    let better = |cur: Option<u32>, cand: u32| cur.is_none_or(|c| cand < c);
    if !better(dist[source.index()], 0) {
        return;
    }
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        // xtask-allow: panic -- BFS invariant: a distance is written before the node is enqueued
        let d = dist[v.index()].expect("queued node has a distance");
        for &w in g.out_neighbors(v) {
            if better(dist[w.index()], d + 1) {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
}

/// Multi-source BFS over a frozen [`CsrGraph`](crate::CsrGraph)
/// snapshot — same semantics as [`bfs_distances`], but the packed
/// adjacency keeps the traversal cache-friendly for repeated
/// full-graph sweeps (see the `graph/bfs` benchmarks).
///
/// # Panics
///
/// Panics if any source id is not in the graph.
#[must_use]
pub fn bfs_distances_csr(g: &crate::CsrGraph, sources: &[NodeId]) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < g.node_count(), "bfs source {s} out of bounds");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        // xtask-allow: panic -- BFS invariant: a distance is written before the node is enqueued
        let d = dist[v.index()].expect("queued node has a distance");
        for &w in g.out_neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// An iterator-flavored single-source BFS yielding `(node, depth)`
/// pairs in visit order, created by [`Bfs::new`].
#[derive(Clone, Debug)]
pub struct Bfs<'a> {
    graph: &'a DiGraph,
    direction: Direction,
    queue: VecDeque<(NodeId, u32)>,
    seen: Vec<bool>,
}

impl<'a> Bfs<'a> {
    /// Starts a BFS from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not in the graph.
    #[must_use]
    pub fn new(graph: &'a DiGraph, source: NodeId, direction: Direction) -> Self {
        assert!(
            source.index() < graph.node_count(),
            "bfs source {source} out of bounds"
        );
        let mut seen = vec![false; graph.node_count()];
        seen[source.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back((source, 0));
        Bfs {
            graph,
            direction,
            queue,
            seen,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<(NodeId, u32)> {
        let (v, d) = self.queue.pop_front()?;
        for &w in self.direction.neighbors(self.graph, v) {
            if !self.seen[w.index()] {
                self.seen[w.index()] = true;
                self.queue.push_back((w, d + 1));
            }
        }
        Some((v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn single_source_line_distances() {
        let g = line(5);
        let d = bfs_distances(&g, &[NodeId::new(0)]);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let g = line(3);
        let d = bfs_distances(&g, &[NodeId::new(2)]);
        assert_eq!(d, vec![None, None, Some(0)]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = line(6);
        let d = bfs_distances(&g, &[NodeId::new(0), NodeId::new(4)]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn duplicate_sources_are_tolerated() {
        let g = line(3);
        let d = bfs_distances(&g, &[NodeId::new(0), NodeId::new(0)]);
        assert_eq!(d[2], Some(2));
    }

    #[test]
    fn reverse_bfs_follows_in_edges() {
        let g = line(4);
        let d = reverse_bfs_distances(&g, &[NodeId::new(3)]);
        assert_eq!(d, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn max_depth_truncates() {
        let g = line(6);
        let d = bfs_distances_where(&g, &[NodeId::new(0)], Direction::Forward, 2, |_| true);
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None);
    }

    #[test]
    fn expansion_filter_creates_leaves() {
        // 0 -> 1 -> 2; forbid expanding 1: node 1 gets a distance but
        // node 2 stays unreached. This is the RFST shape.
        let g = line(3);
        let d = bfs_distances_where(&g, &[NodeId::new(0)], Direction::Forward, u32::MAX, |v| {
            v != NodeId::new(1)
        });
        assert_eq!(d, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn tree_parents_and_paths() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let t = bfs_tree(&g, &[NodeId::new(0)], Direction::Forward, u32::MAX, |_| {
            true
        });
        assert_eq!(t.distance[4], Some(3));
        let path = t.path_to(NodeId::new(4)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], NodeId::new(0));
        assert_eq!(*path.last().unwrap(), NodeId::new(4));
        // Consecutive path entries are edges.
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(t.path_to(NodeId::new(0)).unwrap() == vec![NodeId::new(0)]);
    }

    #[test]
    fn tree_order_is_level_order() {
        let g = line(4);
        let t = bfs_tree(&g, &[NodeId::new(0)], Direction::Forward, u32::MAX, |_| {
            true
        });
        let depths: Vec<u32> = t
            .order
            .iter()
            .map(|v| t.distance[v.index()].unwrap())
            .collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(depths, sorted);
    }

    #[test]
    fn relax_with_source_matches_fresh_bfs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnm_directed(60, 180, &mut rng).unwrap();
        let mut dist = bfs_distances(&g, &[NodeId::new(0)]);
        relax_with_source(&g, &mut dist, NodeId::new(17));
        relax_with_source(&g, &mut dist, NodeId::new(33));
        let fresh = bfs_distances(&g, &[NodeId::new(0), NodeId::new(17), NodeId::new(33)]);
        assert_eq!(dist, fresh);
    }

    #[test]
    fn relax_with_worse_source_is_noop() {
        let g = line(3);
        let mut dist = bfs_distances(&g, &[NodeId::new(0)]);
        let before = dist.clone();
        relax_with_source(&g, &mut dist, NodeId::new(0));
        assert_eq!(dist, before);
    }

    #[test]
    fn bfs_iterator_visits_each_node_once() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (1, 3)]).unwrap();
        let visited: Vec<_> = Bfs::new(&g, NodeId::new(0), Direction::Forward).collect();
        assert_eq!(visited.len(), 4);
        assert_eq!(visited[0], (NodeId::new(0), 0));
        let mut ids: Vec<_> = visited.iter().map(|(v, _)| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn csr_bfs_matches_adjacency_bfs() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::gnm_directed(80, 320, &mut rng).unwrap();
        let csr = crate::CsrGraph::from(&g);
        for src in [0usize, 17, 42] {
            let a = bfs_distances(&g, &[NodeId::new(src)]);
            let b = bfs_distances_csr(&csr, &[NodeId::new(src)]);
            assert_eq!(a, b, "source {src}");
        }
        let multi = [NodeId::new(3), NodeId::new(70)];
        assert_eq!(bfs_distances(&g, &multi), bfs_distances_csr(&csr, &multi));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn csr_bfs_panics_on_bad_source() {
        let g = line(2);
        let csr = crate::CsrGraph::from(&g);
        let _ = bfs_distances_csr(&csr, &[NodeId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bfs_panics_on_bad_source() {
        let g = line(2);
        let _ = bfs_distances(&g, &[NodeId::new(9)]);
    }
}
