//! Immutable compressed-sparse-row snapshot of a directed graph.

use crate::{DiGraph, NodeId};

/// A frozen, cache-friendly snapshot of a [`DiGraph`] in compressed
/// sparse row form, with both out- and in-adjacency.
///
/// Monte-Carlo diffusion spends nearly all of its time scanning
/// neighbor lists; `CsrGraph` packs every adjacency list into two flat
/// arrays so those scans touch contiguous memory, and keeps dense
/// degree arrays so per-node degree lookups never touch the offset
/// arrays twice. The snapshot is read-only: mutate the source
/// [`DiGraph`] and re-freeze if the network changes.
///
/// This is the substrate of the simulation engine: build the snapshot
/// once per problem instance (see [`CsrGraph::from_digraph`]), then run
/// thousands of simulations against it with reusable workspaces.
///
/// # Examples
///
/// ```
/// use lcrb_graph::{CsrGraph, DiGraph, NodeId};
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (1, 2)])?;
/// let csr = CsrGraph::from(&g);
/// assert_eq!(csr.out_neighbors(NodeId::new(0)).len(), 2);
/// assert_eq!(csr.in_neighbors(NodeId::new(2)).len(), 2);
/// assert_eq!(csr.out_degrees(), &[2, 1, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
}

impl CsrGraph {
    /// Builds a snapshot from a [`DiGraph`]; alias of the
    /// [`From<&DiGraph>`](#impl-From%3C%26DiGraph%3E-for-CsrGraph)
    /// conversion that reads better at call sites building snapshots
    /// explicitly.
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        CsrGraph::from(g)
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `node` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbors of `node` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.in_offsets[i] as usize;
        let hi = self.in_offsets[i + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_degrees[node.index()] as usize
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_degrees[node.index()] as usize
    }

    /// Dense out-degree array indexed by node id.
    #[inline]
    #[must_use]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// Dense in-degree array indexed by node id.
    #[inline]
    #[must_use]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::from_raw)
    }
}

impl From<&DiGraph> for CsrGraph {
    fn from(g: &DiGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(m);
        let mut out_degrees = Vec::with_capacity(n);
        let mut in_degrees = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in g.nodes() {
            out_targets.extend_from_slice(g.out_neighbors(v));
            out_offsets.push(out_targets.len() as u32);
            out_degrees.push(g.out_degree(v) as u32);
            in_sources.extend_from_slice(g.in_neighbors(v));
            in_offsets.push(in_sources.len() as u32);
            in_degrees.push(g.in_degree(v) as u32);
        }
        CsrGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            out_degrees,
            in_degrees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_source_graph() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)]).unwrap();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(csr.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(csr.out_degree(v), g.out_degree(v));
            assert_eq!(csr.in_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn degree_arrays_match_slice_lengths() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 0), (3, 0)]).unwrap();
        let csr = CsrGraph::from_digraph(&g);
        for v in g.nodes() {
            assert_eq!(
                csr.out_degrees()[v.index()] as usize,
                csr.out_neighbors(v).len()
            );
            assert_eq!(
                csr.in_degrees()[v.index()] as usize,
                csr.in_neighbors(v).len()
            );
        }
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DiGraph::new();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.nodes().count(), 0);
        assert!(csr.out_degrees().is_empty());
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = DiGraph::with_nodes(3);
        let csr = CsrGraph::from(&g);
        for v in csr.nodes().collect::<Vec<_>>() {
            assert!(csr.out_neighbors(v).is_empty());
            assert!(csr.in_neighbors(v).is_empty());
        }
    }
}
