//! Immutable compressed-sparse-row snapshot of a directed graph.

// xtask-allow-file: index -- offset arrays hold node_count+1 entries by construction; the invariants are enforced by CsrGraph::validate in debug builds
use crate::{DiGraph, GraphError, NodeId};

/// A frozen, cache-friendly snapshot of a [`DiGraph`] in compressed
/// sparse row form, with both out- and in-adjacency.
///
/// Monte-Carlo diffusion spends nearly all of its time scanning
/// neighbor lists; `CsrGraph` packs every adjacency list into two flat
/// arrays so those scans touch contiguous memory, and keeps dense
/// degree arrays so per-node degree lookups never touch the offset
/// arrays twice. The snapshot is read-only: mutate the source
/// [`DiGraph`] and re-freeze if the network changes.
///
/// This is the substrate of the simulation engine: build the snapshot
/// once per problem instance (see [`CsrGraph::from_digraph`]), then run
/// thousands of simulations against it with reusable workspaces.
///
/// # Examples
///
/// ```
/// use lcrb_graph::{CsrGraph, DiGraph, NodeId};
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (1, 2)])?;
/// let csr = CsrGraph::from(&g);
/// assert_eq!(csr.out_neighbors(NodeId::new(0)).len(), 2);
/// assert_eq!(csr.in_neighbors(NodeId::new(2)).len(), 2);
/// assert_eq!(csr.out_degrees(), &[2, 1, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
}

impl CsrGraph {
    /// Builds a snapshot from a [`DiGraph`]; alias of the
    /// [`From<&DiGraph>`](#impl-From%3C%26DiGraph%3E-for-CsrGraph)
    /// conversion that reads better at call sites building snapshots
    /// explicitly.
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        CsrGraph::from(g)
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `node` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbors of `node` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let lo = self.in_offsets[i] as usize;
        let hi = self.in_offsets[i + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_degrees[node.index()] as usize
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_degrees[node.index()] as usize
    }

    /// Dense out-degree array indexed by node id.
    #[inline]
    #[must_use]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// Dense in-degree array indexed by node id.
    #[inline]
    #[must_use]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::from_raw)
    }

    /// Builds a snapshot directly from raw CSR arrays, validating the
    /// structural invariants before accepting them. The degree arrays
    /// are derived from the offsets. This is the checked entry point
    /// for deserialized or externally constructed snapshots;
    /// [`CsrGraph::from_digraph`] remains the usual route.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if the arrays violate any
    /// invariant checked by [`CsrGraph::validate`].
    pub fn from_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        let degrees = |offsets: &[u32]| {
            offsets
                .windows(2)
                .map(|w| w[1].saturating_sub(w[0]))
                .collect::<Vec<u32>>()
        };
        let csr = CsrGraph {
            out_degrees: degrees(&out_offsets),
            in_degrees: degrees(&in_offsets),
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Checks every structural invariant of the snapshot:
    ///
    /// - both offset arrays have `node_count + 1` entries, start at
    ///   `0`, end at the length of their adjacency array, and are
    ///   monotonically non-decreasing;
    /// - the out- and in-adjacency arrays describe the same number of
    ///   edges;
    /// - every stored target/source id is in bounds;
    /// - the dense degree arrays agree with the offset deltas.
    ///
    /// Freezing a valid [`DiGraph`] always produces a snapshot that
    /// passes (asserted in debug builds); this is the backstop for
    /// [`CsrGraph::from_parts`] and for the unchecked slice indexing
    /// the simulation kernels perform against these arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        let invalid = |detail: String| GraphError::InvalidCsr { detail };
        let check_side = |offsets: &[u32],
                          adjacency: &[NodeId],
                          degrees: &[u32],
                          side: &str|
         -> Result<usize, GraphError> {
            let n = match offsets.len().checked_sub(1) {
                Some(n) => n,
                None => return Err(invalid(format!("{side} offsets array is empty"))),
            };
            if offsets[0] != 0 {
                return Err(invalid(format!(
                    "{side} offsets must start at 0, found {}",
                    offsets[0]
                )));
            }
            if offsets[n] as usize != adjacency.len() {
                return Err(invalid(format!(
                    "last {side} offset {} does not match adjacency length {}",
                    offsets[n],
                    adjacency.len()
                )));
            }
            for (i, w) in offsets.windows(2).enumerate() {
                if w[1] < w[0] {
                    return Err(invalid(format!(
                        "{side} offsets decrease at node {i}: {} -> {}",
                        w[0], w[1]
                    )));
                }
            }
            if degrees.len() != n {
                return Err(invalid(format!(
                    "{side} degree array has {} entries for {n} nodes",
                    degrees.len()
                )));
            }
            for (i, w) in offsets.windows(2).enumerate() {
                if degrees[i] != w[1] - w[0] {
                    return Err(invalid(format!(
                        "{side} degree of node {i} is {} but offsets span {}",
                        degrees[i],
                        w[1] - w[0]
                    )));
                }
            }
            for (pos, &v) in adjacency.iter().enumerate() {
                if v.index() >= n {
                    return Err(invalid(format!(
                        "{side} adjacency entry {pos} references node {v} of {n}"
                    )));
                }
            }
            Ok(n)
        };
        let n_out = check_side(
            &self.out_offsets,
            &self.out_targets,
            &self.out_degrees,
            "out",
        )?;
        let n_in = check_side(&self.in_offsets, &self.in_sources, &self.in_degrees, "in")?;
        if n_out != n_in {
            return Err(invalid(format!(
                "out side has {n_out} nodes but in side has {n_in}"
            )));
        }
        if self.out_targets.len() != self.in_sources.len() {
            return Err(invalid(format!(
                "out side stores {} edges but in side stores {}",
                self.out_targets.len(),
                self.in_sources.len()
            )));
        }
        Ok(())
    }
}

impl From<&DiGraph> for CsrGraph {
    fn from(g: &DiGraph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(m);
        let mut out_degrees = Vec::with_capacity(n);
        let mut in_degrees = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in g.nodes() {
            out_targets.extend_from_slice(g.out_neighbors(v));
            out_offsets.push(out_targets.len() as u32);
            out_degrees.push(g.out_degree(v) as u32);
            in_sources.extend_from_slice(g.in_neighbors(v));
            in_offsets.push(in_sources.len() as u32);
            in_degrees.push(g.in_degree(v) as u32);
        }
        let csr = CsrGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            out_degrees,
            in_degrees,
        };
        debug_assert!(
            csr.validate().is_ok(),
            "freezing a valid DiGraph must produce a valid snapshot: {:?}",
            csr.validate()
        );
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_source_graph() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)]).unwrap();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(csr.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(csr.out_degree(v), g.out_degree(v));
            assert_eq!(csr.in_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn degree_arrays_match_slice_lengths() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (2, 0), (3, 0)]).unwrap();
        let csr = CsrGraph::from_digraph(&g);
        for v in g.nodes() {
            assert_eq!(
                csr.out_degrees()[v.index()] as usize,
                csr.out_neighbors(v).len()
            );
            assert_eq!(
                csr.in_degrees()[v.index()] as usize,
                csr.in_neighbors(v).len()
            );
        }
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DiGraph::new();
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.nodes().count(), 0);
        assert!(csr.out_degrees().is_empty());
    }

    #[test]
    fn frozen_snapshots_validate() {
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(CsrGraph::from(&g).validate(), Ok(()));
        assert_eq!(CsrGraph::from(&DiGraph::new()).validate(), Ok(()));
    }

    #[test]
    fn from_parts_roundtrips_a_valid_snapshot() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let reference = CsrGraph::from(&g);
        let rebuilt = CsrGraph::from_parts(
            reference.out_offsets.clone(),
            reference.out_targets.clone(),
            reference.in_offsets.clone(),
            reference.in_sources.clone(),
        )
        .unwrap();
        for v in g.nodes() {
            assert_eq!(rebuilt.out_neighbors(v), reference.out_neighbors(v));
            assert_eq!(rebuilt.in_neighbors(v), reference.in_neighbors(v));
            assert_eq!(rebuilt.out_degree(v), reference.out_degree(v));
            assert_eq!(rebuilt.in_degree(v), reference.in_degree(v));
        }
    }

    #[test]
    fn from_parts_rejects_corrupted_arrays() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let good = CsrGraph::from(&g);
        let cases: Vec<(&str, CsrGraph)> = vec![
            ("decreasing offsets", {
                let mut c = good.clone();
                c.out_offsets[1] = 2;
                c.out_offsets[2] = 1;
                c
            }),
            ("short final offset", {
                let mut c = good.clone();
                let last = c.out_offsets.len() - 1;
                c.out_offsets[last] = 1;
                c
            }),
            ("out-of-bounds target", {
                let mut c = good.clone();
                c.out_targets[0] = NodeId::new(99);
                c
            }),
            ("edge-count mismatch", {
                let mut c = good.clone();
                c.in_sources.pop();
                let last = c.in_offsets.len() - 1;
                c.in_offsets[last] -= 1;
                c.in_degrees[2] -= 1;
                c
            }),
            ("stale degree array", {
                let mut c = good.clone();
                c.out_degrees[0] = 7;
                c
            }),
            ("empty offsets", {
                let mut c = good.clone();
                c.in_offsets.clear();
                c
            }),
        ];
        for (label, corrupted) in cases {
            assert!(
                matches!(corrupted.validate(), Err(GraphError::InvalidCsr { .. })),
                "{label} should fail validation"
            );
        }
        // And the public checked constructor surfaces the same error.
        let err = CsrGraph::from_parts(
            vec![0, 2, 1],
            vec![NodeId::new(0), NodeId::new(1)],
            vec![0, 0, 0],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid csr snapshot"));
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = DiGraph::with_nodes(3);
        let csr = CsrGraph::from(&g);
        for v in csr.nodes().collect::<Vec<_>>() {
            assert!(csr.out_neighbors(v).is_empty());
            assert!(csr.in_neighbors(v).is_empty());
        }
    }
}
