//! Distance-based network measures: eccentricity, pseudo-diameter,
//! and closeness — used for dataset characterization and for the
//! rumor-source-detection extension in the `lcrb` crate (Jordan
//! centers are eccentricity minimizers).

use crate::traversal::{bfs_distances, reverse_bfs_distances};
use crate::{DiGraph, NodeId};

/// Forward eccentricity of `node`: the greatest finite hop distance
/// from `node` to any reachable node; `None` if `node` reaches no one
/// but itself.
///
/// # Panics
///
/// Panics if `node` is not in the graph.
#[must_use]
pub fn eccentricity(g: &DiGraph, node: NodeId) -> Option<u32> {
    bfs_distances(g, &[node])
        .into_iter()
        .flatten()
        .filter(|&d| d > 0)
        .max()
}

/// Lower bound on the directed diameter by the double-sweep
/// heuristic: BFS from `start`, then BFS from the farthest node
/// found. Exact on trees; a good, cheap bound on general graphs.
/// Returns `None` when `start` reaches nothing.
///
/// # Panics
///
/// Panics if `start` is not in the graph.
#[must_use]
pub fn pseudo_diameter(g: &DiGraph, start: NodeId) -> Option<u32> {
    let first = bfs_distances(g, &[start]);
    let (far, d1) = first
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (i, d)))
        .max_by_key(|&(_, d)| d)?;
    if d1 == 0 {
        return None;
    }
    let second = bfs_distances(g, &[NodeId::new(far)]);
    let d2 = second.into_iter().flatten().max().unwrap_or(0);
    Some(d1.max(d2))
}

/// Harmonic closeness centrality of `node` over *incoming* distances
/// (how quickly the rest of the network reaches it): `Σ 1/d(u, v)`
/// over all `u != v`, normalized by `n - 1`. Harmonic closeness is
/// robust to disconnected graphs (unreachable pairs contribute 0).
///
/// Returns 0 for graphs with fewer than 2 nodes.
///
/// # Panics
///
/// Panics if `node` is not in the graph.
#[must_use]
pub fn harmonic_closeness_in(g: &DiGraph, node: NodeId) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    let dist = reverse_bfs_distances(g, &[node]);
    let sum: f64 = dist
        .into_iter()
        .flatten()
        .filter(|&d| d > 0)
        .map(|d| 1.0 / f64::from(d))
        .sum();
    sum / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn path_eccentricities() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId::new(3)), Some(1));
        assert_eq!(eccentricity(&g, NodeId::new(4)), None); // sink
    }

    #[test]
    fn pseudo_diameter_on_path_and_cycle() {
        // On a directed path the sweep cannot walk backwards: the
        // bound from an interior start is only what that start sees.
        let g = path_graph(6);
        assert_eq!(pseudo_diameter(&g, NodeId::new(0)), Some(5));
        assert_eq!(pseudo_diameter(&g, NodeId::new(2)), Some(3));
        // On strongly connected graphs the double sweep is exact.
        let c = cycle_graph(8);
        assert_eq!(pseudo_diameter(&c, NodeId::new(0)), Some(7));
        let k = complete_graph(4);
        assert_eq!(pseudo_diameter(&k, NodeId::new(0)), Some(1));
        // And on symmetrized trees.
        let t = path_graph(6).symmetrized();
        assert_eq!(pseudo_diameter(&t, NodeId::new(2)), Some(5));
    }

    #[test]
    fn pseudo_diameter_none_for_isolated_start() {
        let g = DiGraph::with_nodes(3);
        assert_eq!(pseudo_diameter(&g, NodeId::new(0)), None);
    }

    #[test]
    fn closeness_of_star_hub() {
        let g = star_graph(5); // symmetric star
        let hub = harmonic_closeness_in(&g, NodeId::new(0));
        let leaf = harmonic_closeness_in(&g, NodeId::new(1));
        // Hub: all 4 leaves at distance 1 -> 4/4 = 1.0.
        assert!((hub - 1.0).abs() < 1e-12);
        // Leaf: hub at 1, other 3 leaves at 2 -> (1 + 3*0.5)/4 = 0.625.
        assert!((leaf - 0.625).abs() < 1e-12);
    }

    #[test]
    fn closeness_degenerate_graphs() {
        assert_eq!(
            harmonic_closeness_in(&DiGraph::with_nodes(1), NodeId::new(0)),
            0.0
        );
        let g = DiGraph::with_nodes(3);
        assert_eq!(harmonic_closeness_in(&g, NodeId::new(1)), 0.0);
    }

    #[test]
    fn closeness_uses_incoming_direction() {
        // 0 -> 1: node 1 is reachable (closeness > 0), node 0 is not.
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        assert!(harmonic_closeness_in(&g, NodeId::new(1)) > 0.0);
        assert_eq!(harmonic_closeness_in(&g, NodeId::new(0)), 0.0);
    }
}
