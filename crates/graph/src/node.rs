//! Node identifiers.

use core::fmt;

/// A compact identifier for a node in a [`DiGraph`](crate::DiGraph).
///
/// Node ids are dense: a graph with `n` nodes uses exactly the ids
/// `0..n`, in insertion order. The id is a thin wrapper around `u32`
/// (social graphs in this reproduction have well under four billion
/// nodes), which keeps adjacency lists and BFS queues compact.
///
/// # Examples
///
/// ```
/// use lcrb_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            u32::try_from(index).is_ok(),
            "node index {index} exceeds u32::MAX"
        );
        NodeId(index as u32)
    }

    /// Creates a node id directly from its raw `u32` representation.
    #[inline]
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the id as a `usize` index, suitable for indexing
    /// per-node arrays.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(raw: u32) -> NodeId {
        NodeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 17, 65_536, u32::MAX as usize] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn new_rejects_oversized_index() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn raw_conversions() {
        let v = NodeId::from_raw(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(usize::from(v), 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(5));
        assert_eq!(NodeId::new(9), NodeId::new(9));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "NodeId(3)");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
    }
}
