//! The mutable adjacency-list directed graph.

// xtask-allow-file: index -- adjacency vectors are indexed by NodeIds validated on insertion against node_count
use std::collections::HashSet;

use crate::{GraphError, NodeId};

/// A simple directed graph (no parallel edges, no self-loops) with
/// dense `u32` node ids and both out- and in-adjacency lists.
///
/// This is the workhorse structure of the reproduction: every
/// algorithm crate (`lcrb-community`, `lcrb-diffusion`, `lcrb`)
/// traverses social networks through this type. Out- and in-neighbor
/// lists are both maintained because the paper's algorithms need both
/// directions (forward rumor search for bridge ends, backward search
/// for BBSTs).
///
/// # Examples
///
/// ```
/// use lcrb_graph::DiGraph;
///
/// # fn main() -> Result<(), lcrb_graph::GraphError> {
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b)?;
/// g.add_edge(b, c)?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.out_neighbors(a), &[b]);
/// assert_eq!(g.in_neighbors(c), &[b]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    out: Vec<Vec<NodeId>>,
    ins: Vec<Vec<NodeId>>,
    edge_count: usize,
    edge_set: HashSet<u64>,
}

#[inline]
fn edge_key(u: NodeId, v: NodeId) -> u64 {
    (u64::from(u.raw()) << 32) | u64::from(v.raw())
}

impl DiGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            out: Vec::with_capacity(nodes),
            ins: Vec::with_capacity(nodes),
            edge_count: 0,
            edge_set: HashSet::new(),
        }
    }

    /// Creates a graph with `nodes` isolated nodes.
    #[must_use]
    pub fn with_nodes(nodes: usize) -> Self {
        let mut g = DiGraph::with_capacity(nodes);
        g.add_nodes(nodes);
        g
    }

    /// Builds a graph with `nodes` nodes from `(source, target)` index
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>=
    /// nodes` and [`GraphError::SelfLoop`] for `(v, v)` pairs.
    /// Duplicate edges are silently collapsed.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb_graph::DiGraph;
    ///
    /// # fn main() -> Result<(), lcrb_graph::GraphError> {
    /// let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 1)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edges<I>(nodes: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = DiGraph::with_nodes(nodes);
        for (u, v) in edges {
            if u >= nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: NodeId::new(u),
                    node_count: nodes,
                });
            }
            if v >= nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: NodeId::new(v),
                    node_count: nodes,
                });
            }
            g.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of distinct directed edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Adds a node and returns its id (ids are assigned densely in
    /// insertion order).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.out.len());
        self.out.push(Vec::new());
        self.ins.push(Vec::new());
        id
    }

    /// Adds `count` nodes, returning the id of the first one added.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::new(self.out.len());
        self.out.resize_with(self.out.len() + count, Vec::new);
        self.ins.resize_with(self.ins.len() + count, Vec::new);
        first
    }

    /// Returns `true` if `node` is a valid id for this graph.
    #[inline]
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.out.len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Inserts the directed edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge was inserted and `Ok(false)` if
    /// it was already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for unknown endpoints
    /// and [`GraphError::SelfLoop`] when `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !self.edge_set.insert(edge_key(u, v)) {
            return Ok(false);
        }
        self.out[u.index()].push(v);
        self.ins[v.index()].push(u);
        self.edge_count += 1;
        Ok(true)
    }

    /// Inserts both `(u, v)` and `(v, u)`.
    ///
    /// Returns the number of edges actually inserted (0, 1 or 2).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DiGraph::add_edge`].
    pub fn add_edge_symmetric(&mut self, u: NodeId, v: NodeId) -> Result<usize, GraphError> {
        let a = self.add_edge(u, v)?;
        let b = self.add_edge(v, u)?;
        Ok(usize::from(a) + usize::from(b))
    }

    /// Returns `true` if the directed edge `(u, v)` exists.
    ///
    /// Unknown endpoints simply yield `false`.
    #[inline]
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_set.contains(&edge_key(u, v))
    }

    /// Out-neighbors of `node`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out[node.index()]
    }

    /// In-neighbors of `node`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.ins[node.index()]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.ins[node.index()].len()
    }

    /// Total degree (in + out) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[inline]
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Iterates over all node ids `0..node_count()`.
    pub fn nodes(&self) -> Nodes {
        Nodes {
            range: 0..self.node_count() as u32,
        }
    }

    /// Iterates over all directed edges as `(source, target)` pairs,
    /// grouped by source in insertion order.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            source: 0,
            offset: 0,
        }
    }

    /// Returns the reversed graph (every edge `(u, v)` becomes
    /// `(v, u)`).
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out: self.ins.clone(),
            ins: self.out.clone(),
            edge_count: self.edge_count,
            // Rebuilt from adjacency order rather than by iterating
            // the old hash set, so construction is deterministic.
            edge_set: self.edges().map(|(u, v)| edge_key(v, u)).collect(),
        }
    }

    /// Returns the symmetrized graph: for every edge `(u, v)` the
    /// reciprocal `(v, u)` is also present. Used to treat undirected
    /// datasets (e.g. the Hep collaboration network, §VI-A of the
    /// paper) as directed graphs.
    #[must_use]
    pub fn symmetrized(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count());
        for (u, v) in self.edges() {
            let _ = g.add_edge(u, v);
            let _ = g.add_edge(v, u);
        }
        g
    }

    /// Extracts the subgraph induced by `nodes`.
    ///
    /// Returns the subgraph together with the mapping from subgraph
    /// ids back to ids of `self` (see [`Subgraph`]). Duplicate entries
    /// in `nodes` are an error in the caller's bookkeeping and cause a
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains an unknown id or a duplicate.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Subgraph {
        let mut to_sub = vec![u32::MAX; self.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(
                to_sub[v.index()] == u32::MAX,
                "duplicate node {v} passed to induced_subgraph"
            );
            to_sub[v.index()] = i as u32;
        }
        let mut g = DiGraph::with_nodes(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            for &w in self.out_neighbors(v) {
                let j = to_sub[w.index()];
                if j != u32::MAX {
                    let _ = g.add_edge(NodeId::new(i), NodeId::from_raw(j));
                }
            }
        }
        Subgraph {
            graph: g,
            to_parent: nodes.to_vec(),
        }
    }

    /// Rebuilds the duplicate-edge index from the adjacency lists.
    ///
    /// Useful after reconstructing a graph from external storage that
    /// does not carry the internal hash index; call this before
    /// mutating the graph or calling [`DiGraph::has_edge`].
    pub fn rebuild_edge_index(&mut self) {
        self.edge_set = self
            .out
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().map(move |&v| edge_key(NodeId::new(u), v)))
            .collect();
    }
}

/// Iterator over node ids of a [`DiGraph`], created by
/// [`DiGraph::nodes`].
#[derive(Clone, Debug)]
pub struct Nodes {
    range: core::ops::Range<u32>,
}

impl Iterator for Nodes {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::from_raw)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Nodes {}

/// Iterator over directed edges of a [`DiGraph`], created by
/// [`DiGraph::edges`].
#[derive(Clone, Debug)]
pub struct Edges<'a> {
    graph: &'a DiGraph,
    source: usize,
    offset: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.source < self.graph.node_count() {
            let nbrs = &self.graph.out[self.source];
            if self.offset < nbrs.len() {
                let item = (NodeId::new(self.source), nbrs[self.offset]);
                self.offset += 1;
                return Some(item);
            }
            self.source += 1;
            self.offset = 0;
        }
        None
    }
}

/// An induced subgraph plus the mapping back to the parent graph,
/// returned by [`DiGraph::induced_subgraph`].
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph with dense ids `0..nodes.len()`.
    pub graph: DiGraph,
    /// `to_parent[i]` is the parent-graph id of subgraph node `i`.
    pub to_parent: Vec<NodeId>,
}

impl Subgraph {
    /// Translates a subgraph node id back to the parent graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid subgraph id.
    #[inline]
    #[must_use]
    pub fn parent_id(&self, node: NodeId) -> NodeId {
        self.to_parent[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = DiGraph::new();
        assert_eq!(g.add_node(), NodeId::new(0));
        assert_eq!(g.add_nodes(3), NodeId::new(1));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = DiGraph::with_nodes(2);
        let err = g.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn add_edge_rejects_out_of_bounds() {
        let mut g = DiGraph::with_nodes(2);
        let err = g.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: NodeId::new(5),
                node_count: 2
            }
        );
    }

    #[test]
    fn add_edge_deduplicates() {
        let mut g = DiGraph::with_nodes(2);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        assert!(!g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(NodeId::new(0)), 1);
        assert_eq!(g.in_degree(NodeId::new(1)), 1);
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.in_degree(NodeId::new(0)), 0);
        assert_eq!(g.in_degree(NodeId::new(3)), 2);
        assert_eq!(g.degree(NodeId::new(3)), 2);
        assert_eq!(
            g.out_neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            g.in_neighbors(NodeId::new(3)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn edges_iterator_lists_all_edges() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(NodeId::new(0), NodeId::new(2))));
        assert!(edges.contains(&(NodeId::new(2), NodeId::new(3))));
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
            assert!(!r.has_edge(u, v) || g.has_edge(v, u));
        }
        assert_eq!(r.out_degree(NodeId::new(3)), 2);
    }

    #[test]
    fn symmetrized_contains_both_directions() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let s = g.symmetrized();
        assert_eq!(s.edge_count(), 4);
        assert!(s.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(s.has_edge(NodeId::new(2), NodeId::new(1)));
        // Symmetrizing twice is idempotent.
        assert_eq!(s.symmetrized().edge_count(), 4);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let sub = g.induced_subgraph(&[NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
        assert_eq!(sub.graph.node_count(), 3);
        // 0->1 and 1->3 survive; edges through node 2 are dropped.
        assert_eq!(sub.graph.edge_count(), 2);
        assert!(sub.graph.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(sub.graph.has_edge(NodeId::new(1), NodeId::new(2)));
        assert_eq!(sub.parent_id(NodeId::new(2)), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = diamond();
        let _ = g.induced_subgraph(&[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn from_edges_out_of_bounds() {
        let err = DiGraph::from_edges(2, [(0, 2)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn rebuild_edge_index_restores_has_edge() {
        let mut g = diamond();
        g.edge_set.clear();
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        g.rebuild_edge_index();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn nodes_iterator_is_exact_size() {
        let g = DiGraph::with_nodes(5);
        let it = g.nodes();
        assert_eq!(it.len(), 5);
        assert_eq!(it.last(), Some(NodeId::new(4)));
    }
}
