//! Structural graph metrics used to calibrate and sanity-check the
//! synthetic datasets against the statistics the paper reports
//! (average node degree, density, etc.).

// xtask-allow-file: index -- degree histograms are indexed by degrees, which are bounded by node_count
use crate::DiGraph;

/// Average out-degree, `m / n` (0 for the empty graph).
///
/// For symmetrized undirected graphs this equals the undirected
/// average degree, which is the quantity the paper reports ("average
/// node degree of 10.0" for Enron, 7.73 for Hep).
#[must_use]
pub fn average_out_degree(g: &DiGraph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Directed density: `m / (n * (n - 1))` (0 for graphs with < 2
/// nodes).
#[must_use]
pub fn density(g: &DiGraph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        0.0
    } else {
        g.edge_count() as f64 / (n * (n - 1)) as f64
    }
}

/// Histogram of out-degrees: entry `k` counts nodes with out-degree
/// `k`.
#[must_use]
pub fn out_degree_histogram(g: &DiGraph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.nodes() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

/// Fraction of edges `(u, v)` whose reciprocal `(v, u)` also exists
/// (1.0 for symmetrized graphs, 0 for graphs without edges).
#[must_use]
pub fn reciprocity(g: &DiGraph) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
    mutual as f64 / g.edge_count() as f64
}

/// Global clustering coefficient (transitivity) of the symmetrized
/// graph: `3 * triangles / connected triples`.
///
/// Exact triangle counting costs `O(sum of d^2)`; intended for the
/// small-to-medium graphs used in tests and calibration, not for
/// per-step simulation loops.
#[must_use]
pub fn global_clustering_coefficient(g: &DiGraph) -> f64 {
    let s = g.symmetrized();
    let mut closed = 0usize; // ordered paths u-v-w with edge u-w
    let mut triples = 0usize; // ordered paths u-v-w, u != w
    for v in s.nodes() {
        let nbrs = s.out_neighbors(v);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        triples += d * (d - 1);
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if s.has_edge(u, w) {
                    closed += 2; // both orderings of the path
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        closed as f64 / triples as f64
    }
}

/// A one-struct summary of the metrics above, convenient for logging
/// dataset calibration.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Average out-degree.
    pub average_out_degree: f64,
    /// Directed density.
    pub density: f64,
    /// Edge reciprocity.
    pub reciprocity: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
}

impl GraphSummary {
    /// Computes the summary for `g`.
    #[must_use]
    pub fn of(g: &DiGraph) -> Self {
        GraphSummary {
            nodes: g.node_count(),
            edges: g.edge_count(),
            average_out_degree: average_out_degree(g),
            density: density(g),
            reciprocity: reciprocity(g),
            max_out_degree: g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0),
        }
    }
}

impl core::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, avg out-degree {:.2}, density {:.6}, reciprocity {:.2}, max out-degree {}",
            self.nodes,
            self.edges,
            self.average_out_degree,
            self.density,
            self.reciprocity,
            self.max_out_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn average_degree_and_density() {
        let g = complete_graph(5);
        assert!((average_out_degree(&g) - 4.0).abs() < 1e-12);
        assert!((density(&g) - 1.0).abs() < 1e-12);
        let p = path_graph(4);
        assert!((average_out_degree(&p) - 0.75).abs() < 1e-12);
        assert!((density(&p) - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics() {
        let g = DiGraph::new();
        assert_eq!(average_out_degree(&g), 0.0);
        assert_eq!(density(&g), 0.0);
        assert_eq!(reciprocity(&g), 0.0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
        assert_eq!(out_degree_histogram(&g), vec![0]);
    }

    #[test]
    fn histogram_counts_nodes() {
        let g = star_graph(4); // hub out-degree 3, leaves out-degree 1
        let h = out_degree_histogram(&g);
        assert_eq!(h, vec![0, 3, 0, 1]);
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    fn reciprocity_of_cycle_and_star() {
        assert_eq!(reciprocity(&cycle_graph(5)), 0.0);
        assert_eq!(reciprocity(&star_graph(5)), 1.0);
        // A 2-cycle is fully reciprocal.
        let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        assert_eq!(reciprocity(&g), 1.0);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let tri = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!((global_clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering_coefficient(&star_graph(5)), 0.0);
    }

    #[test]
    fn clustering_of_square_with_diagonal() {
        // Square 0-1-2-3 plus diagonal 0-2: 2 triangles, 8 + 2*... compute:
        // degrees: 0:3, 1:2, 2:3, 3:2 -> triples = 3*2+2*1+3*2+2*1 = 16
        // triangles = 2, closed ordered paths = 2 * 3! = ... formula: 3*2*2=12? Use
        // transitivity = 3*T*2 / triples = 6*2/16 = 0.75.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let c = global_clustering_coefficient(&g);
        assert!((c - 0.75).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn summary_display_and_fields() {
        let g = star_graph(4);
        let s = GraphSummary::of(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.reciprocity, 1.0);
        let text = s.to_string();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("6 edges"));
    }
}
