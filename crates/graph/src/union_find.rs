//! Disjoint-set (union-find) structure.

// xtask-allow-file: index -- parent/rank arrays are sized at construction and find() only follows stored parent indices
/// A union-find structure over dense `usize` indices with union by
/// size and path halving.
///
/// Used for weakly-connected-component computation and as a general
/// substrate utility (the community crate uses it to merge
/// singleton partitions).
///
/// # Examples
///
/// ```
/// use lcrb_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, ..., {n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "union-find size {n} exceeds u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    #[inline]
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if they were previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Assigns a dense label in `0..set_count()` to every element,
    /// consistent within each set.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0; n];
        let mut next = 0;
        for (x, label) in labels.iter_mut().enumerate() {
            let r = self.find(x);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            *label = label_of_root[r];
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(1), 1);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        uf.union(4, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.set_count());
    }

    #[test]
    fn long_chain_find_terminates() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert_eq!(uf.set_size(0), n);
    }

    #[test]
    fn empty_union_find() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.labels(), Vec::<usize>::new());
    }
}
