//! Regression: `monte_carlo_csr` must be bitwise deterministic in the
//! thread count. Per-run seeds are derived from the base seed and the
//! run index (never from the worker), and the per-hop accumulators sum
//! integer-valued counts, so any partition of the runs over workers
//! must reduce to the identical [`AveragedOutcome`] — including the
//! standard deviation. The run counts below are deliberately not
//! divisible by the thread counts so the partitions are uneven.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lcrb_diffusion::{
    monte_carlo_csr, DoamModel, MonteCarloConfig, OpoaoModel, SeedSets, TwoCascadeModel,
};
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

/// A 60-node random digraph with 4 rumor and 3 protector seeds.
fn fixture(seed: u64) -> (CsrGraph, SeedSets) {
    let n = 60;
    let mut g = DiGraph::with_nodes(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..4 * n {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    let rumors: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let protectors: Vec<NodeId> = (10..13).map(NodeId::new).collect();
    let seeds = SeedSets::new(&g, rumors, protectors).expect("seeds are valid and disjoint");
    (CsrGraph::from(&g), seeds)
}

fn run<M: TwoCascadeModel + Sync>(
    model: &M,
    csr: &CsrGraph,
    seeds: &SeedSets,
    runs: usize,
    threads: usize,
) -> lcrb_diffusion::AveragedOutcome {
    monte_carlo_csr(
        model,
        csr,
        seeds,
        &MonteCarloConfig {
            runs,
            base_seed: 99,
            threads,
        },
    )
}

#[test]
fn opoao_monte_carlo_is_identical_across_thread_counts() {
    let (csr, seeds) = fixture(7);
    let model = OpoaoModel::default();
    // 25 runs: not divisible by 2 or 7, so workers get uneven shares.
    let reference = run(&model, &csr, &seeds, 25, 1);
    assert!(reference.std_final_infected >= 0.0);
    for threads in [2, 7] {
        let other = run(&model, &csr, &seeds, 25, threads);
        assert_eq!(
            reference, other,
            "OPOAO Monte-Carlo diverged at {threads} threads"
        );
    }
}

#[test]
fn doam_monte_carlo_is_identical_across_thread_counts() {
    let (csr, seeds) = fixture(11);
    let model = DoamModel::default();
    let reference = run(&model, &csr, &seeds, 25, 1);
    for threads in [2, 7] {
        let other = run(&model, &csr, &seeds, 25, threads);
        assert_eq!(
            reference, other,
            "DOAM Monte-Carlo diverged at {threads} threads"
        );
    }
}

#[test]
fn thread_count_zero_auto_detects_and_still_matches_serial() {
    let (csr, seeds) = fixture(13);
    let model = OpoaoModel::default();
    let serial = run(&model, &csr, &seeds, 25, 1);
    let auto = run(&model, &csr, &seeds, 25, 0);
    assert_eq!(serial, auto);
}
