//! Property-based tests for the diffusion engine.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use lcrb_diffusion::{
    doam_analytic, doam_safe_targets, monte_carlo, rr_sketch_into, CompetitiveIcModel,
    CompetitiveLtModel, CompetitiveSisModel, DoamModel, IcRealization, MonteCarloConfig,
    OpoaoModel, OpoaoRealization, RrScratch, SeedSets, SimWorkspace, SisState, SketchBatch, Status,
    TwoCascadeModel,
};
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

/// Strategy: a random graph plus disjoint rumor/protector seeds.
fn arb_instance() -> impl Strategy<Value = (DiGraph, SeedSets)> {
    (3usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n), 0..(4 * n)),
            proptest::collection::btree_set(0..n, 1..4),
            proptest::collection::btree_set(0..n, 0..4),
        )
            .prop_map(move |(pairs, rumors, protectors)| {
                let mut g = DiGraph::with_nodes(n);
                for (u, v) in pairs {
                    if u != v {
                        let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
                    }
                }
                let rumors: Vec<NodeId> = rumors.into_iter().map(NodeId::new).collect();
                let protectors: Vec<NodeId> = protectors
                    .into_iter()
                    .filter(|p| !rumors.iter().any(|r| r.index() == *p))
                    .map(NodeId::new)
                    .collect();
                let seeds = SeedSets::new(&g, rumors, protectors).expect("valid by construction");
                (g, seeds)
            })
    })
}

proptest! {
    #[test]
    fn doam_simulator_matches_analytic_oracle((g, seeds) in arb_instance()) {
        let sim = DoamModel::default().run_deterministic(&g, &seeds);
        let ana = doam_analytic(&g, &seeds);
        prop_assert_eq!(sim.statuses(), ana.statuses());
        for v in g.nodes() {
            prop_assert_eq!(sim.activation_hop(v), ana.activation_hop(v));
        }
        prop_assert_eq!(sim.trace(), ana.trace());
    }

    #[test]
    fn doam_safe_targets_agree_with_statuses((g, seeds) in arb_instance()) {
        let outcome = doam_analytic(&g, &seeds);
        let targets: Vec<NodeId> = g.nodes().collect();
        let safe = doam_safe_targets(&g, &seeds, &targets);
        for (v, &is_safe) in targets.iter().zip(&safe) {
            prop_assert_eq!(is_safe, !outcome.status(*v).is_infected());
        }
    }

    #[test]
    fn seeds_keep_their_status_under_every_model((g, seeds) in arb_instance(), seed in 0u64..64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        type ModelRun<'a> = Box<dyn Fn(&mut SmallRng) -> lcrb_diffusion::DiffusionOutcome + 'a>;
        let models: Vec<ModelRun> = vec![
            Box::new(|r| OpoaoModel::default().run(&g, &seeds, r)),
            Box::new(|r| DoamModel::default().run(&g, &seeds, r)),
            Box::new(|r| CompetitiveIcModel::new(0.4).unwrap().run(&g, &seeds, r)),
            Box::new(|r| CompetitiveLtModel::default().run(&g, &seeds, r)),
        ];
        for run in models {
            let o = run(&mut rng);
            for &r in seeds.rumors() {
                prop_assert_eq!(o.status(r), Status::Infected);
                prop_assert_eq!(o.activation_hop(r), Some(0));
            }
            for &p in seeds.protectors() {
                prop_assert_eq!(o.status(p), Status::Protected);
            }
            // Trace totals are consistent with statuses.
            let infected = o.statuses().iter().filter(|s| s.is_infected()).count();
            let protected = o.statuses().iter().filter(|s| s.is_protected()).count();
            prop_assert_eq!(infected, o.infected_count());
            prop_assert_eq!(protected, o.protected_count());
            // Active nodes have hops, inactive do not.
            for v in g.nodes() {
                prop_assert_eq!(o.status(v).is_active(), o.activation_hop(v).is_some());
            }
        }
    }

    #[test]
    fn activation_hops_respect_edge_granularity((g, seeds) in arb_instance(), seed in 0u64..32) {
        // In every model, a node activated at hop t > 0 has an
        // in-neighbor activated strictly earlier.
        let mut rng = SmallRng::seed_from_u64(seed);
        let o = OpoaoModel::default().run(&g, &seeds, &mut rng);
        for v in g.nodes() {
            if let Some(t) = o.activation_hop(v) {
                if t > 0 {
                    let ok = g
                        .in_neighbors(v)
                        .iter()
                        .any(|&u| o.activation_hop(u).is_some_and(|tu| tu < t));
                    prop_assert!(ok, "node {v} activated at {t} without earlier in-neighbor");
                }
            }
        }
    }

    #[test]
    fn realized_opoao_is_deterministic((g, seeds) in arb_instance(), rseed in 0u64..256) {
        let model = OpoaoModel::default();
        let real = OpoaoRealization::new(rseed);
        let a = model.run_realized(&g, &seeds, &real);
        let b = model.run_realized(&g, &seeds, &real);
        prop_assert_eq!(a.statuses(), b.statuses());
        prop_assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn adding_protectors_never_hurts_under_doam((g, seeds) in arb_instance(), extra in 0usize..30) {
        // DOAM protection is monotone in the protector set.
        let extra = NodeId::new(extra % g.node_count());
        if seeds.rumors().contains(&extra) {
            return Ok(());
        }
        let mut protectors = seeds.protectors().to_vec();
        protectors.push(extra);
        let bigger = seeds.with_protectors(&g, protectors).unwrap();
        let base = doam_analytic(&g, &seeds);
        let more = doam_analytic(&g, &bigger);
        prop_assert!(more.infected_count() <= base.infected_count());
        // Every node protected before stays protected.
        for v in g.nodes() {
            if base.status(v).is_protected() {
                prop_assert!(more.status(v).is_protected(), "node {v} lost protection");
            }
        }
    }

    #[test]
    fn monte_carlo_is_thread_invariant((g, seeds) in arb_instance()) {
        let model = OpoaoModel::new(10);
        let a = monte_carlo(&model, &g, &seeds, &MonteCarloConfig { runs: 8, base_seed: 4, threads: 1 });
        let b = monte_carlo(&model, &g, &seeds, &MonteCarloConfig { runs: 8, base_seed: 4, threads: 3 });
        prop_assert_eq!(a.runs, b.runs);
        prop_assert_eq!(a.mean_infected_by_hop.len(), b.mean_infected_by_hop.len());
        for (x, y) in a.mean_infected_by_hop.iter().zip(&b.mean_infected_by_hop) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn ic_realized_runs_are_deterministic_and_monotone((g, seeds) in arb_instance(), rseed in 0u64..128) {
        let model = CompetitiveIcModel::new(0.45).unwrap();
        let real = IcRealization::new(rseed);
        let a = model.run_realized(&g, &seeds, &real);
        let b = model.run_realized(&g, &seeds, &real);
        prop_assert_eq!(a.statuses(), b.statuses());
        // Adding a protector never creates an infection under the
        // live-edge coupling.
        let extra = g
            .nodes()
            .find(|v| !seeds.rumors().contains(v) && !seeds.protectors().contains(v));
        if let Some(extra) = extra {
            let mut protectors = seeds.protectors().to_vec();
            protectors.push(extra);
            let bigger = seeds.with_protectors(&g, protectors).unwrap();
            let more = model.run_realized(&g, &bigger, &real);
            for v in g.nodes() {
                if more.status(v).is_infected() {
                    prop_assert!(a.status(v).is_infected(), "node {v} newly infected");
                }
            }
        }
    }

    #[test]
    fn sis_trace_is_conserved_and_seeded_correctly((g, seeds) in arb_instance(), seed in 0u64..64) {
        let model = CompetitiveSisModel::new(0.3, 0.3, 0.2, 15).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let o = model.run(&g, &seeds, &mut rng);
        prop_assert_eq!(o.trace.len(), 16);
        prop_assert_eq!(o.trace[0].infected, seeds.rumors().len());
        prop_assert_eq!(o.trace[0].protected, seeds.protectors().len());
        let n = g.node_count();
        for r in &o.trace {
            prop_assert!(r.infected + r.protected <= n);
        }
        // Final states match the final trace record.
        let fi = o.final_states.iter().filter(|&&s| s == SisState::Infected).count();
        let fp = o.final_states.iter().filter(|&&s| s == SisState::Protected).count();
        prop_assert_eq!(fi, o.final_infected());
        prop_assert_eq!(fp, o.final_protected());
    }

    #[test]
    fn sis_is_deterministic_for_fixed_rng_seed((g, seeds) in arb_instance(), seed in 0u64..64) {
        let model = CompetitiveSisModel::new(0.25, 0.35, 0.15, 12).unwrap();
        let mut r1 = SmallRng::seed_from_u64(seed);
        let mut r2 = SmallRng::seed_from_u64(seed);
        let a = model.run(&g, &seeds, &mut r1);
        let b = model.run(&g, &seeds, &mut r2);
        prop_assert_eq!(a.final_states, b.final_states);
        prop_assert_eq!(a.trace, b.trace);
    }
}

/// Strategy: a tiny graph (≤ 8 nodes) plus 1–2 rumor originators —
/// small enough to brute-force every protector subset.
fn arb_tiny_instance() -> impl Strategy<Value = (DiGraph, Vec<NodeId>)> {
    (2usize..9).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n), 0..(3 * n)),
            proptest::collection::btree_set(0..n, 1..3),
        )
            .prop_map(move |(pairs, rumors)| {
                let mut g = DiGraph::with_nodes(n);
                for (u, v) in pairs {
                    if u != v {
                        let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
                    }
                }
                let rumors: Vec<NodeId> = rumors.into_iter().map(NodeId::new).collect();
                (g, rumors)
            })
    })
}

/// The §V-A timestamp rule's label-free earliest-arrival time from
/// `sources` to `target`: every arrived node forwards to the single
/// out-neighbor `realization.choice(node, hop, deg)` picks at each
/// hop. This is the independent reference the RR sketches must invert.
fn forward_rule_arrival(
    csr: &CsrGraph,
    sources: &[NodeId],
    target: NodeId,
    realization: &OpoaoRealization,
    max_hops: u32,
) -> Option<u32> {
    let n = csr.node_count();
    let mut arrival = vec![u32::MAX; n];
    for &s in sources {
        arrival[s.index()] = 0;
    }
    if sources.is_empty() {
        return None;
    }
    if arrival[target.index()] == 0 {
        return Some(0);
    }
    for hop in 1..=max_hops {
        let mut claims = Vec::new();
        for (v, &t) in arrival.iter().enumerate() {
            let u = NodeId::new(v);
            let deg = csr.out_degree(u);
            if t < hop && deg > 0 {
                claims.push(csr.out_neighbors(u)[realization.choice(u, hop, deg)]);
            }
        }
        for w in claims {
            if arrival[w.index()] == u32::MAX {
                arrival[w.index()] = hop;
            }
        }
        if arrival[target.index()] != u32::MAX {
            return Some(hop);
        }
    }
    None
}

/// Hop distance from every node to `target` along graph edges
/// (backward BFS over in-neighbors), ignoring the realization.
fn hops_to_target(g: &DiGraph, target: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    dist[target.index()] = Some(0);
    let mut frontier = vec![target];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &w in &frontier {
            for &u in g.in_neighbors(w) {
                if dist[u.index()].is_none() {
                    dist[u.index()] = Some(d);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

// RR-sketch inversion. On graphs small enough to enumerate every
// protector subset, membership in the RR set must agree *exactly*
// with the forward timestamp rule: a set A saves the target on
// realization φ iff A ∩ RR(target, φ) ≠ ∅ (or the rumor never reaches
// the target at all, in which case the sketch is counted
// always-saved and never stored).
proptest! {
    #[test]
    fn rr_sketch_coverage_matches_exhaustive_forward_rule(
        (g, rumors) in arb_tiny_instance(),
        rseed in 0u64..64,
    ) {
        let csr = CsrGraph::from(&g);
        let n = g.node_count();
        let realization = OpoaoRealization::new(rseed);
        let max_hops = 31;
        let mut scratch = RrScratch::new();
        for t in 0..n {
            let target = NodeId::new(t);
            let mut batch = SketchBatch::new();
            let stored = rr_sketch_into(
                &csr, &rumors, target, &realization, max_hops, &mut scratch, &mut batch,
            );
            let t_rumor = forward_rule_arrival(&csr, &rumors, target, &realization, max_hops);
            prop_assert_eq!(stored, t_rumor.is_some(), "storage vs rumor reachability");
            if !stored {
                prop_assert_eq!(batch.always_saved(), 1);
                prop_assert_eq!(batch.set_count(), 0);
                continue;
            }
            let tau = batch.arrival(0);
            prop_assert_eq!(Some(tau), t_rumor);
            let members = batch.members(0);
            // Exhaustive check over every protector subset of the
            // non-rumor nodes: 2^(n - |rumors|) ≤ 128 cases.
            let free: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|v| !rumors.contains(v))
                .collect();
            for mask in 0u32..(1 << free.len()) {
                let set: Vec<NodeId> = free
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                let covered = set.iter().any(|v| members.contains(v));
                let t_set = forward_rule_arrival(&csr, &set, target, &realization, max_hops);
                let saved = t_set.is_some_and(|ts| ts <= tau);
                prop_assert_eq!(
                    covered, saved,
                    "subset {:?} target {} tau {}", set, target, tau
                );
            }
        }
    }

    #[test]
    fn rr_sketch_members_never_escape_the_backward_reachable_set(
        (g, rumors) in arb_tiny_instance(),
        rseed in 0u64..64,
    ) {
        // Every RR member must sit on some ≤ τ-hop path into the
        // target — the sketch walk may never wander outside the
        // target's backward-reachable ball.
        let csr = CsrGraph::from(&g);
        let realization = OpoaoRealization::new(rseed);
        let mut scratch = RrScratch::new();
        let mut batch = SketchBatch::new();
        for t in 0..g.node_count() {
            let target = NodeId::new(t);
            batch.clear();
            if !rr_sketch_into(&csr, &rumors, target, &realization, 31, &mut scratch, &mut batch) {
                continue;
            }
            let tau = batch.arrival(0);
            let dist = hops_to_target(&g, target);
            let members = batch.members(0);
            // The target itself arrives at time 0, so it is always a member.
            prop_assert!(members.contains(&target));
            for &u in members {
                let d = dist[u.index()];
                prop_assert!(
                    d.is_some_and(|d| d <= tau),
                    "member {} is {:?} hops from target {} but tau is {}",
                    u, d, target, tau
                );
            }
            // No duplicates: each member is stamped exactly once.
            let mut sorted: Vec<u32> = members.iter().map(|v| v.raw()).collect();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(before, sorted.len());
        }
    }
}

// run_into ≡ run equivalence and workspace hygiene. `run` delegates
// to `run_into` with a *fresh* workspace; comparing it against a
// workspace reused across arbitrary earlier runs proves the epoch
// reset leaks nothing between runs.
proptest! {
    #[test]
    fn run_into_with_reused_workspace_matches_fresh_run_for_every_model(
        (g, seeds) in arb_instance(),
        seed in 0u64..1024,
    ) {
        let csr = CsrGraph::from(&g);
        let mut ws = SimWorkspace::new();
        // Dirty the workspace with an unrelated run first.
        let mut dirty_rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        OpoaoModel::new(5).run_into(&csr, &seeds, &mut ws, &mut dirty_rng);

        let opoao = OpoaoModel::default();
        let doam = DoamModel::default();
        let ic = CompetitiveIcModel::new(0.4).unwrap();
        let lt = CompetitiveLtModel::default();
        macro_rules! check {
            ($model:expr, $name:literal) => {{
                let mut a = SmallRng::seed_from_u64(seed);
                let mut b = SmallRng::seed_from_u64(seed);
                $model.run_into(&csr, &seeds, &mut ws, &mut a);
                let fresh = $model.run(&g, &seeds, &mut b);
                prop_assert_eq!(ws.to_outcome(), fresh, $name);
            }};
        }
        check!(opoao, "opoao");
        check!(doam, "doam");
        check!(ic, "competitive-ic");
        check!(lt, "competitive-lt");

        let sis = CompetitiveSisModel::new(0.3, 0.2, 0.1, 12).unwrap();
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        let fast = sis.run_into(&csr, &seeds, &mut ws, &mut a);
        prop_assert_eq!(fast, sis.run(&g, &seeds, &mut b), "sis");
    }

    #[test]
    fn workspace_reuse_never_leaks_state_between_runs(
        (g, seeds) in arb_instance(),
        seed in 0u64..1024,
    ) {
        // Run a sequence of different (model, seed) pairs through ONE
        // workspace and check each against an independent fresh run.
        // Any stale status, claim, counter, or trace surviving a
        // `begin()` would surface as a mismatch.
        let csr = CsrGraph::from(&g);
        let mut ws = SimWorkspace::new();
        for i in 0..6u64 {
            let s = seed.wrapping_mul(31).wrapping_add(i);
            let mut a = SmallRng::seed_from_u64(s);
            let mut b = SmallRng::seed_from_u64(s);
            if i % 2 == 0 {
                OpoaoModel::new(8).run_into(&csr, &seeds, &mut ws, &mut a);
                let fresh = OpoaoModel::new(8).run(&g, &seeds, &mut b);
                prop_assert_eq!(ws.to_outcome(), fresh);
            } else {
                CompetitiveIcModel::new(0.5).unwrap().run_into(&csr, &seeds, &mut ws, &mut a);
                let fresh = CompetitiveIcModel::new(0.5).unwrap().run(&g, &seeds, &mut b);
                prop_assert_eq!(ws.to_outcome(), fresh);
            }
        }
    }
}
