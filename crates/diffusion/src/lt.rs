//! Competitive Linear Threshold — an extension model.
//!
//! Modeled after the competitive LT (CLT) model of He et al. [16]
//! discussed in the paper's related work: each node `v` draws a
//! threshold `θ_v ~ U(0, 1]`; every in-edge carries weight
//! `1/d_in(v)`. A node activates when the accumulated weight of its
//! active in-neighbors reaches `θ_v`. Following the blocking-cascade
//! priority of [16] (and the paper's property 2), the node becomes
//! *protected* when the protector weight alone reaches the threshold,
//! and infected otherwise.

use rand::Rng;

use lcrb_graph::{DiGraph, NodeId};

use crate::outcome::StateTracker;
use crate::{DiffusionOutcome, SeedSets, TwoCascadeModel};

/// The competitive LT model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompetitiveLtModel {
    /// Maximum number of diffusion hops.
    pub max_hops: u32,
}

impl Default for CompetitiveLtModel {
    fn default() -> Self {
        CompetitiveLtModel { max_hops: u32::MAX }
    }
}

impl CompetitiveLtModel {
    /// Creates a model with a hop budget.
    #[must_use]
    pub fn new(max_hops: u32) -> Self {
        CompetitiveLtModel { max_hops }
    }
}

impl TwoCascadeModel for CompetitiveLtModel {
    fn run<R: Rng + ?Sized>(
        &self,
        graph: &DiGraph,
        seeds: &SeedSets,
        rng: &mut R,
    ) -> DiffusionOutcome {
        let n = graph.node_count();
        let mut tracker = StateTracker::from_seeds(n, seeds);
        // θ_v ∈ (0, 1]: a zero threshold would activate nodes with no
        // active in-neighbors.
        let thresholds: Vec<f64> = (0..n).map(|_| 1.0 - rng.gen::<f64>()).collect();
        let mut weight_p = vec![0.0f64; n];
        let mut weight_r = vec![0.0f64; n];
        // Nodes whose accumulated weight changed and are still
        // inactive (deduplicated via `dirty` flags).
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut dirty = vec![false; n];

        let push_influence = |u: NodeId,
                                  protected: bool,
                                  weight_p: &mut Vec<f64>,
                                  weight_r: &mut Vec<f64>,
                                  candidates: &mut Vec<NodeId>,
                                  dirty: &mut Vec<bool>,
                                  tracker: &StateTracker| {
            for &w in graph.out_neighbors(u) {
                if !tracker.is_inactive(w) {
                    continue;
                }
                let share = 1.0 / graph.in_degree(w) as f64;
                if protected {
                    weight_p[w.index()] += share;
                } else {
                    weight_r[w.index()] += share;
                }
                if !dirty[w.index()] {
                    dirty[w.index()] = true;
                    candidates.push(w);
                }
            }
        };

        for &p in seeds.protectors() {
            push_influence(
                p,
                true,
                &mut weight_p,
                &mut weight_r,
                &mut candidates,
                &mut dirty,
                &tracker,
            );
        }
        for &r in seeds.rumors() {
            push_influence(
                r,
                false,
                &mut weight_p,
                &mut weight_r,
                &mut candidates,
                &mut dirty,
                &tracker,
            );
        }

        let mut quiescent = false;
        for hop in 1..=self.max_hops {
            if candidates.is_empty() {
                quiescent = true;
                break;
            }
            let mut new_protected = Vec::new();
            let mut new_infected = Vec::new();
            let mut still_waiting = Vec::new();
            for &v in &candidates {
                dirty[v.index()] = false;
                if !tracker.is_inactive(v) {
                    continue;
                }
                let (wp, wr) = (weight_p[v.index()], weight_r[v.index()]);
                if wp >= thresholds[v.index()] {
                    new_protected.push(v);
                } else if wp + wr >= thresholds[v.index()] {
                    new_infected.push(v);
                } else {
                    still_waiting.push(v);
                }
            }
            if new_protected.is_empty() && new_infected.is_empty() {
                tracker.activate_hop(hop, &[], &[]);
                quiescent = true;
                break;
            }
            tracker.activate_hop(hop, &new_protected, &new_infected);
            candidates.clear();
            for &v in &still_waiting {
                dirty[v.index()] = true;
                candidates.push(v);
            }
            for &v in &new_protected {
                push_influence(
                    v,
                    true,
                    &mut weight_p,
                    &mut weight_r,
                    &mut candidates,
                    &mut dirty,
                    &tracker,
                );
            }
            for &v in &new_infected {
                push_influence(
                    v,
                    false,
                    &mut weight_p,
                    &mut weight_r,
                    &mut candidates,
                    &mut dirty,
                    &tracker,
                );
            }
        }
        if candidates.is_empty() {
            quiescent = true;
        }
        tracker.finish(quiescent)
    }

    fn name(&self) -> &'static str {
        "competitive-lt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Status;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn full_in_weight_always_activates() {
        // On a path every node has in-degree 1: once the predecessor
        // is active, weight = 1 >= θ for any θ in (0, 1].
        let g = generators::path_graph(5);
        let mut rng = SmallRng::seed_from_u64(0);
        let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 5);
        assert_eq!(o.activation_hop(NodeId::new(4)), Some(4));
        assert!(o.is_quiescent());
    }

    #[test]
    fn protector_weight_alone_takes_priority() {
        // Node 2 has in-degree 2 (from rumor 0 and protector 1); with
        // both active its total weight is 1 so it activates, and it
        // is protected iff w_p = 0.5 >= θ.
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let (mut protected, mut infected) = (0, 0);
        for s in 0..200 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[0], &[1]), &mut rng);
            match o.status(NodeId::new(2)) {
                Status::Protected => protected += 1,
                Status::Infected => infected += 1,
                Status::Inactive => panic!("node 2 must activate"),
            }
        }
        // θ <= 0.5 about half the time.
        assert!((60..140).contains(&protected), "protected = {protected}");
        assert!(protected + infected == 200);
    }

    #[test]
    fn high_in_degree_nodes_resist_single_neighbor() {
        // Star leaves point at the hub: hub in-degree = 5, one active
        // leaf contributes weight 0.2, so the hub activates only when
        // θ <= 0.2 (about 20% of runs).
        let mut g = DiGraph::with_nodes(6);
        for leaf in 1..6 {
            g.add_edge(NodeId::new(leaf), NodeId::new(0)).unwrap();
        }
        let mut hits = 0;
        for s in 0..500 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[1], &[]), &mut rng);
            if o.status(NodeId::new(0)).is_infected() {
                hits += 1;
            }
        }
        assert!((50..160).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn no_seeds_is_quiescent() {
        let g = generators::complete_graph(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[], &[]), &mut rng);
        assert_eq!(o.infected_count(), 0);
        assert!(o.is_quiescent());
    }

    #[test]
    fn hop_budget_truncates() {
        let g = generators::path_graph(10);
        let mut rng = SmallRng::seed_from_u64(2);
        let o = CompetitiveLtModel::new(3).run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 4);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn model_name() {
        assert_eq!(CompetitiveLtModel::default().name(), "competitive-lt");
    }
}
