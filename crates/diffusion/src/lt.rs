//! Competitive Linear Threshold — an extension model.
//!
//! Modeled after the competitive LT (CLT) model of He et al. [16]
//! discussed in the paper's related work: each node `v` draws a
//! threshold `θ_v ~ U(0, 1]`; every in-edge carries weight
//! `1/d_in(v)`. A node activates when the accumulated weight of its
//! active in-neighbors reaches `θ_v`. Following the blocking-cascade
//! priority of [16] (and the paper's property 2), the node becomes
//! *protected* when the protector weight alone reaches the threshold,
//! and infected otherwise.

use rand::Rng;

use lcrb_graph::{CsrGraph, NodeId};

use crate::{SeedSets, SimWorkspace, TwoCascadeModel};

/// The competitive LT model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompetitiveLtModel {
    /// Maximum number of diffusion hops.
    pub max_hops: u32,
}

impl Default for CompetitiveLtModel {
    fn default() -> Self {
        CompetitiveLtModel { max_hops: u32::MAX }
    }
}

impl CompetitiveLtModel {
    /// Creates a model with a hop budget.
    #[must_use]
    pub fn new(max_hops: u32) -> Self {
        CompetitiveLtModel { max_hops }
    }
}

/// Adds `u`'s influence to its inactive out-neighbors, registering
/// newly touched nodes in the candidate list (`ws.frontier`,
/// deduplicated via the `ws.flags` dirty bits).
fn push_influence(graph: &CsrGraph, ws: &mut SimWorkspace, u: NodeId, protected: bool) {
    for &w in graph.out_neighbors(u) {
        if !ws.is_inactive(w) {
            continue;
        }
        let share = 1.0 / graph.in_degree(w) as f64;
        if protected {
            ws.weight_p[w.index()] += share;
        } else {
            ws.weight_r[w.index()] += share;
        }
        if !ws.flags[w.index()] {
            ws.flags[w.index()] = true;
            ws.frontier.push(w);
        }
    }
}

impl TwoCascadeModel for CompetitiveLtModel {
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        rng: &mut R,
    ) {
        let n = graph.node_count();
        ws.begin(n, seeds);
        // θ_v ∈ (0, 1]: a zero threshold would activate nodes with no
        // active in-neighbors. Drawn in node order so the RNG stream
        // is independent of seed placement.
        ws.thresholds.clear();
        ws.thresholds.extend((0..n).map(|_| 1.0 - rng.gen::<f64>()));
        ws.weight_p.clear();
        ws.weight_p.resize(n, 0.0);
        ws.weight_r.clear();
        ws.weight_r.resize(n, 0.0);
        ws.flags.clear();
        ws.flags.resize(n, false);
        // `frontier` holds the candidates: inactive nodes whose
        // accumulated weight changed.
        ws.frontier.clear();

        for i in 0..seeds.protectors().len() {
            let p = seeds.protectors()[i];
            push_influence(graph, ws, p, true);
        }
        for i in 0..seeds.rumors().len() {
            let r = seeds.rumors()[i];
            push_influence(graph, ws, r, false);
        }

        let mut quiescent = false;
        for hop in 1..=self.max_hops {
            if ws.frontier.is_empty() {
                quiescent = true;
                break;
            }
            ws.new_protected.clear();
            ws.new_infected.clear();
            // `next_frontier` collects the still-waiting candidates.
            ws.next_frontier.clear();
            for i in 0..ws.frontier.len() {
                let v = ws.frontier[i];
                ws.flags[v.index()] = false;
                if !ws.is_inactive(v) {
                    continue;
                }
                let (wp, wr) = (ws.weight_p[v.index()], ws.weight_r[v.index()]);
                if wp >= ws.thresholds[v.index()] {
                    ws.new_protected.push(v);
                } else if wp + wr >= ws.thresholds[v.index()] {
                    ws.new_infected.push(v);
                } else {
                    ws.next_frontier.push(v);
                }
            }
            if ws.new_protected.is_empty() && ws.new_infected.is_empty() {
                ws.commit_hop(hop);
                quiescent = true;
                break;
            }
            ws.commit_hop(hop);
            ws.frontier.clear();
            for i in 0..ws.next_frontier.len() {
                let v = ws.next_frontier[i];
                ws.flags[v.index()] = true;
                ws.frontier.push(v);
            }
            for i in 0..ws.new_protected.len() {
                let v = ws.new_protected[i];
                push_influence(graph, ws, v, true);
            }
            for i in 0..ws.new_infected.len() {
                let v = ws.new_infected[i];
                push_influence(graph, ws, v, false);
            }
        }
        if ws.frontier.is_empty() {
            quiescent = true;
        }
        ws.set_quiescent(quiescent);
    }

    fn name(&self) -> &'static str {
        "competitive-lt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Status;
    use lcrb_graph::{generators, DiGraph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn full_in_weight_always_activates() {
        // On a path every node has in-degree 1: once the predecessor
        // is active, weight = 1 >= θ for any θ in (0, 1].
        let g = generators::path_graph(5);
        let mut rng = SmallRng::seed_from_u64(0);
        let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 5);
        assert_eq!(o.activation_hop(NodeId::new(4)), Some(4));
        assert!(o.is_quiescent());
    }

    #[test]
    fn protector_weight_alone_takes_priority() {
        // Node 2 has in-degree 2 (from rumor 0 and protector 1); with
        // both active its total weight is 1 so it activates, and it
        // is protected iff w_p = 0.5 >= θ.
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let (mut protected, mut infected) = (0, 0);
        for s in 0..200 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[0], &[1]), &mut rng);
            match o.status(NodeId::new(2)) {
                Status::Protected => protected += 1,
                Status::Infected => infected += 1,
                Status::Inactive => panic!("node 2 must activate"),
            }
        }
        // θ <= 0.5 about half the time.
        assert!((60..140).contains(&protected), "protected = {protected}");
        assert!(protected + infected == 200);
    }

    #[test]
    fn high_in_degree_nodes_resist_single_neighbor() {
        // Star leaves point at the hub: hub in-degree = 5, one active
        // leaf contributes weight 0.2, so the hub activates only when
        // θ <= 0.2 (about 20% of runs).
        let mut g = DiGraph::with_nodes(6);
        for leaf in 1..6 {
            g.add_edge(NodeId::new(leaf), NodeId::new(0)).unwrap();
        }
        let mut hits = 0;
        for s in 0..500 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[1], &[]), &mut rng);
            if o.status(NodeId::new(0)).is_infected() {
                hits += 1;
            }
        }
        assert!((50..160).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn no_seeds_is_quiescent() {
        let g = generators::complete_graph(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let o = CompetitiveLtModel::default().run(&g, &seeds(&g, &[], &[]), &mut rng);
        assert_eq!(o.infected_count(), 0);
        assert!(o.is_quiescent());
    }

    #[test]
    fn hop_budget_truncates() {
        let g = generators::path_graph(10);
        let mut rng = SmallRng::seed_from_u64(2);
        let o = CompetitiveLtModel::new(3).run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 4);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let mut r = SmallRng::seed_from_u64(7);
        let g = generators::gnm_directed(40, 160, &mut r).unwrap();
        let csr = CsrGraph::from(&g);
        let s = seeds(&g, &[0, 1], &[2]);
        let model = CompetitiveLtModel::default();
        let mut ws = SimWorkspace::new();
        for seed in 0..6u64 {
            let mut a = SmallRng::seed_from_u64(seed);
            let mut b = SmallRng::seed_from_u64(seed);
            model.run_into(&csr, &s, &mut ws, &mut a);
            assert_eq!(ws.to_outcome(), model.run(&g, &s, &mut b), "seed {seed}");
        }
    }

    #[test]
    fn model_name() {
        assert_eq!(CompetitiveLtModel::default().name(), "competitive-lt");
    }
}
