//! Parallel Monte-Carlo driver for stochastic diffusion models.
//!
//! The paper's Figures 4–6 report "the average results obtained by
//! repeated Monte Carlo simulation"; this module is that averaging
//! loop, parallelized across std scoped threads and reproducible from
//! a single base seed.

// xtask-allow-file: index -- accumulator arrays are node_count-sized at construction and merged series share one length
use rand::rngs::SmallRng;
use rand::SeedableRng;

use lcrb_graph::{CsrGraph, DiGraph};

use crate::budget::{StopReason, WorkMeter};
use crate::{HopRecord, SeedSets, SimWorkspace, TwoCascadeModel};

/// Configuration for [`monte_carlo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of independent simulation runs.
    pub runs: usize,
    /// Base seed; run `i` uses a seed derived from `(base_seed, i)`,
    /// so results are independent of the thread count.
    pub base_seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            runs: 100,
            base_seed: 0,
            threads: 0,
        }
    }
}

impl MonteCarloConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Per-hop averages over a batch of Monte-Carlo runs.
///
/// Hop series from runs of different lengths are aligned by carrying
/// each run's final value forward (a quiescent diffusion keeps its
/// totals), so `mean_infected_by_hop[h]` is the expected number of
/// infected nodes after `h` hops — exactly the series plotted in the
/// paper's figures.
#[derive(Clone, Debug, PartialEq)]
pub struct AveragedOutcome {
    /// Number of runs averaged.
    pub runs: usize,
    /// Expected cumulative infected count per hop (index = hop).
    pub mean_infected_by_hop: Vec<f64>,
    /// Expected cumulative protected count per hop (index = hop).
    pub mean_protected_by_hop: Vec<f64>,
    /// Sample standard deviation of the final infected count across
    /// runs (0 for fewer than 2 runs) — the error bar on
    /// [`AveragedOutcome::mean_final_infected`].
    pub std_final_infected: f64,
}

impl AveragedOutcome {
    /// Expected infected count at the end of diffusion.
    #[must_use]
    pub fn mean_final_infected(&self) -> f64 {
        self.mean_infected_by_hop.last().copied().unwrap_or(0.0)
    }

    /// Expected protected count at the end of diffusion.
    #[must_use]
    pub fn mean_final_protected(&self) -> f64 {
        self.mean_protected_by_hop.last().copied().unwrap_or(0.0)
    }

    /// Expected infected count after `hop` hops (final value carried
    /// forward).
    #[must_use]
    pub fn mean_infected_at_hop(&self, hop: u32) -> f64 {
        let idx = (hop as usize).min(self.mean_infected_by_hop.len().saturating_sub(1));
        self.mean_infected_by_hop.get(idx).copied().unwrap_or(0.0)
    }
}

#[derive(Default)]
struct SeriesAccumulator {
    infected: Vec<f64>,
    protected: Vec<f64>,
    final_sum: f64,
    final_sumsq: f64,
    runs: usize,
}

impl SeriesAccumulator {
    /// Accumulates one run directly from its hop trace — the
    /// workspace path, which never materializes a `DiffusionOutcome`.
    fn add_trace(&mut self, trace: &[HopRecord]) {
        let len = trace.len();
        if len > self.infected.len() {
            // Newly revealed hops start from the sums accumulated so
            // far: previous runs carry their final value forward.
            let pad_i = self.infected.last().copied().unwrap_or(0.0);
            let pad_p = self.protected.last().copied().unwrap_or(0.0);
            // All prior runs were flat after their last hop, so the
            // carried-forward sum is exactly the previous tail.
            let grow = len - self.infected.len();
            self.infected.extend(std::iter::repeat_n(pad_i, grow));
            self.protected.extend(std::iter::repeat_n(pad_p, grow));
        }
        for (h, rec) in trace.iter().enumerate() {
            self.infected[h] += rec.total_infected as f64;
            self.protected[h] += rec.total_protected as f64;
        }
        // Carry this run's final value into any longer tail.
        let (fi, fp) = (
            trace.last().map_or(0, |r| r.total_infected) as f64,
            trace.last().map_or(0, |r| r.total_protected) as f64,
        );
        for h in len..self.infected.len() {
            self.infected[h] += fi;
            self.protected[h] += fp;
        }
        self.final_sum += fi;
        self.final_sumsq += fi * fi;
        self.runs += 1;
    }

    fn merge(mut self, other: SeriesAccumulator) -> SeriesAccumulator {
        if other.infected.len() > self.infected.len() {
            return other.merge(self);
        }
        // `other` is the shorter series: pad it against ours.
        let (oi_last, op_last) = (
            other.infected.last().copied().unwrap_or(0.0),
            other.protected.last().copied().unwrap_or(0.0),
        );
        for h in 0..self.infected.len() {
            self.infected[h] += other.infected.get(h).copied().unwrap_or(oi_last);
            self.protected[h] += other.protected.get(h).copied().unwrap_or(op_last);
        }
        self.final_sum += other.final_sum;
        self.final_sumsq += other.final_sumsq;
        self.runs += other.runs;
        self
    }

    fn into_average(self) -> AveragedOutcome {
        let runs = self.runs.max(1) as f64;
        let std_final_infected = if self.runs >= 2 {
            let mean = self.final_sum / runs;
            ((self.final_sumsq / runs - mean * mean).max(0.0) * runs / (runs - 1.0)).sqrt()
        } else {
            0.0
        };
        AveragedOutcome {
            runs: self.runs,
            mean_infected_by_hop: self.infected.iter().map(|s| s / runs).collect(),
            mean_protected_by_hop: self.protected.iter().map(|s| s / runs).collect(),
            std_final_infected,
        }
    }
}

/// Derives the per-run RNG seed so results do not depend on thread
/// scheduling.
#[inline]
fn run_seed(base: u64, run: usize) -> u64 {
    (base ^ (run as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x243F_6A88_85A3_08D3)
}

/// Runs `config.runs` independent simulations of `model` and averages
/// the hop series.
///
/// Deterministic for a fixed `config` regardless of `threads`.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::{monte_carlo, MonteCarloConfig, OpoaoModel, SeedSets};
/// use lcrb_graph::generators::path_graph;
/// use lcrb_graph::NodeId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = path_graph(4);
/// let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(0)])?;
/// let avg = monte_carlo(&OpoaoModel::default(), &g, &seeds, &MonteCarloConfig {
///     runs: 10,
///     ..MonteCarloConfig::default()
/// });
/// assert_eq!(avg.mean_final_infected(), 4.0); // path diffusion is forced
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn monte_carlo<M>(
    model: &M,
    graph: &DiGraph,
    seeds: &SeedSets,
    config: &MonteCarloConfig,
) -> AveragedOutcome
where
    M: TwoCascadeModel + Sync,
{
    let csr = CsrGraph::from(graph);
    monte_carlo_csr(model, &csr, seeds, config)
}

/// [`monte_carlo`] against a pre-built snapshot — the hot path.
///
/// Each worker thread owns one long-lived [`SimWorkspace`] reused for
/// all of its runs and accumulates hop series straight from the
/// workspace trace, so the steady-state loop performs no per-run heap
/// allocation. Results are identical to [`monte_carlo`] on the source
/// graph, and deterministic for a fixed `config` regardless of
/// `threads`.
#[must_use]
pub fn monte_carlo_csr<M>(
    model: &M,
    graph: &CsrGraph,
    seeds: &SeedSets,
    config: &MonteCarloConfig,
) -> AveragedOutcome
where
    M: TwoCascadeModel + Sync,
{
    let runs = config.runs;
    if runs == 0 {
        return AveragedOutcome {
            runs: 0,
            mean_infected_by_hop: Vec::new(),
            mean_protected_by_hop: Vec::new(),
            std_final_infected: 0.0,
        };
    }
    let threads = config.effective_threads().min(runs).max(1);
    if threads == 1 {
        let mut acc = SeriesAccumulator::default();
        let mut ws = SimWorkspace::with_capacity(graph.node_count());
        for run in 0..runs {
            let mut rng = SmallRng::seed_from_u64(run_seed(config.base_seed, run));
            model.run_into(graph, seeds, &mut ws, &mut rng);
            acc.add_trace(ws.trace());
        }
        return acc.into_average();
    }
    let accumulators = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let base_seed = config.base_seed;
            handles.push(scope.spawn(move || {
                let mut acc = SeriesAccumulator::default();
                let mut ws = SimWorkspace::with_capacity(graph.node_count());
                let mut run = t;
                while run < runs {
                    let mut rng = SmallRng::seed_from_u64(run_seed(base_seed, run));
                    model.run_into(graph, seeds, &mut ws, &mut rng);
                    acc.add_trace(ws.trace());
                    run += threads;
                }
                acc
            }));
        }
        handles
            .into_iter()
            // xtask-allow: panic -- re-raising a worker panic on the coordinating thread is the intended behavior
            .map(|h| h.join().expect("monte carlo worker panicked"))
            .collect::<Vec<_>>()
    });

    accumulators
        .into_iter()
        .reduce(SeriesAccumulator::merge)
        // xtask-allow: panic -- thread count is clamped to at least 1, so one accumulator always exists
        .expect("at least one worker")
        .into_average()
}

/// [`monte_carlo_csr`] under a [`WorkMeter`]: the batch's simulation
/// cost is charged up front (all-or-nothing against
/// [`crate::RunBudget::max_sims`]) and cancellation/deadline polls run
/// per simulation.
///
/// The checkpoint discipline keeps the work-budget path
/// deterministic: either the whole batch fits under the cap and the
/// result is bitwise-identical to [`monte_carlo_csr`] (for any thread
/// count), or the kernel stops *before* running it — a truncated
/// average is never produced. Cancellation and deadlines observed
/// mid-batch also discard the batch by returning the stop instead of
/// a partial mean.
///
/// # Errors
///
/// The [`StopReason`] that fired: a work-cap rejection up front, or a
/// cancellation/deadline observed during the batch.
pub fn monte_carlo_csr_budgeted<M>(
    model: &M,
    graph: &CsrGraph,
    seeds: &SeedSets,
    config: &MonteCarloConfig,
    meter: &mut WorkMeter,
) -> Result<AveragedOutcome, StopReason>
where
    M: TwoCascadeModel + Sync,
{
    meter.charge_sims(config.runs as u64)?;
    if !meter.polls_needed() || config.runs == 0 {
        return Ok(monte_carlo_csr(model, graph, seeds, config));
    }
    let runs = config.runs;
    let threads = config.effective_threads().min(runs).max(1);
    if threads == 1 {
        let mut acc = SeriesAccumulator::default();
        let mut ws = SimWorkspace::with_capacity(graph.node_count());
        for run in 0..runs {
            meter.poll()?;
            let mut rng = SmallRng::seed_from_u64(run_seed(config.base_seed, run));
            model.run_into(graph, seeds, &mut ws, &mut rng);
            acc.add_trace(ws.trace());
        }
        return Ok(acc.into_average());
    }
    let shared: &WorkMeter = meter;
    let accumulators = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let base_seed = config.base_seed;
            handles.push(scope.spawn(move || {
                let mut acc = SeriesAccumulator::default();
                let mut ws = SimWorkspace::with_capacity(graph.node_count());
                let mut run = t;
                while run < runs {
                    if shared.poll().is_err() {
                        // The stop is re-observed (and reported) by
                        // the coordinator's poll below; both stop
                        // conditions are monotone.
                        break;
                    }
                    let mut rng = SmallRng::seed_from_u64(run_seed(base_seed, run));
                    model.run_into(graph, seeds, &mut ws, &mut rng);
                    acc.add_trace(ws.trace());
                    run += threads;
                }
                acc
            }));
        }
        handles
            .into_iter()
            // xtask-allow: panic -- re-raising a worker panic on the coordinating thread is the intended behavior
            .map(|h| h.join().expect("monte carlo worker panicked"))
            .collect::<Vec<_>>()
    });
    meter.poll()?;
    Ok(accumulators
        .into_iter()
        .reduce(SeriesAccumulator::merge)
        // xtask-allow: panic -- thread count is clamped to at least 1, so one accumulator always exists
        .expect("at least one worker")
        .into_average())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{CancelToken, RunBudget};
    use crate::{DoamModel, OpoaoModel};
    use lcrb_graph::generators;
    use lcrb_graph::NodeId;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_model_average_equals_single_run() {
        let g = generators::path_graph(6);
        let s = seeds(&g, &[0], &[3]);
        let avg = monte_carlo(
            &DoamModel::default(),
            &g,
            &s,
            &MonteCarloConfig {
                runs: 7,
                ..Default::default()
            },
        );
        let single = DoamModel::default().run_deterministic(&g, &s);
        assert_eq!(avg.runs, 7);
        assert_eq!(avg.mean_final_infected(), single.infected_count() as f64);
        assert_eq!(avg.mean_final_protected(), single.protected_count() as f64);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnm_directed(60, 240, &mut rng).unwrap();
        let s = seeds(&g, &[0, 1], &[2]);
        let model = OpoaoModel::new(12);
        let base = MonteCarloConfig {
            runs: 24,
            base_seed: 9,
            threads: 1,
        };
        let a = monte_carlo(&model, &g, &s, &base);
        let b = monte_carlo(&model, &g, &s, &MonteCarloConfig { threads: 4, ..base });
        assert_eq!(a.runs, b.runs);
        for (x, y) in a.mean_infected_by_hop.iter().zip(&b.mean_infected_by_hop) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn series_is_monotone_nondecreasing() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::gnm_directed(50, 200, &mut rng).unwrap();
        let s = seeds(&g, &[0], &[1]);
        let avg = monte_carlo(
            &OpoaoModel::default(),
            &g,
            &s,
            &MonteCarloConfig {
                runs: 20,
                base_seed: 3,
                threads: 2,
            },
        );
        for w in avg.mean_infected_by_hop.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in avg.mean_protected_by_hop.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(avg.mean_infected_at_hop(0) >= 1.0 - 1e-12);
        assert_eq!(avg.mean_infected_at_hop(10_000), avg.mean_final_infected());
    }

    #[test]
    fn std_of_deterministic_model_is_zero() {
        let g = generators::path_graph(5);
        let s = seeds(&g, &[0], &[]);
        let avg = monte_carlo(
            &DoamModel::default(),
            &g,
            &s,
            &MonteCarloConfig {
                runs: 6,
                ..Default::default()
            },
        );
        assert_eq!(avg.std_final_infected, 0.0);
    }

    #[test]
    fn std_reflects_run_variability_and_is_thread_invariant() {
        // 0 -> {1, 2}; 2 -> 3: some OPOAO runs (hop budget 1) infect
        // node 1, others node 2 — final counts genuinely vary.
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let s = seeds(&g, &[0], &[]);
        let model = OpoaoModel::new(2);
        let cfg = MonteCarloConfig {
            runs: 64,
            base_seed: 5,
            threads: 1,
        };
        let a = monte_carlo(&model, &g, &s, &cfg);
        assert!(a.std_final_infected > 0.0);
        let b = monte_carlo(&model, &g, &s, &MonteCarloConfig { threads: 4, ..cfg });
        assert!((a.std_final_infected - b.std_final_infected).abs() < 1e-9);
    }

    #[test]
    fn csr_path_matches_digraph_path() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::gnm_directed(60, 240, &mut rng).unwrap();
        let csr = lcrb_graph::CsrGraph::from(&g);
        let s = seeds(&g, &[0, 1], &[2]);
        let cfg = MonteCarloConfig {
            runs: 32,
            base_seed: 4,
            threads: 2,
        };
        let a = monte_carlo(&OpoaoModel::new(12), &g, &s, &cfg);
        let b = monte_carlo_csr(&OpoaoModel::new(12), &csr, &s, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_runs() {
        let g = generators::path_graph(3);
        let s = seeds(&g, &[0], &[]);
        let avg = monte_carlo(
            &OpoaoModel::default(),
            &g,
            &s,
            &MonteCarloConfig {
                runs: 0,
                ..Default::default()
            },
        );
        assert_eq!(avg.runs, 0);
        assert_eq!(avg.mean_final_infected(), 0.0);
    }

    #[test]
    fn variable_length_traces_align_correctly() {
        // A graph where some runs die fast (rumor picks the sink) and
        // others spread: 0 -> {1, 2}, 2 -> 3 -> 4.
        let g = DiGraph::from_edges(5, [(0, 1), (0, 2), (2, 3), (3, 4)]).unwrap();
        let s = seeds(&g, &[0], &[]);
        let avg = monte_carlo(
            &OpoaoModel::new(20),
            &g,
            &s,
            &MonteCarloConfig {
                runs: 200,
                base_seed: 11,
                threads: 3,
            },
        );
        // OPOAO re-selects every step, so node 0 eventually reaches
        // both children and every run infects all 5 nodes — but runs
        // quiesce at different hops, exercising trace alignment. The
        // early-hop means must sit strictly between the extremes.
        let f = avg.mean_final_infected();
        assert!((4.99..=5.0).contains(&f), "final {f}");
        let at_two = avg.mean_infected_at_hop(2);
        assert!(at_two > 2.0 && at_two < 5.0, "hop-2 mean {at_two}");
        for w in avg.mean_infected_by_hop.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn budgeted_driver_matches_unbudgeted_when_the_batch_fits() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = generators::gnm_directed(40, 160, &mut rng).unwrap();
        let csr = lcrb_graph::CsrGraph::from(&g);
        let s = seeds(&g, &[0], &[1]);
        let cfg = MonteCarloConfig {
            runs: 16,
            base_seed: 7,
            threads: 3,
        };
        let plain = monte_carlo_csr(&OpoaoModel::new(8), &csr, &s, &cfg);
        for budget in [
            RunBudget::unlimited(),
            RunBudget::unlimited().with_max_sims(16),
        ] {
            let mut meter = WorkMeter::new(budget, Some(CancelToken::new()), None);
            let metered = monte_carlo_csr_budgeted(&OpoaoModel::new(8), &csr, &s, &cfg, &mut meter)
                .expect("batch fits");
            assert_eq!(plain, metered);
            assert_eq!(meter.spent().0, 16);
        }
    }

    #[test]
    fn budgeted_driver_rejects_an_oversized_batch_without_charging() {
        let g = generators::path_graph(4);
        let csr = lcrb_graph::CsrGraph::from(&g);
        let s = seeds(&g, &[0], &[]);
        let cfg = MonteCarloConfig {
            runs: 8,
            base_seed: 1,
            threads: 1,
        };
        let mut meter = WorkMeter::new(RunBudget::unlimited().with_max_sims(7), None, None);
        assert_eq!(
            monte_carlo_csr_budgeted(&OpoaoModel::default(), &csr, &s, &cfg, &mut meter),
            Err(StopReason::SimBudget)
        );
        assert_eq!(meter.spent().0, 0, "rejected batch must not charge");
    }

    #[test]
    fn budgeted_driver_observes_cancellation_in_serial_and_threaded_paths() {
        let g = generators::path_graph(5);
        let csr = lcrb_graph::CsrGraph::from(&g);
        let s = seeds(&g, &[0], &[]);
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 3] {
            let cfg = MonteCarloConfig {
                runs: 8,
                base_seed: 2,
                threads,
            };
            let mut meter = WorkMeter::new(RunBudget::unlimited(), Some(token.clone()), None);
            assert_eq!(
                monte_carlo_csr_budgeted(&OpoaoModel::default(), &csr, &s, &cfg, &mut meter),
                Err(StopReason::Cancelled)
            );
        }
    }
}
