//! Competitive Independent Cascade — an extension model.
//!
//! The paper's related work (§II) studies rumor blocking under
//! extensions of the IC model (Budak et al. [14]); the conclusion
//! lists "other influence diffusion models" as future work. This
//! model lets the generic LCRB greedy be exercised beyond OPOAO: two
//! cascades spread by independent per-edge coin flips, each newly
//! active node gets a single chance per out-neighbor, and the
//! protector cascade wins simultaneous claims.

use core::fmt;

use rand::Rng;

// xtask-allow: hotpath -- DiGraph is imported only for the documented one-off convenience wrapper
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

use crate::{DiffusionOutcome, SeedSets, SimWorkspace, Status, TwoCascadeModel};

/// Error returned when constructing a [`CompetitiveIcModel`] with an
/// invalid probability.
#[derive(Clone, Debug, PartialEq)]
pub struct InvalidProbabilityError {
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for InvalidProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "activation probability {} is not in [0, 1]", self.value)
    }
}

impl std::error::Error for InvalidProbabilityError {}

/// The competitive IC model with a uniform edge activation
/// probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompetitiveIcModel {
    probability: f64,
    /// Maximum number of diffusion hops.
    pub max_hops: u32,
}

impl CompetitiveIcModel {
    /// Creates a model where every edge transmits independently with
    /// probability `probability`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `probability` is NaN or
    /// outside `[0, 1]`.
    pub fn new(probability: f64) -> Result<Self, InvalidProbabilityError> {
        if probability.is_nan() || !(0.0..=1.0).contains(&probability) {
            return Err(InvalidProbabilityError { value: probability });
        }
        Ok(CompetitiveIcModel {
            probability,
            max_hops: u32::MAX,
        })
    }

    /// Same as [`CompetitiveIcModel::new`] with a hop budget.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `probability` is NaN or
    /// outside `[0, 1]`.
    pub fn with_max_hops(probability: f64, max_hops: u32) -> Result<Self, InvalidProbabilityError> {
        let mut model = CompetitiveIcModel::new(probability)?;
        model.max_hops = max_hops;
        Ok(model)
    }

    /// The uniform edge activation probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// A fixed live-edge realization of the competitive IC model.
///
/// The classic live-edge coupling: every edge is independently *live*
/// with the model's probability, decided once per realization by
/// hashing `(seed, source, target)`. Conditioned on the live set, the
/// competitive IC diffusion is deterministic — both cascades race
/// along live edges at one hop per step with protector priority,
/// exactly DOAM restricted to the live subgraph — which makes the
/// saved-bridge-end count monotone and submodular per realization,
/// the same structure the OPOAO realizations provide (and the reason
/// the LCRB-P greedy extends to IC; cf. Budak et al.'s EIL).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IcRealization {
    seed: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl IcRealization {
    /// Creates the realization identified by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        IcRealization { seed }
    }

    /// Derives a batch of independent realizations from a master
    /// seed.
    #[must_use]
    pub fn batch(count: usize, master_seed: u64) -> Vec<Self> {
        (0..count as u64)
            .map(|i| IcRealization::new(splitmix64(master_seed ^ splitmix64(i))))
            .collect()
    }

    /// Whether the edge `(u, v)` is live under `probability`.
    #[must_use]
    pub fn edge_is_live(&self, u: NodeId, v: NodeId, probability: f64) -> bool {
        let h = splitmix64(
            self.seed
                ^ splitmix64(u64::from(u.raw()).wrapping_mul(0xD6E8_FEB8_6659_FD93))
                ^ splitmix64(u64::from(v.raw()).wrapping_mul(0xCA5A_8263_9512_1157)),
        );
        // Map the hash to [0, 1).
        ((h >> 11) as f64 / (1u64 << 53) as f64) < probability
    }
}

impl CompetitiveIcModel {
    /// Runs the model deterministically against a pre-sampled
    /// live-edge realization (see [`IcRealization`]). Marginally over
    /// realizations this reproduces [`TwoCascadeModel::run`]'s
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside `graph`.
    #[must_use]
    pub fn run_realized(
        &self,
        // xtask-allow: hotpath -- documented cold-path convenience wrapper; snapshots then delegates to run_realized_into
        graph: &DiGraph,
        seeds: &SeedSets,
        realization: &IcRealization,
    ) -> DiffusionOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_realized_into(&csr, seeds, &mut ws, realization);
        ws.to_outcome()
    }

    /// Allocation-free variant of [`CompetitiveIcModel::run_realized`]
    /// against a frozen snapshot, writing the result into `ws`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the snapshot.
    pub fn run_realized_into(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        realization: &IcRealization,
    ) {
        run_csr_with_transmit(graph, seeds, self.max_hops, ws, |u, w| {
            realization.edge_is_live(u, w, self.probability)
        });
    }
}

impl TwoCascadeModel for CompetitiveIcModel {
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        rng: &mut R,
    ) {
        run_csr_with_transmit(graph, seeds, self.max_hops, ws, |_, _| {
            rng.gen_bool(self.probability)
        });
    }

    fn name(&self) -> &'static str {
        "competitive-ic"
    }
}

/// The shared competitive-IC engine: `transmit(u, w)` decides whether
/// active node `u` activates its inactive out-neighbor `w` this hop
/// (a fresh coin flip for the stochastic model, a live-edge lookup
/// for realizations). `transmit` is only consulted for inactive
/// targets, preserving the legacy RNG draw order.
fn run_csr_with_transmit<F>(
    graph: &CsrGraph,
    seeds: &SeedSets,
    max_hops: u32,
    ws: &mut SimWorkspace,
    mut transmit: F,
) where
    F: FnMut(NodeId, NodeId) -> bool,
{
    let n = graph.node_count();
    ws.begin(n, seeds);
    ws.frontier.clear();
    ws.frontier
        .extend(seeds.protectors().iter().chain(seeds.rumors()).copied());
    let mut quiescent = false;

    for hop in 1..=max_hops {
        if ws.frontier.is_empty() {
            quiescent = true;
            break;
        }
        ws.claimed.clear();
        for i in 0..ws.frontier.len() {
            let u = ws.frontier[i];
            let cascade = if ws.status(u) == Status::Protected {
                2
            } else {
                1
            };
            for &w in graph.out_neighbors(u) {
                if ws.is_inactive(w) && transmit(u, w) {
                    let slot = &mut ws.claim[w.index()];
                    if *slot == 0 {
                        ws.claimed.push(w);
                    }
                    // Protector priority: P (2) overrides R (1).
                    *slot = (*slot).max(cascade);
                }
            }
        }
        ws.new_protected.clear();
        ws.new_infected.clear();
        for i in 0..ws.claimed.len() {
            let w = ws.claimed[i];
            if ws.claim[w.index()] == 2 {
                ws.new_protected.push(w);
            } else {
                ws.new_infected.push(w);
            }
            ws.claim[w.index()] = 0;
        }
        ws.commit_hop(hop);
        ws.frontier.clear();
        for i in 0..ws.new_protected.len() {
            let w = ws.new_protected[i];
            ws.frontier.push(w);
        }
        for i in 0..ws.new_infected.len() {
            let w = ws.new_infected[i];
            ws.frontier.push(w);
        }
    }
    if ws.frontier.is_empty() {
        quiescent = true;
    }
    ws.set_quiescent(quiescent);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(CompetitiveIcModel::new(-0.1).is_err());
        assert!(CompetitiveIcModel::new(1.1).is_err());
        assert!(CompetitiveIcModel::new(f64::NAN).is_err());
        let err = CompetitiveIcModel::new(2.0).unwrap_err();
        assert!(err.to_string().contains("not in [0, 1]"));
    }

    #[test]
    fn probability_one_is_doam_like_broadcast() {
        let g = generators::path_graph(5);
        let m = CompetitiveIcModel::new(1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let o = m.run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 5);
        assert_eq!(o.activation_hop(NodeId::new(4)), Some(4));
    }

    #[test]
    fn probability_zero_never_spreads() {
        let g = generators::complete_graph(6);
        let m = CompetitiveIcModel::new(0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let o = m.run(&g, &seeds(&g, &[0], &[1]), &mut rng);
        assert_eq!(o.infected_count(), 1);
        assert_eq!(o.protected_count(), 1);
        assert!(o.is_quiescent());
    }

    #[test]
    fn protector_priority_on_tie() {
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let m = CompetitiveIcModel::new(1.0).unwrap();
        for s in 0..10 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = m.run(&g, &seeds(&g, &[0], &[1]), &mut rng);
            assert_eq!(o.status(NodeId::new(2)), Status::Protected);
        }
    }

    #[test]
    fn single_chance_no_retries() {
        // With p = 0.5 on a single edge, roughly half the runs infect
        // node 1 — and a failed attempt is never retried.
        let g = generators::path_graph(2);
        let m = CompetitiveIcModel::new(0.5).unwrap();
        let mut hits = 0;
        for s in 0..400 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = m.run(&g, &seeds(&g, &[0], &[]), &mut rng);
            assert!(o.is_quiescent());
            if o.infected_count() == 2 {
                hits += 1;
            }
        }
        assert!((150..250).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn hop_budget_truncates() {
        let g = generators::path_graph(10);
        let m = CompetitiveIcModel::with_max_hops(1.0, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let o = m.run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.infected_count(), 3);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn realized_runs_are_deterministic_and_probability_respecting() {
        let g = generators::complete_graph(12);
        let m = CompetitiveIcModel::new(0.3).unwrap();
        let s = seeds(&g, &[0], &[1]);
        let real = IcRealization::new(5);
        let a = m.run_realized(&g, &s, &real);
        let b = m.run_realized(&g, &s, &real);
        assert_eq!(a.statuses(), b.statuses());
        // Extremes behave like the stochastic model.
        let all = CompetitiveIcModel::new(1.0)
            .unwrap()
            .run_realized(&g, &s, &real);
        assert_eq!(all.infected_count() + all.protected_count(), 12);
        let none = CompetitiveIcModel::new(0.0)
            .unwrap()
            .run_realized(&g, &s, &real);
        assert_eq!(none.infected_count(), 1);
    }

    #[test]
    fn realized_into_matches_wrapper_across_reuses() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::gnm_directed(40, 160, &mut rng).unwrap();
        let csr = CsrGraph::from(&g);
        let m = CompetitiveIcModel::new(0.35).unwrap();
        let s = seeds(&g, &[0, 3], &[1]);
        let mut ws = SimWorkspace::new();
        for i in 0..8 {
            let real = IcRealization::new(i);
            m.run_realized_into(&csr, &s, &mut ws, &real);
            assert_eq!(ws.to_outcome(), m.run_realized(&g, &s, &real), "real {i}");
        }
    }

    #[test]
    fn live_edge_frequency_matches_probability() {
        let p = 0.35;
        let mut live = 0usize;
        let total = 20_000;
        for i in 0..total {
            let r = IcRealization::new(i as u64);
            if r.edge_is_live(NodeId::new(3), NodeId::new(7), p) {
                live += 1;
            }
        }
        let freq = live as f64 / total as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn realized_marginal_matches_stochastic_mean() {
        // Average infected count over many realizations ~= average
        // over many stochastic runs.
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::gnm_directed(60, 240, &mut rng).unwrap();
        let m = CompetitiveIcModel::new(0.2).unwrap();
        let s = seeds(&g, &[0, 1], &[2]);
        let runs = 400;
        let realized: f64 = (0..runs)
            .map(|i| {
                m.run_realized(&g, &s, &IcRealization::new(i))
                    .infected_count()
            })
            .sum::<usize>() as f64
            / runs as f64;
        let stochastic: f64 = (0..runs)
            .map(|i| {
                let mut r = SmallRng::seed_from_u64(1000 + i);
                m.run(&g, &s, &mut r).infected_count()
            })
            .sum::<usize>() as f64
            / runs as f64;
        let rel = (realized - stochastic).abs() / stochastic.max(1.0);
        assert!(rel < 0.15, "realized {realized} vs stochastic {stochastic}");
    }

    #[test]
    fn adding_protectors_is_monotone_per_ic_realization() {
        // Live-edge coupling: protection can only grow.
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::gnm_directed(40, 200, &mut rng).unwrap();
        let m = CompetitiveIcModel::new(0.4).unwrap();
        for rs in 0..20u64 {
            let real = IcRealization::new(rs);
            let base = m.run_realized(&g, &seeds(&g, &[0], &[]), &real);
            let more = m.run_realized(&g, &seeds(&g, &[0], &[5, 9]), &real);
            for v in g.nodes() {
                if more.status(v).is_infected() {
                    assert!(base.status(v).is_infected(), "node {v} newly infected");
                }
            }
        }
    }

    #[test]
    fn ic_realization_batch_is_reproducible() {
        assert_eq!(IcRealization::batch(8, 3), IcRealization::batch(8, 3));
        assert_ne!(IcRealization::batch(8, 3), IcRealization::batch(8, 4));
    }

    #[test]
    fn name_and_accessor() {
        let m = CompetitiveIcModel::new(0.25).unwrap();
        assert_eq!(m.name(), "competitive-ic");
        assert_eq!(m.probability(), 0.25);
    }
}
