//! Seed-set handling for the two competing cascades, plus the RNG
//! stream-derivation primitive every seeded estimator shares.

// xtask-allow-file: index -- membership bitmaps are node_count-sized and built during the validation that admits each seed
use core::fmt;

use lcrb_graph::{DiGraph, NodeId};

/// SplitMix64 finalizer — the avalanche step behind
/// [`derive_stream`].
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::splitmix64;
///
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(7), splitmix64(7)); // pure function of the input
/// ```
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives a per-request RNG stream seed from a master seed and a
/// request-content key.
///
/// This is the determinism-under-concurrency primitive: a stream is a
/// pure function of *what* is being sampled (master seed + content
/// key), never of which worker thread runs the request or in what
/// order requests arrive. Two requests with the same content key get
/// the same stream on any schedule; distinct keys get decorrelated
/// streams via a double [`splitmix64`] mix.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::derive_stream;
///
/// let master = 9;
/// // Same (master, key) → same stream, regardless of call order.
/// assert_eq!(derive_stream(master, 42), derive_stream(master, 42));
/// // Different keys → different streams.
/// assert_ne!(derive_stream(master, 42), derive_stream(master, 43));
/// ```
#[inline]
#[must_use]
pub fn derive_stream(master: u64, key: u64) -> u64 {
    splitmix64(master ^ splitmix64(key))
}

/// Errors produced when validating seed sets.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeedError {
    /// A seed id referred to a node outside the graph.
    OutOfBounds {
        /// The offending node.
        node: NodeId,
        /// Node count of the graph.
        node_count: usize,
    },
    /// A node appeared in both the rumor and protector seed sets;
    /// the paper requires the initial sets to be disjoint (§III).
    Overlap {
        /// The node present in both sets.
        node: NodeId,
    },
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedError::OutOfBounds { node, node_count } => write!(
                f,
                "seed {node} is out of bounds for a graph with {node_count} nodes"
            ),
            SeedError::Overlap { node } => {
                write!(f, "node {node} appears in both seed sets")
            }
        }
    }
}

impl std::error::Error for SeedError {}

/// The two disjoint initial sets of §III: rumor originators `S_R`
/// and protector originators `S_P`.
///
/// Construction validates that every seed is a node of the target
/// graph, deduplicates within each set (preserving first-appearance
/// order), and rejects overlap between the sets.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::SeedSets;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(2)])?;
/// assert_eq!(seeds.rumors(), &[NodeId::new(0)]);
/// assert_eq!(seeds.protectors(), &[NodeId::new(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedSets {
    rumors: Vec<NodeId>,
    protectors: Vec<NodeId>,
}

fn dedup_in_order(nodes: Vec<NodeId>, node_count: usize) -> Result<Vec<NodeId>, SeedError> {
    // xtask-allow: hotreach -- validation-boundary allocation, runs once per seed-set construction, not per query
    let mut seen = vec![false; node_count];
    // xtask-allow: hotreach -- validation-boundary allocation, runs once per seed-set construction, not per query
    let mut out = Vec::with_capacity(nodes.len());
    for v in nodes {
        if v.index() >= node_count {
            return Err(SeedError::OutOfBounds {
                node: v,
                node_count,
            });
        }
        if !seen[v.index()] {
            seen[v.index()] = true;
            out.push(v);
        }
    }
    Ok(out)
}

impl SeedSets {
    /// Validates and builds a seed-set pair for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`SeedError::OutOfBounds`] for unknown nodes and
    /// [`SeedError::Overlap`] if the two sets intersect.
    pub fn new(
        graph: &DiGraph,
        rumors: Vec<NodeId>,
        protectors: Vec<NodeId>,
    ) -> Result<Self, SeedError> {
        let n = graph.node_count();
        let rumors = dedup_in_order(rumors, n)?;
        let protectors = dedup_in_order(protectors, n)?;
        // xtask-allow: hotreach -- one-time overlap check at seed-set construction; per-query refills use set_protectors
        let mut is_rumor = vec![false; n];
        for &r in &rumors {
            is_rumor[r.index()] = true;
        }
        if let Some(&p) = protectors.iter().find(|p| is_rumor[p.index()]) {
            return Err(SeedError::Overlap { node: p });
        }
        Ok(SeedSets { rumors, protectors })
    }

    /// A seed set with rumors only (the paper's "NoBlocking"
    /// baseline).
    ///
    /// # Errors
    ///
    /// Returns [`SeedError::OutOfBounds`] for unknown nodes.
    pub fn rumors_only(graph: &DiGraph, rumors: Vec<NodeId>) -> Result<Self, SeedError> {
        SeedSets::new(graph, rumors, Vec::new())
    }

    /// Rebuilds this seed pair with a different protector set,
    /// keeping the rumors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SeedSets::new`].
    pub fn with_protectors(
        &self,
        graph: &DiGraph,
        protectors: Vec<NodeId>,
    ) -> Result<Self, SeedError> {
        SeedSets::new(graph, self.rumors.clone(), protectors)
    }

    /// Replaces the protector set in place, reusing the existing
    /// allocation — the hot-path counterpart of
    /// [`SeedSets::with_protectors`] for per-query `σ̂` evaluation
    /// loops that must not allocate at steady state.
    ///
    /// Validation matches [`SeedSets::new`]: bounds first (checked in
    /// order while deduplicating, quadratically — protector sets are
    /// small), then overlap against the kept rumors. On error the
    /// protector set is left empty, which is always a valid state.
    ///
    /// # Errors
    ///
    /// Returns [`SeedError::OutOfBounds`] for unknown nodes and
    /// [`SeedError::Overlap`] if a protector is also a rumor seed.
    pub fn set_protectors(
        &mut self,
        node_count: usize,
        protectors: &[NodeId],
    ) -> Result<(), SeedError> {
        self.protectors.clear();
        for &v in protectors {
            if v.index() >= node_count {
                self.protectors.clear();
                return Err(SeedError::OutOfBounds {
                    node: v,
                    node_count,
                });
            }
            if !self.protectors.contains(&v) {
                self.protectors.push(v);
            }
        }
        if let Some(&p) = self.protectors.iter().find(|p| self.rumors.contains(*p)) {
            self.protectors.clear();
            return Err(SeedError::Overlap { node: p });
        }
        Ok(())
    }

    /// The rumor originators `S_R`, deduplicated.
    #[inline]
    #[must_use]
    pub fn rumors(&self) -> &[NodeId] {
        &self.rumors
    }

    /// The protector originators `S_P`, deduplicated.
    #[inline]
    #[must_use]
    pub fn protectors(&self) -> &[NodeId] {
        &self.protectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> DiGraph {
        DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn valid_seed_sets() {
        let g = graph();
        let s = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(3)]).unwrap();
        assert_eq!(s.rumors().len(), 1);
        assert_eq!(s.protectors().len(), 1);
    }

    #[test]
    fn duplicates_within_a_set_are_collapsed() {
        let g = graph();
        let s = SeedSets::new(
            &g,
            vec![NodeId::new(0), NodeId::new(0), NodeId::new(1)],
            vec![],
        )
        .unwrap();
        assert_eq!(s.rumors(), &[NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn overlap_is_rejected() {
        let g = graph();
        let err = SeedSets::new(&g, vec![NodeId::new(1)], vec![NodeId::new(1)]).unwrap_err();
        assert_eq!(
            err,
            SeedError::Overlap {
                node: NodeId::new(1)
            }
        );
        assert!(err.to_string().contains("both seed sets"));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let g = graph();
        let err = SeedSets::new(&g, vec![NodeId::new(9)], vec![]).unwrap_err();
        assert!(matches!(err, SeedError::OutOfBounds { .. }));
    }

    #[test]
    fn with_protectors_replaces_only_protectors() {
        let g = graph();
        let s = SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
        assert!(s.protectors().is_empty());
        let s2 = s.with_protectors(&g, vec![NodeId::new(4)]).unwrap();
        assert_eq!(s2.rumors(), s.rumors());
        assert_eq!(s2.protectors(), &[NodeId::new(4)]);
        // Replacing with an overlapping set fails.
        assert!(s.with_protectors(&g, vec![NodeId::new(0)]).is_err());
    }

    #[test]
    fn set_protectors_matches_with_protectors() {
        let g = graph();
        let s = SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
        let mut reused = s.clone();
        for set in [
            vec![NodeId::new(4)],
            vec![NodeId::new(3), NodeId::new(3), NodeId::new(2)],
            vec![],
        ] {
            reused.set_protectors(g.node_count(), &set).unwrap();
            let fresh = s.with_protectors(&g, set).unwrap();
            assert_eq!(reused, fresh);
        }
        // Errors mirror the constructor and leave the set empty.
        assert_eq!(
            reused
                .set_protectors(g.node_count(), &[NodeId::new(9)])
                .unwrap_err(),
            SeedError::OutOfBounds {
                node: NodeId::new(9),
                node_count: g.node_count()
            }
        );
        assert!(reused.protectors().is_empty());
        assert_eq!(
            reused
                .set_protectors(g.node_count(), &[NodeId::new(0)])
                .unwrap_err(),
            SeedError::Overlap {
                node: NodeId::new(0)
            }
        );
        assert!(reused.protectors().is_empty());
        // Bounds take precedence over overlap, like `new`.
        assert!(matches!(
            reused
                .set_protectors(g.node_count(), &[NodeId::new(0), NodeId::new(9)])
                .unwrap_err(),
            SeedError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn empty_seed_sets_are_allowed() {
        let g = graph();
        let s = SeedSets::new(&g, vec![], vec![]).unwrap();
        assert!(s.rumors().is_empty());
        assert!(s.protectors().is_empty());
    }
}
