//! Coupled random realizations of the OPOAO model.
//!
//! §V-A of the paper proves submodularity of the protector-influence
//! function by conditioning on the random choices and timestamps of a
//! diffusion ("random graphs" `G_R`/`G_P`). A realization here is
//! exactly that conditioning: it fixes, for every (node, hop) pair,
//! which out-neighbor the node targets, making the diffusion a
//! deterministic function of the seed sets. Evaluating candidate
//! protector sets against a *common* batch of realizations gives the
//! common-random-numbers estimator the greedy algorithm needs (and
//! per realization, `|PB(S)|` is monotone and submodular — Lemma 4 —
//! which is what makes lazy/CELF greedy sound).
//!
//! Rather than materializing `n × hops` choices, a realization is a
//! single 64-bit seed: the choice of node `v` at hop `t` is derived
//! by hashing `(seed, v, t)` with SplitMix64. Memory stays O(1) per
//! realization regardless of graph size, and the choice depends only
//! on `(v, t)` — not on the diffusion state — so it is identical
//! across evaluations with different protector sets.

use lcrb_graph::NodeId;

/// One fixed realization of all OPOAO random choices.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::OpoaoRealization;
/// use lcrb_graph::NodeId;
///
/// let r = OpoaoRealization::new(42);
/// let c1 = r.choice(NodeId::new(3), 5, 7);
/// let c2 = r.choice(NodeId::new(3), 5, 7);
/// assert_eq!(c1, c2); // deterministic
/// assert!(c1 < 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpoaoRealization {
    seed: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl OpoaoRealization {
    /// Creates the realization identified by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        OpoaoRealization { seed }
    }

    /// Derives a batch of `count` independent realizations from a
    /// master seed (realization `i` uses a hash of `(master, i)`).
    #[must_use]
    pub fn batch(count: usize, master_seed: u64) -> Vec<Self> {
        (0..count as u64)
            .map(|i| OpoaoRealization::new(splitmix64(master_seed ^ splitmix64(i))))
            .collect()
    }

    /// The out-neighbor index targeted by `node` at `hop`, given the
    /// node's `out_degree`.
    ///
    /// Uniform over `0..out_degree` up to the negligible modulo bias
    /// of reducing a 64-bit hash (degrees here are ≪ 2^32).
    ///
    /// # Panics
    ///
    /// Panics if `out_degree == 0` — nodes without out-neighbors
    /// never choose.
    #[inline]
    #[must_use]
    pub fn choice(&self, node: NodeId, hop: u32, out_degree: usize) -> usize {
        assert!(out_degree > 0, "node {node} has no out-neighbors to choose");
        let h = splitmix64(
            self.seed
                ^ splitmix64(u64::from(node.raw()).wrapping_mul(0xA24B_AED4_963E_E407))
                ^ splitmix64(u64::from(hop).wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        (h % out_degree as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choices_are_deterministic_and_in_range() {
        let r = OpoaoRealization::new(9);
        for node in 0..50u32 {
            for hop in 0..40u32 {
                for degree in 1..9usize {
                    let c = r.choice(NodeId::from_raw(node), hop, degree);
                    assert!(c < degree);
                    assert_eq!(c, r.choice(NodeId::from_raw(node), hop, degree));
                }
            }
        }
    }

    #[test]
    fn choices_vary_across_nodes_hops_and_seeds() {
        let r = OpoaoRealization::new(1);
        let per_node: Vec<usize> = (0..64)
            .map(|v| r.choice(NodeId::from_raw(v), 0, 10))
            .collect();
        assert!(per_node.iter().any(|&c| c != per_node[0]));
        let per_hop: Vec<usize> = (0..64)
            .map(|h| r.choice(NodeId::from_raw(0), h, 10))
            .collect();
        assert!(per_hop.iter().any(|&c| c != per_hop[0]));
        let r2 = OpoaoRealization::new(2);
        let cross: Vec<bool> = (0..64)
            .map(|v| r.choice(NodeId::from_raw(v), 3, 10) != r2.choice(NodeId::from_raw(v), 3, 10))
            .collect();
        assert!(cross.iter().any(|&b| b));
    }

    #[test]
    fn choices_are_roughly_uniform() {
        let r = OpoaoRealization::new(123);
        let degree = 5;
        let mut counts = vec![0usize; degree];
        let samples = 50_000u32;
        for i in 0..samples {
            counts[r.choice(NodeId::from_raw(i % 1000), i / 1000, degree)] += 1;
        }
        let expected = samples as f64 / degree as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} off by {dev:.3}");
        }
    }

    #[test]
    fn batch_produces_distinct_realizations() {
        let batch = OpoaoRealization::batch(16, 7);
        assert_eq!(batch.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for r in &batch {
            assert!(seen.insert(*r));
        }
        // Reproducible.
        assert_eq!(batch, OpoaoRealization::batch(16, 7));
        assert_ne!(batch, OpoaoRealization::batch(16, 8));
    }

    #[test]
    #[should_panic(expected = "no out-neighbors")]
    fn zero_degree_choice_panics() {
        let _ = OpoaoRealization::new(0).choice(NodeId::new(0), 0, 0);
    }
}
