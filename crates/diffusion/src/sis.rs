//! Competitive SIS rumor spreading — an extension model.
//!
//! Trpevski et al. (reference \[23\] of the paper) model rumors with
//! susceptible–infected–susceptible dynamics: beliefs are not
//! permanent, and nodes can forget and be re-convinced. This module
//! implements a two-cascade SIS variant with the paper's protector
//! priority: at each step a susceptible node contracts the rumor with
//! probability `1 - (1 - β_r)^k` from its `k` infected in-neighbors
//! (independently for the protector cascade with `β_p`), protector
//! acquisition wins simultaneous contractions, and every active node
//! reverts to susceptible with probability `δ`.
//!
//! Unlike the progressive models (§III property 3 does *not* hold),
//! SIS has no absorbing "everyone decided" state — the interesting
//! output is the prevalence trajectory, so this model has its own
//! outcome type instead of [`crate::DiffusionOutcome`].

use rand::Rng;

// xtask-allow: hotpath -- DiGraph is imported only for the documented one-off convenience wrapper
use lcrb_graph::{CsrGraph, DiGraph};

use crate::ic::InvalidProbabilityError;
use crate::{SeedSets, SimWorkspace};

/// The state of a node in the competitive SIS process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SisState {
    /// Holding neither the rumor nor the truth.
    #[default]
    Susceptible,
    /// Currently spreading the rumor.
    Infected,
    /// Currently spreading the truth.
    Protected,
}

/// Population counts at one step of a SIS run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SisRecord {
    /// Step number (0 = seed placement).
    pub step: u32,
    /// Nodes currently infected.
    pub infected: usize,
    /// Nodes currently protected.
    pub protected: usize,
}

/// The result of a competitive SIS run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SisOutcome {
    /// Node states after the final step.
    pub final_states: Vec<SisState>,
    /// Prevalence per step, starting at step 0.
    pub trace: Vec<SisRecord>,
}

impl SisOutcome {
    /// Infected count at the final step.
    #[must_use]
    pub fn final_infected(&self) -> usize {
        self.trace.last().map_or(0, |r| r.infected)
    }

    /// Protected count at the final step.
    #[must_use]
    pub fn final_protected(&self) -> usize {
        self.trace.last().map_or(0, |r| r.protected)
    }
}

/// The competitive SIS model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompetitiveSisModel {
    beta_rumor: f64,
    beta_protector: f64,
    recovery: f64,
    /// Number of steps to simulate.
    pub steps: u32,
}

impl CompetitiveSisModel {
    /// Creates a model with per-contact transmission probabilities
    /// `beta_rumor` / `beta_protector`, per-step forgetting
    /// probability `recovery`, and a step budget.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if any probability is NaN
    /// or outside `[0, 1]`.
    pub fn new(
        beta_rumor: f64,
        beta_protector: f64,
        recovery: f64,
        steps: u32,
    ) -> Result<Self, InvalidProbabilityError> {
        for p in [beta_rumor, beta_protector, recovery] {
            if p.is_nan() || !(0.0..=1.0).contains(&p) {
                return Err(InvalidProbabilityError { value: p });
            }
        }
        Ok(CompetitiveSisModel {
            beta_rumor,
            beta_protector,
            recovery,
            steps,
        })
    }

    /// The rumor transmission probability.
    #[must_use]
    pub fn beta_rumor(&self) -> f64 {
        self.beta_rumor
    }

    /// The protector transmission probability.
    #[must_use]
    pub fn beta_protector(&self) -> f64 {
        self.beta_protector
    }

    /// The per-step recovery (forgetting) probability.
    #[must_use]
    pub fn recovery(&self) -> f64 {
        self.recovery
    }

    /// Runs the process for `steps` steps, snapshotting the graph and
    /// allocating a fresh workspace. Batch callers should use
    /// [`CompetitiveSisModel::run_into`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside `graph`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        // xtask-allow: hotpath -- documented cold-path convenience wrapper; snapshots then delegates to run_into
        graph: &DiGraph,
        seeds: &SeedSets,
        rng: &mut R,
    ) -> SisOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_into(&csr, seeds, &mut ws, rng)
    }

    /// Runs the process against a frozen snapshot, keeping the hot
    /// double-buffered state in `ws` so repeated runs only allocate
    /// for the returned outcome (trace + final states).
    ///
    /// SIS is non-progressive, so it returns its own [`SisOutcome`]
    /// rather than populating the workspace's progressive-cascade
    /// fields; `ws` is purely scratch here.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the snapshot.
    pub fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        rng: &mut R,
    ) -> SisOutcome {
        let n = graph.node_count();
        ws.sis_state.clear();
        ws.sis_state.resize(n, SisState::Susceptible);
        for &r in seeds.rumors() {
            ws.sis_state[r.index()] = SisState::Infected;
        }
        for &p in seeds.protectors() {
            ws.sis_state[p.index()] = SisState::Protected;
        }
        ws.sis_next.clear();
        ws.sis_next.extend_from_slice(&ws.sis_state);
        let count = |state: &[SisState]| {
            let infected = state.iter().filter(|&&s| s == SisState::Infected).count();
            let protected = state.iter().filter(|&&s| s == SisState::Protected).count();
            (infected, protected)
        };
        let (i0, p0) = count(&ws.sis_state);
        let mut trace = Vec::with_capacity(self.steps as usize + 1);
        trace.push(SisRecord {
            step: 0,
            infected: i0,
            protected: p0,
        });

        for step in 1..=self.steps {
            for v in graph.nodes() {
                match ws.sis_state[v.index()] {
                    SisState::Susceptible => {
                        let (mut inf_nbrs, mut prot_nbrs) = (0u32, 0u32);
                        for &u in graph.in_neighbors(v) {
                            match ws.sis_state[u.index()] {
                                SisState::Infected => inf_nbrs += 1,
                                SisState::Protected => prot_nbrs += 1,
                                SisState::Susceptible => {}
                            }
                        }
                        let p_inf = 1.0 - (1.0 - self.beta_rumor).powi(inf_nbrs as i32);
                        let p_prot = 1.0 - (1.0 - self.beta_protector).powi(prot_nbrs as i32);
                        let got_prot = prot_nbrs > 0 && rng.gen_bool(p_prot);
                        let got_inf = inf_nbrs > 0 && rng.gen_bool(p_inf);
                        // Protector priority on simultaneous contraction.
                        ws.sis_next[v.index()] = if got_prot {
                            SisState::Protected
                        } else if got_inf {
                            SisState::Infected
                        } else {
                            SisState::Susceptible
                        };
                    }
                    active => {
                        ws.sis_next[v.index()] =
                            if self.recovery > 0.0 && rng.gen_bool(self.recovery) {
                                SisState::Susceptible
                            } else {
                                active
                            };
                    }
                }
            }
            std::mem::swap(&mut ws.sis_state, &mut ws.sis_next);
            let (i, p) = count(&ws.sis_state);
            trace.push(SisRecord {
                step,
                infected: i,
                protected: p,
            });
        }
        SisOutcome {
            // xtask-allow: bufclone -- one copy per run to materialize the outcome; the step loop above mutates in place
            final_states: ws.sis_state.clone(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        use lcrb_graph::NodeId;
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(CompetitiveSisModel::new(-0.1, 0.1, 0.1, 10).is_err());
        assert!(CompetitiveSisModel::new(0.1, 1.5, 0.1, 10).is_err());
        assert!(CompetitiveSisModel::new(0.1, 0.1, f64::NAN, 10).is_err());
        assert!(CompetitiveSisModel::new(0.3, 0.4, 0.05, 10).is_ok());
    }

    #[test]
    fn zero_beta_never_spreads_and_full_recovery_clears() {
        let g = generators::complete_graph(10);
        let m = CompetitiveSisModel::new(0.0, 0.0, 1.0, 5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let o = m.run(&g, &seeds(&g, &[0], &[1]), &mut rng);
        // Seeds recover at step 1 and nothing ever spreads.
        assert_eq!(o.final_infected(), 0);
        assert_eq!(o.final_protected(), 0);
        assert_eq!(o.trace[0].infected, 1);
        assert_eq!(o.trace[1].infected, 0);
    }

    #[test]
    fn no_recovery_and_certain_transmission_saturates() {
        let g = generators::complete_graph(8);
        let m = CompetitiveSisModel::new(1.0, 0.0, 0.0, 3).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let o = m.run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.final_infected(), 8);
        // Saturated after one step on a complete graph.
        assert_eq!(o.trace[1].infected, 8);
    }

    #[test]
    fn protector_priority_on_simultaneous_contact() {
        // v has one infected and one protected in-neighbor, both with
        // certain transmission: protector wins every time.
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let m = CompetitiveSisModel::new(1.0, 1.0, 0.0, 1).unwrap();
        for s in 0..20 {
            let mut rng = SmallRng::seed_from_u64(s);
            let o = m.run(&g, &seeds(&g, &[0], &[1]), &mut rng);
            assert_eq!(o.final_states[2], SisState::Protected);
        }
    }

    #[test]
    fn endemic_prevalence_is_plausible() {
        // β well above the epidemic threshold with mild recovery:
        // infection persists at a substantial level.
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnm_directed(200, 1600, &mut rng).unwrap();
        let m = CompetitiveSisModel::new(0.3, 0.0, 0.2, 60).unwrap();
        let o = m.run(&g, &seeds(&g, &[0, 1, 2], &[]), &mut rng);
        let tail_avg: f64 = o.trace[40..].iter().map(|r| r.infected as f64).sum::<f64>() / 21.0;
        assert!(tail_avg > 40.0, "endemic prevalence too low: {tail_avg}");
        // And never exceeds the population.
        assert!(o.trace.iter().all(|r| r.infected + r.protected <= 200));
    }

    #[test]
    fn protectors_suppress_endemic_rumor() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::gnm_directed(150, 1200, &mut rng).unwrap();
        let run = |protectors: &[usize], rng: &mut SmallRng| {
            let m = CompetitiveSisModel::new(0.25, 0.4, 0.2, 80).unwrap();
            let s = seeds(&g, &[0, 1], protectors);
            let o = m.run(&g, &s, rng);
            o.trace[60..].iter().map(|r| r.infected as f64).sum::<f64>() / 21.0
        };
        let without = run(&[], &mut rng);
        let with = run(&[10, 11, 12, 13, 14, 15, 16, 17, 18, 19], &mut rng);
        assert!(
            with < without,
            "protection did not suppress prevalence: {with} vs {without}"
        );
    }

    #[test]
    fn trace_has_one_record_per_step() {
        let g = generators::path_graph(5);
        let m = CompetitiveSisModel::new(0.5, 0.5, 0.1, 12).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let o = m.run(&g, &seeds(&g, &[0], &[]), &mut rng);
        assert_eq!(o.trace.len(), 13);
        assert_eq!(o.final_states.len(), 5);
        for (i, r) in o.trace.iter().enumerate() {
            assert_eq!(r.step as usize, i);
        }
    }

    #[test]
    fn run_into_matches_run_across_workspace_reuses() {
        let mut r = SmallRng::seed_from_u64(11);
        let g = generators::gnm_directed(50, 300, &mut r).unwrap();
        let csr = CsrGraph::from(&g);
        let m = CompetitiveSisModel::new(0.3, 0.2, 0.1, 20).unwrap();
        let s = seeds(&g, &[0, 1], &[2]);
        let mut ws = SimWorkspace::new();
        for seed in 0..5u64 {
            let mut a = SmallRng::seed_from_u64(seed);
            let mut b = SmallRng::seed_from_u64(seed);
            let fast = m.run_into(&csr, &s, &mut ws, &mut a);
            let reference = m.run(&g, &s, &mut b);
            assert_eq!(fast, reference, "seed {seed}");
        }
    }

    #[test]
    fn accessors() {
        let m = CompetitiveSisModel::new(0.2, 0.3, 0.1, 5).unwrap();
        assert_eq!(m.beta_rumor(), 0.2);
        assert_eq!(m.beta_protector(), 0.3);
        assert_eq!(m.recovery(), 0.1);
        assert_eq!(m.steps, 5);
    }
}
