//! The Deterministic One-Activate-Many (DOAM) model of §III-B.
//!
//! When a node first activates at step `t`, all of its currently
//! inactive out-neighbors activate at `t+1` (each node influences its
//! neighbors exactly once); the protector cascade wins simultaneous
//! claims. The process is completely deterministic — information
//! broadcast, in the paper's words.
//!
//! # Analytic oracle
//!
//! Under DOAM the outcome has a closed form: with `d_R(v)`/`d_P(v)`
//! the plain multi-source BFS distances from the rumor/protector
//! seeds, node `v` activates at hop `min(d_P(v), d_R(v))` and is
//! protected iff `d_P(v) <= d_R(v)`. (Induction along a shortest
//! cascade path: a blocked intermediate node would imply a strictly
//! shorter opposing distance to `v`, contradicting the path being
//! shortest.) [`doam_analytic`] computes this directly with two BFS
//! passes and is the fast protection oracle used by the Table I
//! coverage experiments; its agreement with the step simulator
//! [`DoamModel::run`] is enforced by unit and property tests.
//! [`doam_analytic_csr`] / [`doam_safe_targets_csr`] are the hot-path
//! variants that run against a frozen snapshot with reusable BFS
//! scratch, for callers that sweep many seed sets on one graph.

use rand::Rng;

use lcrb_graph::traversal::{bfs_distances, CsrBfsScratch, Direction};
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

use crate::{DiffusionOutcome, HopRecord, SeedSets, SimWorkspace, Status, TwoCascadeModel};

/// The DOAM model.
///
/// DOAM terminates on its own within at most `n` hops; `max_hops`
/// exists to truncate traces for like-for-like comparisons with
/// OPOAO figures and defaults to "no limit".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoamModel {
    /// Maximum number of hops to simulate.
    pub max_hops: u32,
}

impl Default for DoamModel {
    fn default() -> Self {
        DoamModel { max_hops: u32::MAX }
    }
}

impl DoamModel {
    /// Creates a model with a hop budget.
    #[must_use]
    pub fn new(max_hops: u32) -> Self {
        DoamModel { max_hops }
    }

    /// Runs the deterministic step simulation, snapshotting the graph
    /// and allocating a fresh workspace. Batch callers should use
    /// [`DoamModel::run_deterministic_into`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside `graph`.
    #[must_use]
    pub fn run_deterministic(&self, graph: &DiGraph, seeds: &SeedSets) -> DiffusionOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_deterministic_into(&csr, seeds, &mut ws);
        ws.to_outcome()
    }

    /// Allocation-free step simulation against a frozen snapshot.
    ///
    /// Workspace buffer roles: `frontier` holds the protector
    /// frontier, `next_frontier` the rumor frontier.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the snapshot.
    pub fn run_deterministic_into(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
    ) {
        let n = graph.node_count();
        ws.begin(n, seeds);
        ws.frontier.clear();
        ws.frontier.extend_from_slice(seeds.protectors());
        ws.next_frontier.clear();
        ws.next_frontier.extend_from_slice(seeds.rumors());
        let mut quiescent = false;

        for hop in 1..=self.max_hops {
            if ws.frontier.is_empty() && ws.next_frontier.is_empty() {
                quiescent = true;
                break;
            }
            ws.new_protected.clear();
            ws.new_infected.clear();
            // Protector frontier claims first (P-priority is then
            // automatic).
            for i in 0..ws.frontier.len() {
                let u = ws.frontier[i];
                for &w in graph.out_neighbors(u) {
                    if ws.is_inactive(w) && ws.claim[w.index()] == 0 {
                        ws.claim[w.index()] = 2;
                        ws.new_protected.push(w);
                    }
                }
            }
            for i in 0..ws.next_frontier.len() {
                let u = ws.next_frontier[i];
                for &w in graph.out_neighbors(u) {
                    if ws.is_inactive(w) && ws.claim[w.index()] == 0 {
                        ws.claim[w.index()] = 1;
                        ws.new_infected.push(w);
                    }
                }
            }
            for i in 0..ws.new_protected.len() {
                let w = ws.new_protected[i];
                ws.claim[w.index()] = 0;
            }
            for i in 0..ws.new_infected.len() {
                let w = ws.new_infected[i];
                ws.claim[w.index()] = 0;
            }
            ws.commit_hop(hop);
            std::mem::swap(&mut ws.frontier, &mut ws.new_protected);
            std::mem::swap(&mut ws.next_frontier, &mut ws.new_infected);
        }
        if ws.frontier.is_empty() && ws.next_frontier.is_empty() {
            quiescent = true;
        }
        ws.set_quiescent(quiescent);
    }
}

impl TwoCascadeModel for DoamModel {
    /// DOAM is deterministic; the RNG is ignored.
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        _rng: &mut R,
    ) {
        self.run_deterministic_into(graph, seeds, ws);
    }

    fn name(&self) -> &'static str {
        "doam"
    }
}

/// Shared trace/status assembly for the analytic oracle, given the
/// two distance maps as lookups.
fn assemble_analytic(
    n: usize,
    d_r: impl Fn(usize) -> Option<u32>,
    d_p: impl Fn(usize) -> Option<u32>,
) -> DiffusionOutcome {
    let mut status = vec![Status::Inactive; n];
    let mut activation = vec![None; n];
    let mut max_hop = 0u32;
    for (i, (s_slot, a_slot)) in status.iter_mut().zip(activation.iter_mut()).enumerate() {
        let (s, h) = match (d_p(i), d_r(i)) {
            (Some(p), Some(r)) if p <= r => (Status::Protected, p),
            (Some(p), None) => (Status::Protected, p),
            (_, Some(r)) => (Status::Infected, r),
            (None, None) => continue,
        };
        *s_slot = s;
        *a_slot = Some(h);
        max_hop = max_hop.max(h);
    }
    // Rebuild the hop trace from activation times.
    let mut new_infected = vec![0usize; max_hop as usize + 1];
    let mut new_protected = vec![0usize; max_hop as usize + 1];
    for i in 0..n {
        if let Some(h) = activation[i] {
            match status[i] {
                Status::Infected => new_infected[h as usize] += 1,
                Status::Protected => new_protected[h as usize] += 1,
                Status::Inactive => unreachable!("activated node has a status"),
            }
        }
    }
    let mut trace = Vec::with_capacity(max_hop as usize + 2);
    let (mut ti, mut tp) = (0usize, 0usize);
    for hop in 0..=max_hop {
        ti += new_infected[hop as usize];
        tp += new_protected[hop as usize];
        trace.push(HopRecord {
            hop,
            new_infected: new_infected[hop as usize],
            new_protected: new_protected[hop as usize],
            total_infected: ti,
            total_protected: tp,
        });
    }
    // The step simulator records one final hop with no activity
    // before detecting quiescence — only when some seed existed.
    if n > 0 && (ti > 0 || tp > 0) {
        trace.push(HopRecord {
            hop: max_hop + 1,
            new_infected: 0,
            new_protected: 0,
            total_infected: ti,
            total_protected: tp,
        });
    }
    DiffusionOutcome::new(status, activation, trace, true)
}

/// Computes the DOAM outcome analytically from two multi-source BFS
/// passes (see the module docs for the correctness argument).
/// Produces exactly the same statuses, activation hops, and trace as
/// [`DoamModel::run_deterministic`] with an unlimited hop budget.
///
/// # Panics
///
/// Panics if `seeds` refers to nodes outside `graph`.
#[must_use]
pub fn doam_analytic(graph: &DiGraph, seeds: &SeedSets) -> DiffusionOutcome {
    let d_r = bfs_distances(graph, seeds.rumors());
    let d_p = bfs_distances(graph, seeds.protectors());
    assemble_analytic(graph.node_count(), |i| d_r[i], |i| d_p[i])
}

/// Snapshot variant of [`doam_analytic`]: runs the two BFS passes in
/// caller-owned scratches, so sweeping many seed sets on one graph
/// performs no per-call distance-map allocation.
///
/// # Panics
///
/// Panics if `seeds` refers to nodes outside the snapshot.
#[must_use]
pub fn doam_analytic_csr(
    graph: &CsrGraph,
    seeds: &SeedSets,
    d_r: &mut CsrBfsScratch,
    d_p: &mut CsrBfsScratch,
) -> DiffusionOutcome {
    d_r.run(graph, seeds.rumors(), Direction::Forward, u32::MAX);
    d_p.run(graph, seeds.protectors(), Direction::Forward, u32::MAX);
    assemble_analytic(
        graph.node_count(),
        |i| d_r.distance(NodeId::new(i)),
        |i| d_p.distance(NodeId::new(i)),
    )
}

/// Reports whether each node of `targets` would be protected (not
/// infected) under DOAM with the given seeds — the coverage check
/// used by the LCRB-D experiments. A target is "safe" when it is
/// protected or never reached.
///
/// # Panics
///
/// Panics if `seeds` or `targets` refer to nodes outside `graph`.
#[must_use]
pub fn doam_safe_targets(graph: &DiGraph, seeds: &SeedSets, targets: &[NodeId]) -> Vec<bool> {
    let d_r = bfs_distances(graph, seeds.rumors());
    let d_p = bfs_distances(graph, seeds.protectors());
    targets
        .iter()
        .map(|&v| match (d_p[v.index()], d_r[v.index()]) {
            (_, None) => true,
            (Some(p), Some(r)) => p <= r,
            (None, Some(_)) => false,
        })
        .collect()
}

/// Snapshot variant of [`doam_safe_targets`] with caller-owned BFS
/// scratches.
///
/// # Panics
///
/// Panics if `seeds` or `targets` refer to nodes outside the
/// snapshot.
#[must_use]
pub fn doam_safe_targets_csr(
    graph: &CsrGraph,
    seeds: &SeedSets,
    targets: &[NodeId],
    d_r: &mut CsrBfsScratch,
    d_p: &mut CsrBfsScratch,
) -> Vec<bool> {
    d_r.run(graph, seeds.rumors(), Direction::Forward, u32::MAX);
    d_p.run(graph, seeds.protectors(), Direction::Forward, u32::MAX);
    targets
        .iter()
        .map(|&v| match (d_p.distance(v), d_r.distance(v)) {
            (_, None) => true,
            (Some(p), Some(r)) => p <= r,
            (None, Some(_)) => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn broadcast_on_path() {
        let g = generators::path_graph(5);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 5);
        assert_eq!(o.activation_hop(NodeId::new(4)), Some(4));
        assert!(o.is_quiescent());
    }

    #[test]
    fn tie_goes_to_protector() {
        // 0 (R) -> 2 <- 1 (P).
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[1]));
        assert_eq!(o.status(NodeId::new(2)), Status::Protected);
    }

    #[test]
    fn closer_rumor_wins() {
        // R at 0 one hop from 2; P at 3 two hops from 2 (3 -> 4 -> 2).
        let g = DiGraph::from_edges(5, [(0, 2), (3, 4), (4, 2)]).unwrap();
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[3]));
        assert_eq!(o.status(NodeId::new(2)), Status::Infected);
    }

    #[test]
    fn single_chance_semantics() {
        // Star: hub infected at hop 0 activates all leaves at hop 1,
        // then the process stops even though the hub stays infected.
        let g = generators::star_graph(6);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 6);
        assert!(o.trace().iter().all(|r| r.hop <= 2));
    }

    #[test]
    fn protection_wall_blocks_rumor() {
        // 0 -> 1 -> 2 -> 3 with protector at 1's position already: R
        // cannot pass a protected node.
        let g = generators::path_graph(4);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[1]));
        assert_eq!(o.status(NodeId::new(1)), Status::Protected);
        assert_eq!(o.status(NodeId::new(2)), Status::Protected);
        assert_eq!(o.status(NodeId::new(3)), Status::Protected);
        assert_eq!(o.infected_count(), 1);
    }

    #[test]
    fn analytic_matches_simulation_on_fixtures() {
        let cases: Vec<(DiGraph, SeedSets)> = vec![
            {
                let g = generators::path_graph(6);
                let s = seeds(&g, &[0], &[3]);
                (g, s)
            },
            {
                let g = generators::star_graph(8);
                let s = seeds(&g, &[1], &[2]);
                (g, s)
            },
            {
                let g = generators::cycle_graph(9);
                let s = seeds(&g, &[0], &[4]);
                (g, s)
            },
            {
                let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
                let s = seeds(&g, &[0], &[1]);
                (g, s)
            },
        ];
        for (g, s) in cases {
            let sim = DoamModel::default().run_deterministic(&g, &s);
            let ana = doam_analytic(&g, &s);
            assert_eq!(sim.statuses(), ana.statuses());
            for v in g.nodes() {
                assert_eq!(sim.activation_hop(v), ana.activation_hop(v), "node {v}");
            }
            assert_eq!(sim.trace(), ana.trace());
        }
    }

    #[test]
    fn analytic_matches_simulation_on_random_graphs() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = generators::gnm_directed(50, 170, &mut rng).unwrap();
            let s = seeds(&g, &[0, 1], &[2, 3]);
            let sim = DoamModel::default().run_deterministic(&g, &s);
            let ana = doam_analytic(&g, &s);
            assert_eq!(sim.statuses(), ana.statuses(), "seed {seed}");
            assert_eq!(sim.trace(), ana.trace(), "seed {seed}");
        }
    }

    #[test]
    fn csr_oracle_matches_digraph_oracle() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = generators::gnm_directed(50, 170, &mut rng).unwrap();
        let csr = CsrGraph::from(&g);
        let mut d_r = CsrBfsScratch::new();
        let mut d_p = CsrBfsScratch::new();
        // Reuse the scratches across several seed sets.
        for (r, p) in [(0usize, 1usize), (5, 9), (13, 2)] {
            let s = seeds(&g, &[r], &[p]);
            let reference = doam_analytic(&g, &s);
            let fast = doam_analytic_csr(&csr, &s, &mut d_r, &mut d_p);
            assert_eq!(reference, fast, "seeds ({r}, {p})");
            let targets: Vec<NodeId> = g.nodes().collect();
            assert_eq!(
                doam_safe_targets(&g, &s, &targets),
                doam_safe_targets_csr(&csr, &s, &targets, &mut d_r, &mut d_p),
            );
        }
    }

    #[test]
    fn safe_targets_match_outcome() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnm_directed(40, 160, &mut rng).unwrap();
        let s = seeds(&g, &[0], &[1, 2]);
        let outcome = DoamModel::default().run_deterministic(&g, &s);
        let targets: Vec<NodeId> = g.nodes().collect();
        let safe = doam_safe_targets(&g, &s, &targets);
        for (v, &is_safe) in targets.iter().zip(&safe) {
            assert_eq!(is_safe, !outcome.status(*v).is_infected(), "node {v}");
        }
    }

    #[test]
    fn empty_seeds_trace() {
        let g = generators::path_graph(3);
        let s = seeds(&g, &[], &[]);
        let sim = DoamModel::default().run_deterministic(&g, &s);
        let ana = doam_analytic(&g, &s);
        assert_eq!(sim.infected_count(), 0);
        assert_eq!(sim.trace(), ana.trace());
    }

    #[test]
    fn hop_budget_truncates_doam() {
        let g = generators::path_graph(10);
        let o = DoamModel::new(2).run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 3);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn model_name_and_rng_independence() {
        let g = generators::path_graph(4);
        let s = seeds(&g, &[0], &[]);
        let m = DoamModel::default();
        assert_eq!(m.name(), "doam");
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(999);
        assert_eq!(
            m.run(&g, &s, &mut r1).statuses(),
            m.run(&g, &s, &mut r2).statuses()
        );
    }
}
