//! The Deterministic One-Activate-Many (DOAM) model of §III-B.
//!
//! When a node first activates at step `t`, all of its currently
//! inactive out-neighbors activate at `t+1` (each node influences its
//! neighbors exactly once); the protector cascade wins simultaneous
//! claims. The process is completely deterministic — information
//! broadcast, in the paper's words.
//!
//! This module holds only the zero-allocation CSR step kernel. The
//! closed-form BFS-distance oracle ([`crate::doam_analytic`] and
//! friends) and the `DiGraph` convenience wrapper live in the cold
//! `analytic` module.

use rand::Rng;

use lcrb_graph::CsrGraph;

use crate::{SeedSets, SimWorkspace, TwoCascadeModel};

/// The DOAM model.
///
/// DOAM terminates on its own within at most `n` hops; `max_hops`
/// exists to truncate traces for like-for-like comparisons with
/// OPOAO figures and defaults to "no limit".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoamModel {
    /// Maximum number of hops to simulate.
    pub max_hops: u32,
}

impl Default for DoamModel {
    fn default() -> Self {
        DoamModel { max_hops: u32::MAX }
    }
}

impl DoamModel {
    /// Creates a model with a hop budget.
    #[must_use]
    pub fn new(max_hops: u32) -> Self {
        DoamModel { max_hops }
    }

    /// Allocation-free step simulation against a frozen snapshot.
    ///
    /// Workspace buffer roles: `frontier` holds the protector
    /// frontier, `next_frontier` the rumor frontier.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the snapshot.
    pub fn run_deterministic_into(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
    ) {
        let n = graph.node_count();
        ws.begin(n, seeds);
        ws.frontier.clear();
        ws.frontier.extend_from_slice(seeds.protectors());
        ws.next_frontier.clear();
        ws.next_frontier.extend_from_slice(seeds.rumors());
        let mut quiescent = false;

        for hop in 1..=self.max_hops {
            if ws.frontier.is_empty() && ws.next_frontier.is_empty() {
                quiescent = true;
                break;
            }
            ws.new_protected.clear();
            ws.new_infected.clear();
            // Protector frontier claims first (P-priority is then
            // automatic).
            for i in 0..ws.frontier.len() {
                let u = ws.frontier[i];
                for &w in graph.out_neighbors(u) {
                    if ws.is_inactive(w) && ws.claim[w.index()] == 0 {
                        ws.claim[w.index()] = 2;
                        ws.new_protected.push(w);
                    }
                }
            }
            for i in 0..ws.next_frontier.len() {
                let u = ws.next_frontier[i];
                for &w in graph.out_neighbors(u) {
                    if ws.is_inactive(w) && ws.claim[w.index()] == 0 {
                        ws.claim[w.index()] = 1;
                        ws.new_infected.push(w);
                    }
                }
            }
            for i in 0..ws.new_protected.len() {
                let w = ws.new_protected[i];
                ws.claim[w.index()] = 0;
            }
            for i in 0..ws.new_infected.len() {
                let w = ws.new_infected[i];
                ws.claim[w.index()] = 0;
            }
            ws.commit_hop(hop);
            std::mem::swap(&mut ws.frontier, &mut ws.new_protected);
            std::mem::swap(&mut ws.next_frontier, &mut ws.new_infected);
        }
        if ws.frontier.is_empty() && ws.next_frontier.is_empty() {
            quiescent = true;
        }
        ws.set_quiescent(quiescent);
    }
}

impl TwoCascadeModel for DoamModel {
    /// DOAM is deterministic; the RNG is ignored.
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        _rng: &mut R,
    ) {
        self.run_deterministic_into(graph, seeds, ws);
    }

    fn name(&self) -> &'static str {
        "doam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Status;
    use lcrb_graph::{generators, DiGraph, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn broadcast_on_path() {
        let g = generators::path_graph(5);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 5);
        assert_eq!(o.activation_hop(NodeId::new(4)), Some(4));
        assert!(o.is_quiescent());
    }

    #[test]
    fn tie_goes_to_protector() {
        // 0 (R) -> 2 <- 1 (P).
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[1]));
        assert_eq!(o.status(NodeId::new(2)), Status::Protected);
    }

    #[test]
    fn closer_rumor_wins() {
        // R at 0 one hop from 2; P at 3 two hops from 2 (3 -> 4 -> 2).
        let g = DiGraph::from_edges(5, [(0, 2), (3, 4), (4, 2)]).unwrap();
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[3]));
        assert_eq!(o.status(NodeId::new(2)), Status::Infected);
    }

    #[test]
    fn single_chance_semantics() {
        // Star: hub infected at hop 0 activates all leaves at hop 1,
        // then the process stops even though the hub stays infected.
        let g = generators::star_graph(6);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 6);
        assert!(o.trace().iter().all(|r| r.hop <= 2));
    }

    #[test]
    fn protection_wall_blocks_rumor() {
        // 0 -> 1 -> 2 -> 3 with protector at 1's position already: R
        // cannot pass a protected node.
        let g = generators::path_graph(4);
        let o = DoamModel::default().run_deterministic(&g, &seeds(&g, &[0], &[1]));
        assert_eq!(o.status(NodeId::new(1)), Status::Protected);
        assert_eq!(o.status(NodeId::new(2)), Status::Protected);
        assert_eq!(o.status(NodeId::new(3)), Status::Protected);
        assert_eq!(o.infected_count(), 1);
    }

    #[test]
    fn hop_budget_truncates_doam() {
        let g = generators::path_graph(10);
        let o = DoamModel::new(2).run_deterministic(&g, &seeds(&g, &[0], &[]));
        assert_eq!(o.infected_count(), 3);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn model_name_and_rng_independence() {
        let g = generators::path_graph(4);
        let s = seeds(&g, &[0], &[]);
        let m = DoamModel::default();
        assert_eq!(m.name(), "doam");
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(999);
        assert_eq!(
            m.run(&g, &s, &mut r1).statuses(),
            m.run(&g, &s, &mut r2).statuses()
        );
    }
}
