//! The Opportunistic One-Activate-One (OPOAO) model of §III-A.
//!
//! At every step, every active node picks exactly one of its
//! out-neighbors uniformly at random (probability `1/d_out(u)`) as
//! its activation target; targets that are still inactive activate at
//! the next step, with the protector cascade winning simultaneous
//! claims. Nodes re-select every step ("repeat activation", cf. the
//! paper's Fig. 1 where `x` re-selects `u` at step 2), so hitting an
//! already-active neighbor wastes the step and diffusion is slow —
//! the person-to-person contact regime the paper describes.

use rand::Rng;

// xtask-allow: hotpath -- DiGraph is imported only for the documented one-off convenience wrapper
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

use crate::{DiffusionOutcome, OpoaoRealization, SeedSets, SimWorkspace, Status, TwoCascadeModel};

/// Number of hops the paper simulates in Figures 4–6.
pub const PAPER_OPOAO_HOPS: u32 = 31;

/// The OPOAO model configured with a hop budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpoaoModel {
    /// Maximum number of diffusion hops to simulate. The run also
    /// stops early when no active node has an inactive out-neighbor.
    pub max_hops: u32,
}

impl Default for OpoaoModel {
    /// Defaults to the paper's 31-hop budget.
    fn default() -> Self {
        OpoaoModel {
            max_hops: PAPER_OPOAO_HOPS,
        }
    }
}

impl OpoaoModel {
    /// Creates a model with the given hop budget.
    #[must_use]
    pub fn new(max_hops: u32) -> Self {
        OpoaoModel { max_hops }
    }

    /// Runs the model deterministically against a pre-sampled
    /// [`OpoaoRealization`] (common-random-numbers coupling; see
    /// DESIGN.md §2). Two calls with the same realization and seeds
    /// produce identical outcomes, and calls with different protector
    /// sets share all rumor-side randomness.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside `graph`.
    #[must_use]
    pub fn run_realized(
        &self,
        // xtask-allow: hotpath -- documented cold-path convenience wrapper; snapshots then delegates to run_realized_into
        graph: &DiGraph,
        seeds: &SeedSets,
        realization: &OpoaoRealization,
    ) -> DiffusionOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_realized_into(&csr, seeds, &mut ws, realization);
        ws.to_outcome()
    }

    /// Allocation-free variant of [`OpoaoModel::run_realized`]: runs
    /// against a frozen snapshot, writing the result into `ws`. This
    /// is the inner loop of the greedy objective, which evaluates
    /// thousands of protector sets against the same realizations.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the snapshot.
    pub fn run_realized_into(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        realization: &OpoaoRealization,
    ) {
        run_csr_with_choices(graph, seeds, self.max_hops, ws, |node, hop, degree| {
            realization.choice(node, hop, degree)
        });
    }
}

impl TwoCascadeModel for OpoaoModel {
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        rng: &mut R,
    ) {
        run_csr_with_choices(graph, seeds, self.max_hops, ws, |_, _, degree| {
            rng.gen_range(0..degree)
        });
    }

    fn name(&self) -> &'static str {
        "opoao"
    }
}

/// The shared OPOAO engine: `choose(node, hop, out_degree)` returns
/// the index of the out-neighbor targeted by `node` at `hop`.
///
/// Workspace buffer roles: `frontier` is the live set (active nodes
/// that can still activate someone), `counters[u]` the number of
/// inactive out-neighbors of `u`, `claimed` the staging list of nodes
/// claimed this hop.
fn run_csr_with_choices<F>(
    graph: &CsrGraph,
    seeds: &SeedSets,
    max_hops: u32,
    ws: &mut SimWorkspace,
    mut choose: F,
) where
    F: FnMut(NodeId, u32, usize) -> usize,
{
    let n = graph.node_count();
    ws.begin(n, seeds);

    // counters[u] = number of inactive out-neighbors of u. A node
    // with zero can never cause another activation and retires from
    // the live set.
    ws.counters.clear();
    ws.counters.extend_from_slice(graph.out_degrees());
    for &s in seeds.rumors().iter().chain(seeds.protectors()) {
        for &u in graph.in_neighbors(s) {
            ws.counters[u.index()] -= 1;
        }
    }

    ws.frontier.clear();
    ws.frontier.extend(
        seeds
            .rumors()
            .iter()
            .chain(seeds.protectors())
            .copied()
            .filter(|&v| graph.out_degree(v) > 0),
    );

    let mut quiescent = false;
    for hop in 1..=max_hops {
        let counters = &ws.counters;
        ws.frontier.retain(|&u| counters[u.index()] > 0);
        if ws.frontier.is_empty() {
            quiescent = true;
            break;
        }
        ws.claimed.clear();
        for i in 0..ws.frontier.len() {
            let u = ws.frontier[i];
            let degree = graph.out_degree(u);
            let idx = choose(u, hop, degree);
            debug_assert!(idx < degree, "choice index out of range");
            let target = graph.out_neighbors(u)[idx];
            if !ws.is_inactive(target) {
                continue;
            }
            let cascade = if ws.status(u) == Status::Protected {
                2
            } else {
                1
            };
            let slot = &mut ws.claim[target.index()];
            if *slot == 0 {
                ws.claimed.push(target);
            }
            // Protector priority: P (2) overrides R (1).
            *slot = (*slot).max(cascade);
        }
        ws.new_protected.clear();
        ws.new_infected.clear();
        for i in 0..ws.claimed.len() {
            let w = ws.claimed[i];
            let slot = ws.claim[w.index()];
            ws.claim[w.index()] = 0;
            if slot == 2 {
                ws.new_protected.push(w);
            } else {
                ws.new_infected.push(w);
            }
            for &u in graph.in_neighbors(w) {
                ws.counters[u.index()] -= 1;
            }
            if graph.out_degree(w) > 0 {
                ws.frontier.push(w);
            }
        }
        ws.commit_hop(hop);
    }
    ws.set_quiescent(quiescent);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn single_out_neighbor_chain_is_deterministic() {
        // On a path, each node has exactly one out-neighbor, so the
        // "random" choice is forced and the rumor walks the path.
        let g = lcrb_graph::generators::path_graph(5);
        let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
        let o = OpoaoModel::new(10).run(&g, &seeds, &mut rng(0));
        assert_eq!(o.infected_count(), 5);
        for i in 0..5 {
            assert_eq!(o.activation_hop(NodeId::new(i)), Some(i as u32));
        }
        assert!(o.is_quiescent());
    }

    #[test]
    fn protector_priority_on_simultaneous_claim() {
        // 0 (rumor) -> 2 <- 1 (protector): both claim node 2 at hop 1.
        let g = lcrb_graph::DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(1)]).unwrap();
        for seed in 0..20 {
            let o = OpoaoModel::new(5).run(&g, &seeds, &mut rng(seed));
            assert_eq!(o.status(NodeId::new(2)), Status::Protected);
            assert_eq!(o.activation_hop(NodeId::new(2)), Some(1));
        }
    }

    #[test]
    fn protector_blocks_downstream_chain() {
        // rumor 0 -> 1 -> 2 -> 3, protector at 2 already: 3 should be
        // protected... no wait, 2 is a *seed*, so only 1 can be
        // infected and 3 stays for P to claim.
        let g = lcrb_graph::generators::path_graph(4);
        let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(2)]).unwrap();
        let o = OpoaoModel::new(10).run(&g, &seeds, &mut rng(1));
        assert_eq!(o.status(NodeId::new(1)), Status::Infected);
        assert_eq!(o.status(NodeId::new(3)), Status::Protected);
        assert!(o.is_quiescent());
    }

    #[test]
    fn hop_budget_truncates() {
        let g = lcrb_graph::generators::path_graph(10);
        let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
        let o = OpoaoModel::new(3).run(&g, &seeds, &mut rng(2));
        assert_eq!(o.infected_count(), 4); // seed + 3 hops
        assert!(!o.is_quiescent());
    }

    #[test]
    fn no_seeds_is_immediately_quiescent() {
        let g = lcrb_graph::generators::path_graph(4);
        let seeds = SeedSets::new(&g, vec![], vec![]).unwrap();
        let o = OpoaoModel::default().run(&g, &seeds, &mut rng(3));
        assert_eq!(o.infected_count(), 0);
        assert_eq!(o.protected_count(), 0);
        assert!(o.is_quiescent());
        assert_eq!(o.trace().len(), 1);
    }

    #[test]
    fn sink_seed_cannot_spread() {
        let g = lcrb_graph::DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(2)]).unwrap();
        let o = OpoaoModel::default().run(&g, &seeds, &mut rng(4));
        assert_eq!(o.infected_count(), 1);
        assert!(o.is_quiescent());
    }

    #[test]
    fn statuses_are_progressive_and_consistent_with_hops() {
        let mut r = rng(5);
        let g = lcrb_graph::generators::gnm_directed(60, 240, &mut r).unwrap();
        let seeds = SeedSets::new(
            &g,
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(2)],
        )
        .unwrap();
        let o = OpoaoModel::default().run(&g, &seeds, &mut r);
        for v in g.nodes() {
            match o.status(v) {
                Status::Inactive => assert_eq!(o.activation_hop(v), None),
                _ => assert!(o.activation_hop(v).is_some()),
            }
        }
        // Trace totals are monotone.
        let t = o.trace();
        for w in t.windows(2) {
            assert!(w[1].total_infected >= w[0].total_infected);
            assert!(w[1].total_protected >= w[0].total_protected);
        }
    }

    #[test]
    fn realized_runs_are_reproducible() {
        let mut r = rng(6);
        let g = lcrb_graph::generators::gnm_directed(40, 160, &mut r).unwrap();
        let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(1)]).unwrap();
        let real = OpoaoRealization::new(77);
        let model = OpoaoModel::default();
        let a = model.run_realized(&g, &seeds, &real);
        let b = model.run_realized(&g, &seeds, &real);
        assert_eq!(a.statuses(), b.statuses());
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn realized_into_reuses_workspace_and_matches_wrapper() {
        let mut r = rng(9);
        let g = lcrb_graph::generators::gnm_directed(40, 160, &mut r).unwrap();
        let csr = CsrGraph::from(&g);
        let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(1)]).unwrap();
        let model = OpoaoModel::default();
        let mut ws = SimWorkspace::new();
        for s in 0..8 {
            let real = OpoaoRealization::new(s);
            model.run_realized_into(&csr, &seeds, &mut ws, &real);
            let fresh = model.run_realized(&g, &seeds, &real);
            assert_eq!(ws.to_outcome(), fresh, "realization {s}");
        }
    }

    #[test]
    fn different_realizations_usually_differ() {
        let mut r = rng(7);
        let g = lcrb_graph::generators::gnm_directed(40, 200, &mut r).unwrap();
        let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap();
        let model = OpoaoModel::new(8);
        let outcomes: Vec<usize> = (0..10)
            .map(|s| {
                model
                    .run_realized(&g, &seeds, &OpoaoRealization::new(s))
                    .infected_count()
            })
            .collect();
        assert!(
            outcomes.iter().any(|&c| c != outcomes[0]),
            "all 10 realizations gave {outcomes:?}"
        );
    }

    #[test]
    fn model_name() {
        assert_eq!(OpoaoModel::default().name(), "opoao");
        assert_eq!(OpoaoModel::default().max_hops, 31);
    }
}
