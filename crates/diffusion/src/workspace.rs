//! Reusable per-run scratch state for the simulation engine.
//!
//! The Monte-Carlo loop behind the paper's Figures 4–6 and the CELF
//! greedy objective run the same model thousands of times on one
//! frozen graph. Allocating fresh status/frontier buffers for every
//! run costs more than the simulation itself on the paper-scale
//! graphs; a [`SimWorkspace`] is allocated once per worker and reused,
//! so the steady-state inner loop performs zero heap allocations.
//!
//! Per-node results (status, activation hop) are validated with an
//! epoch stamp: starting a new run bumps the epoch instead of clearing
//! the arrays, making run startup O(seeds) rather than O(n).

use lcrb_graph::NodeId;

use crate::sis::SisState;
use crate::{DiffusionOutcome, HopRecord, SeedSets, Status};

/// Reusable scratch state for [`TwoCascadeModel::run_into`]
/// (and [`CompetitiveSisModel::run_into`]).
///
/// One workspace serves every model in this crate; buffers a model
/// does not need stay empty. After a run, the workspace *is* the
/// outcome: read it through [`SimWorkspace::status`],
/// [`SimWorkspace::activation_hop`], [`SimWorkspace::trace`], and
/// friends, or materialize an owned [`DiffusionOutcome`] with
/// [`SimWorkspace::to_outcome`]. Results remain readable until the
/// next run begins.
///
/// [`TwoCascadeModel::run_into`]: crate::TwoCascadeModel::run_into
/// [`CompetitiveSisModel::run_into`]: crate::CompetitiveSisModel::run_into
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::{OpoaoModel, SeedSets, SimWorkspace, TwoCascadeModel};
/// use lcrb_graph::{CsrGraph, DiGraph, NodeId};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2)])?;
/// let csr = CsrGraph::from(&g);
/// let seeds = SeedSets::rumors_only(&g, vec![NodeId::new(0)])?;
/// let model = OpoaoModel::default();
/// let mut ws = SimWorkspace::new();
/// let mut rng = SmallRng::seed_from_u64(7);
/// // Snapshot once, simulate many: no per-run allocation.
/// for _ in 0..100 {
///     model.run_into(&csr, &seeds, &mut ws, &mut rng);
///     assert!(ws.infected_count() >= 1);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimWorkspace {
    // Epoch-stamped per-node results.
    epoch: u32,
    node_count: usize,
    stamp: Vec<u32>,
    status: Vec<Status>,
    hop: Vec<u32>,
    // Per-run trace and summary.
    trace: Vec<HopRecord>,
    total_infected: usize,
    total_protected: usize,
    quiescent: bool,
    /// Claim staging (0 = unclaimed, 1 = R, 2 = P); models restore it
    /// to all-zeros before each hop ends, so no per-run clear is
    /// needed.
    pub(crate) claim: Vec<u8>,
    // Reusable frontier buffers; meaning varies per model.
    pub(crate) frontier: Vec<NodeId>,
    pub(crate) next_frontier: Vec<NodeId>,
    pub(crate) claimed: Vec<NodeId>,
    pub(crate) new_protected: Vec<NodeId>,
    pub(crate) new_infected: Vec<NodeId>,
    /// Per-hop counters (OPOAO: inactive out-neighbor counts).
    pub(crate) counters: Vec<u32>,
    // Competitive-LT weights, thresholds, and dirty flags.
    pub(crate) weight_p: Vec<f64>,
    pub(crate) weight_r: Vec<f64>,
    pub(crate) thresholds: Vec<f64>,
    pub(crate) flags: Vec<bool>,
    // Competitive-SIS double-buffered node states.
    pub(crate) sis_state: Vec<SisState>,
    pub(crate) sis_next: Vec<SisState>,
}

impl SimWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are
    /// retained across runs.
    #[must_use]
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Creates a workspace with per-node buffers pre-sized for graphs
    /// of up to `n` nodes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = SimWorkspace::new();
        ws.stamp.resize(n, 0);
        ws.status.resize(n, Status::Inactive);
        ws.hop.resize(n, 0);
        ws.claim.resize(n, 0);
        ws
    }

    /// Opens a new run epoch for a graph of `n` nodes and places the
    /// seeds (hop-0 trace record included). Called by every
    /// `run_into` implementation.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside the graph.
    pub(crate) fn begin(&mut self, n: usize, seeds: &SeedSets) {
        self.node_count = n;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.status.resize(n, Status::Inactive);
            self.hop.resize(n, 0);
        }
        if self.claim.len() < n {
            self.claim.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        #[cfg(debug_assertions)]
        self.debug_check_epoch_consistency(n);
        self.epoch += 1;
        self.trace.clear();
        self.quiescent = false;
        self.total_infected = seeds.rumors().len();
        self.total_protected = seeds.protectors().len();
        for &r in seeds.rumors() {
            assert!(r.index() < n, "seed {r} out of bounds");
            self.mark(r, Status::Infected, 0);
        }
        for &p in seeds.protectors() {
            assert!(p.index() < n, "seed {p} out of bounds");
            self.mark(p, Status::Protected, 0);
        }
        self.trace.push(HopRecord {
            hop: 0,
            new_infected: self.total_infected,
            new_protected: self.total_protected,
            total_infected: self.total_infected,
            total_protected: self.total_protected,
        });
    }

    /// Debug-build backstop for the epoch scheme: the per-node result
    /// arrays must be sized together, every stamp must come from a
    /// past epoch (a stamp ahead of the counter would let a *future*
    /// run silently resurrect stale results), and the claim staging
    /// array must have been restored to all-zeros by the previous
    /// model run, as the field contract requires.
    #[cfg(debug_assertions)]
    fn debug_check_epoch_consistency(&self, n: usize) {
        assert!(
            self.stamp.len() == self.status.len() && self.stamp.len() == self.hop.len(),
            "epoch-stamped arrays diverged: stamp {} / status {} / hop {}",
            self.stamp.len(),
            self.status.len(),
            self.hop.len()
        );
        assert!(
            self.stamp.len() >= n && self.claim.len() >= n,
            "per-node buffers not grown to {n} nodes"
        );
        let ahead = self.stamp.iter().position(|&s| s > self.epoch);
        assert!(
            ahead.is_none(),
            "stamp[{ahead:?}] is ahead of the current epoch {}",
            self.epoch
        );
        let dirty = self.claim[..n].iter().position(|&c| c != 0);
        assert!(
            dirty.is_none(),
            "claim[{dirty:?}] was left set by the previous run; models must restore claim to zero"
        );
    }

    #[inline]
    fn mark(&mut self, v: NodeId, status: Status, hop: u32) {
        let i = v.index();
        self.stamp[i] = self.epoch;
        self.status[i] = status;
        self.hop[i] = hop;
    }

    /// Activates the nodes staged in `new_protected` / `new_infected`
    /// at `hop` and appends a trace record. The staged lists are left
    /// intact for frontier bookkeeping.
    pub(crate) fn commit_hop(&mut self, hop: u32) {
        for i in 0..self.new_protected.len() {
            let v = self.new_protected[i];
            debug_assert!(self.is_inactive(v), "node {v} already active");
            self.mark(v, Status::Protected, hop);
        }
        for i in 0..self.new_infected.len() {
            let v = self.new_infected[i];
            debug_assert!(self.is_inactive(v), "node {v} already active");
            self.mark(v, Status::Infected, hop);
        }
        self.total_infected += self.new_infected.len();
        self.total_protected += self.new_protected.len();
        self.trace.push(HopRecord {
            hop,
            new_infected: self.new_infected.len(),
            new_protected: self.new_protected.len(),
            total_infected: self.total_infected,
            total_protected: self.total_protected,
        });
    }

    /// Records whether the run stopped by quiescence (vs hop budget).
    pub(crate) fn set_quiescent(&mut self, quiescent: bool) {
        self.quiescent = quiescent;
    }

    /// `true` if `node` has not been activated in the current run.
    #[inline]
    pub(crate) fn is_inactive(&self, node: NodeId) -> bool {
        self.stamp[node.index()] != self.epoch
    }

    /// Number of nodes of the graph the last run was executed on.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Final status of `node` after the last run.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the last run's graph.
    #[inline]
    #[must_use]
    pub fn status(&self, node: NodeId) -> Status {
        let i = node.index();
        assert!(i < self.node_count, "node {node} out of bounds");
        if self.stamp[i] == self.epoch {
            self.status[i]
        } else {
            Status::Inactive
        }
    }

    /// The hop at which `node` activated in the last run (`Some(0)`
    /// for seeds), or `None` if it stayed inactive.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the last run's graph.
    #[inline]
    #[must_use]
    pub fn activation_hop(&self, node: NodeId) -> Option<u32> {
        let i = node.index();
        assert!(i < self.node_count, "node {node} out of bounds");
        if self.stamp[i] == self.epoch {
            Some(self.hop[i])
        } else {
            None
        }
    }

    /// The last run's hop-by-hop trace, starting with hop 0.
    #[inline]
    #[must_use]
    pub fn trace(&self) -> &[HopRecord] {
        &self.trace
    }

    /// `true` if the last run stopped because no further activation
    /// was possible (as opposed to exhausting the hop budget).
    #[inline]
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Total number of infected nodes after the last run.
    #[must_use]
    pub fn infected_count(&self) -> usize {
        self.trace.last().map_or(0, |r| r.total_infected)
    }

    /// Total number of protected nodes after the last run.
    #[must_use]
    pub fn protected_count(&self) -> usize {
        self.trace.last().map_or(0, |r| r.total_protected)
    }

    /// Materializes the last run as an owned [`DiffusionOutcome`].
    ///
    /// This allocates; hot loops should read the workspace directly.
    #[must_use]
    pub fn to_outcome(&self) -> DiffusionOutcome {
        let n = self.node_count;
        let status = (0..n).map(|i| self.status(NodeId::new(i))).collect();
        let hops = (0..n)
            .map(|i| self.activation_hop(NodeId::new(i)))
            .collect();
        // xtask-allow: bufclone -- documented allocating conversion; hot loops read the workspace directly
        DiffusionOutcome::new(status, hops, self.trace.clone(), self.quiescent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::DiGraph;

    fn seeds(g: &DiGraph) -> SeedSets {
        SeedSets::new(g, vec![NodeId::new(0)], vec![NodeId::new(1)]).unwrap()
    }

    #[test]
    fn begin_places_seeds_and_seed_record() {
        let g = DiGraph::with_nodes(4);
        let mut ws = SimWorkspace::new();
        ws.begin(4, &seeds(&g));
        assert_eq!(ws.status(NodeId::new(0)), Status::Infected);
        assert_eq!(ws.status(NodeId::new(1)), Status::Protected);
        assert_eq!(ws.status(NodeId::new(2)), Status::Inactive);
        assert_eq!(ws.activation_hop(NodeId::new(0)), Some(0));
        assert_eq!(ws.activation_hop(NodeId::new(2)), None);
        assert_eq!(ws.trace().len(), 1);
        assert_eq!(ws.infected_count(), 1);
        assert_eq!(ws.protected_count(), 1);
    }

    #[test]
    fn commit_hop_matches_state_tracker_semantics() {
        let g = DiGraph::with_nodes(5);
        let mut ws = SimWorkspace::new();
        ws.begin(5, &seeds(&g));
        ws.new_protected.push(NodeId::new(2));
        ws.new_infected.push(NodeId::new(3));
        ws.commit_hop(1);
        ws.set_quiescent(false);
        let o = ws.to_outcome();
        assert_eq!(o.trace().len(), 2);
        let rec = o.trace()[1];
        assert_eq!(rec.hop, 1);
        assert_eq!(rec.new_infected, 1);
        assert_eq!(rec.new_protected, 1);
        assert_eq!(rec.total_infected, 2);
        assert_eq!(o.activation_hop(NodeId::new(3)), Some(1));
        assert_eq!(o.activation_hop(NodeId::new(4)), None);
        assert!(!o.is_quiescent());
    }

    #[test]
    fn new_epoch_clears_previous_run_in_constant_time() {
        let g = DiGraph::with_nodes(3);
        let mut ws = SimWorkspace::new();
        ws.begin(3, &seeds(&g));
        ws.new_infected.push(NodeId::new(2));
        ws.commit_hop(1);
        assert_eq!(ws.status(NodeId::new(2)), Status::Infected);
        // Second run with different seeds: old activations invisible.
        let other = SeedSets::rumors_only(&g, vec![NodeId::new(2)]).unwrap();
        ws.new_infected.clear();
        ws.begin(3, &other);
        assert_eq!(ws.status(NodeId::new(0)), Status::Inactive);
        assert_eq!(ws.status(NodeId::new(1)), Status::Inactive);
        assert_eq!(ws.status(NodeId::new(2)), Status::Infected);
        assert_eq!(ws.trace().len(), 1);
    }

    #[test]
    fn workspace_adapts_to_smaller_graphs() {
        let big = DiGraph::with_nodes(10);
        let small = DiGraph::with_nodes(2);
        let mut ws = SimWorkspace::new();
        ws.begin(
            10,
            &SeedSets::rumors_only(&big, vec![NodeId::new(9)]).unwrap(),
        );
        ws.begin(
            2,
            &SeedSets::rumors_only(&small, vec![NodeId::new(0)]).unwrap(),
        );
        assert_eq!(ws.node_count(), 2);
        assert_eq!(ws.status(NodeId::new(0)), Status::Infected);
        assert_eq!(ws.status(NodeId::new(1)), Status::Inactive);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn status_checks_bounds_of_current_run() {
        let g = DiGraph::with_nodes(2);
        let mut ws = SimWorkspace::new();
        ws.begin(2, &SeedSets::rumors_only(&g, vec![NodeId::new(0)]).unwrap());
        let _ = ws.status(NodeId::new(5));
    }
}
