//! Reverse-reachable (RR) sketches for OPOAO protector influence.
//!
//! The LCRB-P greedy needs σ(A) = E[# bridge ends saved by protector
//! set A] for thousands of candidate sets. Monte Carlo pays a full
//! forward simulation per (set, realization) pair; the RIS estimator
//! (Tong et al., *An Efficient Randomized Algorithm for Rumor
//! Blocking in Online Social Networks*) instead samples pairs
//! (target bridge end `v`, realization φ) once, inverts each into a
//! *reverse-reachable set* RR(v, φ), and evaluates any candidate set
//! by weighted max-coverage over the fixed sketches:
//!
//! ```text
//! σ̂(A) = |B| · (always_saved + #{sketches with A ∩ RR ≠ ∅}) / θ
//! ```
//!
//! where `B` is the bridge-end set and θ the total sketch count.
//!
//! ## Semantics: the §V-A timestamp rule
//!
//! A fixed [`OpoaoRealization`] pins every `(node, hop)` choice, so
//! cascade *timing* is label-free: define the earliest-arrival time
//! `t_S(v)` of a wave seeded on set `S` (arrival 0 at seeds; at hop
//! `t`, every node with arrival `< t` targets its realized choice).
//! The sketch subsystem uses the paper's timestamp rule: `v` is
//! **saved** by protector set `A` iff `min_{u∈A} t_u(v) ≤ t_R(v)`
//! (protectors win simultaneous arrivals, matching the engine's
//! claim priority). Because protector waves from different seeds do
//! not interact, `min` over singletons is exact, which makes the
//! inversion `A saves v ⟺ A ∩ RR(v, φ) ≠ ∅` with
//! `RR(v, φ) = {u : t_u(v, φ) ≤ t_R(v, φ)}` an identity — not an
//! approximation — under this rule.
//!
//! The stepwise engine ([`crate::OpoaoModel`]) differs from the
//! timestamp rule only on *interior* ties: when the earliest
//! protector path reaches an intermediate node at the exact hop the
//! rumor claims it, the engine lets the rumor absorb the relay while
//! the timestamp rule lets the wave pass. Strictly faster protector
//! paths are always honored by both. The residual tie bias is part
//! of the estimator's error budget and is covered by the statistical
//! equivalence harness (`tests/estimator_equivalence.rs`).
//!
//! ## Generation
//!
//! Per sketch: a forward temporal pass from the rumor seeds finds
//! `τ = t_R(v)` (early-exiting at `v`; if the rumor never arrives
//! within the hop budget the sketch is *always saved* and stores no
//! set), then a backward pass computes, bucket by bucket from `τ`
//! down, the latest activation time `β(u)` from which `u` still
//! delivers to `v` by `τ`; every discovered node (β ≥ 0) joins
//! RR(v, φ). Both passes run on epoch-versioned scratch
//! ([`RrScratch`], the [`crate::SimWorkspace`] pattern), so
//! steady-state generation performs no allocation and touches only
//! O(|reached|) state, not O(n).

use lcrb_graph::{CsrGraph, NodeId};

use crate::budget::{StopReason, WorkMeter};
use crate::realization::OpoaoRealization;

/// A batch of RR sketches in CSR-style arena storage.
///
/// Stored sketches keep their member nodes contiguously
/// (`offsets`/`members`), plus the sampled target and its rumor
/// arrival time. Sketches whose target the rumor cannot reach within
/// the hop budget are *always saved*: they contribute to the
/// estimator numerator for every candidate set and store no member
/// list (only a counter).
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::{rr_sketch_into, OpoaoRealization, RrScratch, SketchBatch};
/// use lcrb_graph::{CsrGraph, DiGraph, NodeId};
///
/// let mut g = DiGraph::new();
/// for _ in 0..3 {
///     g.add_node();
/// }
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// let csr = CsrGraph::from_digraph(&g);
///
/// let mut scratch = RrScratch::new();
/// let mut batch = SketchBatch::new();
/// let stored = rr_sketch_into(
///     &csr,
///     &[NodeId::new(0)],
///     NodeId::new(2),
///     &OpoaoRealization::new(7),
///     31,
///     &mut scratch,
///     &mut batch,
/// );
/// // On a path graph every choice is forced: the rumor reaches node
/// // 2 at hop 2, and the RR set contains all three nodes.
/// assert!(stored);
/// assert_eq!(batch.total(), 1);
/// assert_eq!(batch.arrival(0), 2);
/// assert_eq!(batch.members(0).len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchBatch {
    /// `members` arena boundaries; `offsets.len() == set_count + 1`.
    offsets: Vec<u32>,
    members: Vec<NodeId>,
    targets: Vec<NodeId>,
    arrivals: Vec<u32>,
    always_saved: u64,
    total: u64,
}

impl SketchBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        SketchBatch {
            // xtask-allow: hotpath -- one-time construction; generation appends into these retained buffers
            offsets: vec![0],
            // xtask-allow: hotpath -- one-time construction; generation appends into these retained buffers
            members: Vec::new(),
            // xtask-allow: hotpath -- one-time construction; generation appends into these retained buffers
            targets: Vec::new(),
            // xtask-allow: hotpath -- one-time construction; generation appends into these retained buffers
            arrivals: Vec::new(),
            always_saved: 0,
            total: 0,
        }
    }

    /// Discards all sketches but keeps the allocated arenas.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.members.clear();
        self.targets.clear();
        self.arrivals.clear();
        self.always_saved = 0;
        self.total = 0;
    }

    /// Number of *stored* sketches (excludes always-saved ones).
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.targets.len()
    }

    /// Total sketches drawn, including always-saved ones (the θ of
    /// the estimator denominator).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sketches whose target the rumor never reaches — saved under
    /// every candidate set.
    #[must_use]
    pub fn always_saved(&self) -> u64 {
        self.always_saved
    }

    /// Member nodes of stored sketch `i` (target included).
    ///
    /// # Panics
    ///
    /// Panics if `i >= set_count()`.
    #[must_use]
    pub fn members(&self, i: usize) -> &[NodeId] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.members[lo..hi]
    }

    /// The sampled target bridge end of stored sketch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= set_count()`.
    #[must_use]
    pub fn target(&self, i: usize) -> NodeId {
        self.targets[i]
    }

    /// Rumor arrival time `t_R(target)` of stored sketch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= set_count()`.
    #[must_use]
    pub fn arrival(&self, i: usize) -> u32 {
        self.arrivals[i]
    }

    /// Total member entries across all stored sketches.
    #[must_use]
    pub fn member_entries(&self) -> usize {
        self.members.len()
    }
}

impl Default for SketchBatch {
    fn default() -> Self {
        SketchBatch::new()
    }
}

/// Epoch-versioned scratch for RR-sketch generation.
///
/// Mirrors [`crate::SimWorkspace`]: per-node arrays carry a stamp and
/// are logically reset by bumping an epoch counter, so a sketch costs
/// O(|touched nodes|), not O(n), and steady-state generation
/// allocates nothing once the buffers have grown to the graph size.
#[derive(Clone, Debug, Default)]
pub struct RrScratch {
    epoch: u32,
    /// Forward pass: rumor earliest-arrival hop per node.
    arrival: Vec<u32>,
    arrival_stamp: Vec<u32>,
    /// Forward pass: unreached out-neighbor counts (lazy-initialized
    /// on first touch so reinitialization is O(touched)).
    remaining: Vec<u32>,
    remaining_stamp: Vec<u32>,
    /// Backward pass: latest delivering activation hop per node.
    beta: Vec<u32>,
    beta_stamp: Vec<u32>,
    frontier: Vec<NodeId>,
    reached: Vec<NodeId>,
    /// Backward bucket queue indexed by β; buckets are drained after
    /// use, so only the spine persists between sketches.
    buckets: Vec<Vec<NodeId>>,
}

impl RrScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// retained across sketches.
    #[must_use]
    pub fn new() -> Self {
        RrScratch::default()
    }

    /// Grows per-node buffers to `n` and the bucket spine to
    /// `max_hops + 1`; no-ops (and does not allocate) once sized.
    fn ensure(&mut self, n: usize, max_hops: u32) {
        if self.arrival.len() < n {
            self.arrival.resize(n, 0);
            self.arrival_stamp.resize(n, 0);
            self.remaining.resize(n, 0);
            self.remaining_stamp.resize(n, 0);
            self.beta.resize(n, 0);
            self.beta_stamp.resize(n, 0);
        }
        let spine = max_hops as usize + 1;
        if self.buckets.len() < spine {
            // xtask-allow: hotpath -- bucket spine grows once per hop-budget increase, then is reused
            self.buckets.resize_with(spine, Vec::new);
        }
    }

    /// Opens a new sketch epoch, invalidating all stamped state.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.arrival_stamp.fill(0);
            self.remaining_stamp.fill(0);
            self.beta_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Generates one RR sketch for `target` under `realization` and
/// appends it to `batch`.
///
/// The rumor cascade is seeded on `rumors`; `max_hops` bounds both
/// the forward arrival search and (through `τ = t_R(target)`) the
/// backward traversal. Returns `true` if a member set was stored,
/// `false` if the rumor cannot reach `target` within `max_hops` and
/// the sketch was recorded as always-saved.
///
/// Members are exactly `{u : t_u(target, φ) ≤ t_R(target, φ)}` under
/// the §V-A timestamp rule (protectors win ties; see the module-level
/// commentary in `sketch.rs` and DESIGN.md) — the
/// target itself is always a member, and rumor seeds are *not*
/// filtered out (callers place protectors, and protector candidates
/// never overlap rumor seeds).
///
/// # Panics
///
/// Panics if `target` or any rumor seed is out of bounds for `graph`.
pub fn rr_sketch_into(
    graph: &CsrGraph,
    rumors: &[NodeId],
    target: NodeId,
    realization: &OpoaoRealization,
    max_hops: u32,
    scratch: &mut RrScratch,
    batch: &mut SketchBatch,
) -> bool {
    let n = graph.node_count();
    assert!(target.index() < n, "sketch target {target} out of bounds");
    scratch.ensure(n, max_hops);
    let epoch = scratch.next_epoch();

    let tau = forward_arrival(graph, rumors, target, realization, max_hops, scratch, epoch);
    let Some(tau) = tau else {
        batch.always_saved += 1;
        batch.total += 1;
        return false;
    };
    backward_collect(graph, target, tau, realization, scratch, epoch, batch);
    batch.total += 1;
    true
}

/// Generates sketches `start..end` (global indices) into `batch`,
/// metered: each sketch is a checkpoint — the meter is polled and one
/// sketch is charged before it is drawn.
///
/// `draw` maps a global sketch index to its `(target, realization)`
/// pair; keeping the drawing rule in the caller keeps this loop
/// independent of how targets and seeds are derived, and the
/// index-based contract is what makes budget truncation deterministic
/// (sketch `g` is the same sketch regardless of where the budget
/// stops).
///
/// Returns the number of sketches actually generated. A return less
/// than `end - start` means [`crate::RunBudget::max_sketches`] was
/// reached — a valid truncation, the caller widens its confidence
/// interval accordingly.
///
/// # Errors
///
/// [`StopReason::Cancelled`] / [`StopReason::DeadlineExpired`] when a
/// poll observes them; sketches generated before the stop are already
/// in `batch` but the caller is expected to abandon the build.
#[allow(clippy::too_many_arguments)]
pub fn rr_sketch_batch_into(
    graph: &CsrGraph,
    rumors: &[NodeId],
    mut draw: impl FnMut(u64) -> (NodeId, OpoaoRealization),
    start: u64,
    end: u64,
    max_hops: u32,
    scratch: &mut RrScratch,
    batch: &mut SketchBatch,
    meter: &mut WorkMeter,
) -> Result<u64, StopReason> {
    for g in start..end {
        match meter.charge_sketch() {
            Ok(()) => {}
            Err(StopReason::SketchBudget) => return Ok(g - start),
            Err(stop) => return Err(stop),
        }
        let (target, realization) = draw(g);
        rr_sketch_into(
            graph,
            rumors,
            target,
            &realization,
            max_hops,
            scratch,
            batch,
        );
    }
    Ok(end - start)
}

/// Forward temporal pass: earliest rumor arrival at `target`, or
/// `None` if unreached within `max_hops`. Early-exits the hop the
/// target is first claimed.
fn forward_arrival(
    graph: &CsrGraph,
    rumors: &[NodeId],
    target: NodeId,
    realization: &OpoaoRealization,
    max_hops: u32,
    scratch: &mut RrScratch,
    epoch: u32,
) -> Option<u32> {
    let n = graph.node_count();
    scratch.frontier.clear();
    scratch.reached.clear();
    for &r in rumors {
        assert!(r.index() < n, "rumor seed {r} out of bounds");
        if scratch.arrival_stamp[r.index()] != epoch {
            scratch.arrival_stamp[r.index()] = epoch;
            scratch.arrival[r.index()] = 0;
            scratch.reached.push(r);
        }
    }
    if scratch.arrival_stamp[target.index()] == epoch {
        return Some(0);
    }
    settle_reached(graph, scratch, epoch);
    for hop in 1..=max_hops {
        let remaining = &scratch.remaining;
        let remaining_stamp = &scratch.remaining_stamp;
        // Retire nodes with no unreached out-neighbors; an unstamped
        // counter means no out-neighbor has been reached yet.
        scratch
            .frontier
            .retain(|&u| remaining_stamp[u.index()] != epoch || remaining[u.index()] > 0);
        if scratch.frontier.is_empty() {
            return None;
        }
        scratch.reached.clear();
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            let degree = graph.out_degree(u);
            let w = graph.out_neighbors(u)[realization.choice(u, hop, degree)];
            if scratch.arrival_stamp[w.index()] != epoch {
                scratch.arrival_stamp[w.index()] = epoch;
                scratch.arrival[w.index()] = hop;
                if w == target {
                    return Some(hop);
                }
                scratch.reached.push(w);
            }
        }
        settle_reached(graph, scratch, epoch);
    }
    None
}

/// Commits this hop's reach events: decrements in-neighbor counters
/// (lazily initializing them to the out-degree) and enlists newly
/// reached nodes that can still forward.
fn settle_reached(graph: &CsrGraph, scratch: &mut RrScratch, epoch: u32) {
    for i in 0..scratch.reached.len() {
        let w = scratch.reached[i];
        for &u in graph.in_neighbors(w) {
            if scratch.remaining_stamp[u.index()] != epoch {
                scratch.remaining_stamp[u.index()] = epoch;
                scratch.remaining[u.index()] = graph.out_degree(u) as u32;
            }
            scratch.remaining[u.index()] -= 1;
        }
        if graph.out_degree(w) > 0 {
            scratch.frontier.push(w);
        }
    }
}

/// Backward pass: collects `{u : t_u(target) ≤ τ}` into `batch` by
/// propagating latest delivering activation times `β` through a
/// bucket queue processed from `β = τ` downward.
///
/// For an in-edge `u → w` with `β(w) = b`, `u` forwards to `w` at
/// hop `s` iff `s ≤ b` and the realized choice of `(u, s)` lands on
/// `w`; the largest such `s` yields the candidate `β(u) = s − 1`.
/// Since candidates are strictly below the bucket being drained,
/// each node is final the first time it is popped at its recorded β.
fn backward_collect(
    graph: &CsrGraph,
    target: NodeId,
    tau: u32,
    realization: &OpoaoRealization,
    scratch: &mut RrScratch,
    epoch: u32,
    batch: &mut SketchBatch,
) {
    scratch.beta_stamp[target.index()] = epoch;
    scratch.beta[target.index()] = tau;
    batch.members.push(target);
    scratch.buckets[tau as usize].clear();
    scratch.buckets[tau as usize].push(target);
    for b in (1..=tau).rev() {
        let mut i = 0;
        while i < scratch.buckets[b as usize].len() {
            let w = scratch.buckets[b as usize][i];
            i += 1;
            if scratch.beta[w.index()] != b {
                continue; // superseded by a later (larger-β) relaxation
            }
            for &u in graph.in_neighbors(w) {
                let degree = graph.out_degree(u);
                let mut found = None;
                let mut s = b;
                while s >= 1 {
                    if graph.out_neighbors(u)[realization.choice(u, s, degree)] == w {
                        found = Some(s);
                        break;
                    }
                    s -= 1;
                }
                let Some(s) = found else { continue };
                let candidate = s - 1;
                if scratch.beta_stamp[u.index()] == epoch {
                    if scratch.beta[u.index()] >= candidate {
                        continue;
                    }
                } else {
                    scratch.beta_stamp[u.index()] = epoch;
                    batch.members.push(u);
                }
                scratch.beta[u.index()] = candidate;
                scratch.buckets[candidate as usize].push(u);
            }
        }
        scratch.buckets[b as usize].clear();
    }
    scratch.buckets[0].clear();
    debug_assert!(u32::try_from(batch.members.len()).is_ok());
    batch.offsets.push(batch.members.len() as u32);
    batch.targets.push(target);
    batch.arrivals.push(tau);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::DiGraph;

    fn path_graph(n: u32) -> CsrGraph {
        let mut g = DiGraph::new();
        for _ in 0..n {
            g.add_node();
        }
        for i in 0..n - 1 {
            g.add_edge(NodeId::from_raw(i), NodeId::from_raw(i + 1))
                .unwrap();
        }
        CsrGraph::from_digraph(&g)
    }

    /// Reference: forward temporal arrival of a single-source wave,
    /// computed the slow exhaustive way (all active nodes choose at
    /// every hop).
    fn reference_arrival(
        graph: &CsrGraph,
        sources: &[NodeId],
        target: NodeId,
        r: &OpoaoRealization,
        max_hops: u32,
    ) -> Option<u32> {
        let n = graph.node_count();
        let mut arrival = vec![u32::MAX; n];
        for &s in sources {
            arrival[s.index()] = 0;
        }
        if arrival[target.index()] == 0 {
            return Some(0);
        }
        for hop in 1..=max_hops {
            let mut claims = Vec::new();
            for (v, &t) in arrival.iter().enumerate() {
                let u = NodeId::new(v);
                if t < hop && graph.out_degree(u) > 0 {
                    let w = graph.out_neighbors(u)[r.choice(u, hop, graph.out_degree(u))];
                    claims.push(w);
                }
            }
            for w in claims {
                if arrival[w.index()] == u32::MAX {
                    arrival[w.index()] = hop;
                }
            }
            if arrival[target.index()] != u32::MAX {
                return Some(hop);
            }
        }
        None
    }

    #[test]
    fn path_graph_sketch_is_whole_path() {
        let csr = path_graph(5);
        let mut scratch = RrScratch::new();
        let mut batch = SketchBatch::new();
        let stored = rr_sketch_into(
            &csr,
            &[NodeId::new(0)],
            NodeId::new(4),
            &OpoaoRealization::new(3),
            31,
            &mut scratch,
            &mut batch,
        );
        assert!(stored);
        assert_eq!(batch.arrival(0), 4);
        let mut members: Vec<u32> = batch.members(0).iter().map(|v| v.raw()).collect();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4]);
        assert_eq!(batch.always_saved(), 0);
        assert_eq!(batch.total(), 1);
    }

    #[test]
    fn unreachable_target_counts_as_always_saved() {
        // Edge points away from the target component.
        let mut g = DiGraph::new();
        for _ in 0..3 {
            g.add_node();
        }
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let csr = CsrGraph::from_digraph(&g);
        let mut scratch = RrScratch::new();
        let mut batch = SketchBatch::new();
        let stored = rr_sketch_into(
            &csr,
            &[NodeId::new(0)],
            NodeId::new(2),
            &OpoaoRealization::new(3),
            31,
            &mut scratch,
            &mut batch,
        );
        assert!(!stored);
        assert_eq!(batch.set_count(), 0);
        assert_eq!(batch.always_saved(), 1);
        assert_eq!(batch.total(), 1);
    }

    #[test]
    fn rumor_seed_target_stores_singleton() {
        let csr = path_graph(3);
        let mut scratch = RrScratch::new();
        let mut batch = SketchBatch::new();
        let stored = rr_sketch_into(
            &csr,
            &[NodeId::new(1)],
            NodeId::new(1),
            &OpoaoRealization::new(9),
            31,
            &mut scratch,
            &mut batch,
        );
        assert!(stored);
        assert_eq!(batch.arrival(0), 0);
        assert_eq!(batch.members(0), &[NodeId::new(1)]);
    }

    #[test]
    fn members_match_timestamp_rule_on_random_graphs() {
        // On small random graphs, u ∈ RR(v) ⟺ t_u(v) ≤ t_R(v) where
        // both sides use the reference arrival computation.
        let mut edges_seed = 0xC0FFEEu64;
        for trial in 0..40u64 {
            let n = 6u32;
            let mut g = DiGraph::new();
            for _ in 0..n {
                g.add_node();
            }
            for a in 0..n {
                for b in 0..n {
                    edges_seed = edges_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if a != b && edges_seed >> 61 == 0 {
                        g.add_edge(NodeId::from_raw(a), NodeId::from_raw(b))
                            .unwrap();
                    }
                }
            }
            let csr = CsrGraph::from_digraph(&g);
            let rumors = [NodeId::new(0)];
            let target = NodeId::from_raw(n - 1);
            let r = OpoaoRealization::new(trial);
            let mut scratch = RrScratch::new();
            let mut batch = SketchBatch::new();
            let stored = rr_sketch_into(&csr, &rumors, target, &r, 31, &mut scratch, &mut batch);
            let tau = reference_arrival(&csr, &rumors, target, &r, 31);
            assert_eq!(stored, tau.is_some(), "trial {trial}");
            let Some(tau) = tau else { continue };
            assert_eq!(batch.arrival(0), tau, "trial {trial}");
            let members: std::collections::BTreeSet<NodeId> =
                batch.members(0).iter().copied().collect();
            for v in 0..n {
                let u = NodeId::from_raw(v);
                let tu = reference_arrival(&csr, &[u], target, &r, tau);
                let in_rr = tu.is_some_and(|t| t <= tau);
                assert_eq!(
                    members.contains(&u),
                    in_rr,
                    "trial {trial}: node {u} τ={tau} t_u={tu:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_sketches() {
        let csr = path_graph(6);
        let mut scratch = RrScratch::new();
        let mut fresh = SketchBatch::new();
        rr_sketch_into(
            &csr,
            &[NodeId::new(0)],
            NodeId::new(5),
            &OpoaoRealization::new(1),
            31,
            &mut RrScratch::new(),
            &mut fresh,
        );
        let mut reused = SketchBatch::new();
        for round in 0..100u64 {
            // Interleave other targets/realizations to dirty the scratch.
            let mut junk = SketchBatch::new();
            rr_sketch_into(
                &csr,
                &[NodeId::new(2)],
                NodeId::new(4),
                &OpoaoRealization::new(round),
                31,
                &mut scratch,
                &mut junk,
            );
            reused.clear();
            rr_sketch_into(
                &csr,
                &[NodeId::new(0)],
                NodeId::new(5),
                &OpoaoRealization::new(1),
                31,
                &mut scratch,
                &mut reused,
            );
            assert_eq!(reused, fresh, "round {round}");
        }
    }

    #[test]
    fn batch_clear_retains_nothing_logical() {
        let csr = path_graph(4);
        let mut scratch = RrScratch::new();
        let mut batch = SketchBatch::new();
        rr_sketch_into(
            &csr,
            &[NodeId::new(0)],
            NodeId::new(3),
            &OpoaoRealization::new(5),
            31,
            &mut scratch,
            &mut batch,
        );
        assert_eq!(batch.set_count(), 1);
        batch.clear();
        assert_eq!(batch.set_count(), 0);
        assert_eq!(batch.total(), 0);
        assert_eq!(batch.always_saved(), 0);
        assert_eq!(batch.member_entries(), 0);
    }
}
