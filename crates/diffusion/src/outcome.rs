//! Diffusion outcomes: per-node statuses, activation times, and
//! hop-by-hop traces (the raw material for the paper's Figures 4–9).

// xtask-allow-file: index -- status/activation arrays are node_count-sized by the workspace that assembles the outcome
use lcrb_graph::NodeId;

use crate::SeedSets;

/// The status of a node during or after a two-cascade diffusion
/// (§III of the paper: infected by the rumor cascade R, protected by
/// the protector cascade P, or still inactive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Status {
    /// Not reached by either cascade.
    #[default]
    Inactive,
    /// Activated by the rumor cascade R.
    Infected,
    /// Activated by the protector cascade P.
    Protected,
}

impl Status {
    /// `true` for [`Status::Infected`].
    #[inline]
    #[must_use]
    pub fn is_infected(self) -> bool {
        self == Status::Infected
    }

    /// `true` for [`Status::Protected`].
    #[inline]
    #[must_use]
    pub fn is_protected(self) -> bool {
        self == Status::Protected
    }

    /// `true` unless the node is [`Status::Inactive`].
    #[inline]
    #[must_use]
    pub fn is_active(self) -> bool {
        self != Status::Inactive
    }
}

/// Activity counts after one diffusion hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Hop number (0 = seed placement).
    pub hop: u32,
    /// Nodes newly infected at this hop.
    pub new_infected: usize,
    /// Nodes newly protected at this hop.
    pub new_protected: usize,
    /// Cumulative infected count after this hop.
    pub total_infected: usize,
    /// Cumulative protected count after this hop.
    pub total_protected: usize,
}

/// The complete result of one two-cascade diffusion run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffusionOutcome {
    status: Vec<Status>,
    activation_hop: Vec<Option<u32>>,
    trace: Vec<HopRecord>,
    quiescent: bool,
}

impl DiffusionOutcome {
    /// Assembles an outcome from raw per-node data and a trace.
    ///
    /// # Panics
    ///
    /// Panics if `status` and `activation_hop` have different lengths
    /// or the trace is empty.
    #[must_use]
    pub fn new(
        status: Vec<Status>,
        activation_hop: Vec<Option<u32>>,
        trace: Vec<HopRecord>,
        quiescent: bool,
    ) -> Self {
        assert_eq!(
            status.len(),
            activation_hop.len(),
            "status / activation length mismatch"
        );
        assert!(!trace.is_empty(), "trace must include the seed hop");
        DiffusionOutcome {
            status,
            activation_hop,
            trace,
            quiescent,
        }
    }

    /// Final status of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    #[must_use]
    pub fn status(&self, node: NodeId) -> Status {
        self.status[node.index()]
    }

    /// All final statuses, indexed by node.
    #[inline]
    #[must_use]
    pub fn statuses(&self) -> &[Status] {
        &self.status
    }

    /// The hop at which `node` activated (`Some(0)` for seeds), or
    /// `None` if it stayed inactive.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    #[must_use]
    pub fn activation_hop(&self, node: NodeId) -> Option<u32> {
        self.activation_hop[node.index()]
    }

    /// Total number of infected nodes.
    #[must_use]
    pub fn infected_count(&self) -> usize {
        self.trace.last().map_or(0, |r| r.total_infected)
    }

    /// Total number of protected nodes.
    #[must_use]
    pub fn protected_count(&self) -> usize {
        self.trace.last().map_or(0, |r| r.total_protected)
    }

    /// Ids of all infected nodes, in increasing order.
    #[must_use]
    pub fn infected_nodes(&self) -> Vec<NodeId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_infected())
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Ids of all protected nodes, in increasing order.
    #[must_use]
    pub fn protected_nodes(&self) -> Vec<NodeId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_protected())
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// The hop-by-hop trace, starting with hop 0 (seed placement).
    #[inline]
    #[must_use]
    pub fn trace(&self) -> &[HopRecord] {
        &self.trace
    }

    /// Cumulative infected count after `hop`; if the run went
    /// quiescent earlier, the final value is carried forward.
    #[must_use]
    pub fn infected_at_hop(&self, hop: u32) -> usize {
        let idx = (hop as usize).min(self.trace.len() - 1);
        self.trace[idx].total_infected
    }

    /// `true` if the run stopped because no further activation was
    /// possible (as opposed to exhausting the hop budget).
    #[inline]
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }
}

/// Incremental state shared by all model implementations in this
/// crate. Tracks statuses, activation hops, and the trace while a
/// simulation assigns activations hop by hop.
#[derive(Clone, Debug)]
pub(crate) struct StateTracker {
    pub status: Vec<Status>,
    pub activation_hop: Vec<Option<u32>>,
    trace: Vec<HopRecord>,
    total_infected: usize,
    total_protected: usize,
}

impl StateTracker {
    /// Initializes hop 0 from the seed sets.
    pub fn from_seeds(node_count: usize, seeds: &SeedSets) -> Self {
        let mut tracker = StateTracker {
            status: vec![Status::Inactive; node_count],
            activation_hop: vec![None; node_count],
            trace: Vec::new(),
            total_infected: 0,
            total_protected: 0,
        };
        for &r in seeds.rumors() {
            tracker.status[r.index()] = Status::Infected;
            tracker.activation_hop[r.index()] = Some(0);
        }
        for &p in seeds.protectors() {
            tracker.status[p.index()] = Status::Protected;
            tracker.activation_hop[p.index()] = Some(0);
        }
        tracker.total_infected = seeds.rumors().len();
        tracker.total_protected = seeds.protectors().len();
        tracker.trace.push(HopRecord {
            hop: 0,
            new_infected: tracker.total_infected,
            new_protected: tracker.total_protected,
            total_infected: tracker.total_infected,
            total_protected: tracker.total_protected,
        });
        tracker
    }

    #[inline]
    pub fn is_inactive(&self, node: NodeId) -> bool {
        self.status[node.index()] == Status::Inactive
    }

    /// Activates a batch of nodes at `hop` and appends a trace
    /// record. Nodes must currently be inactive.
    pub fn activate_hop(
        &mut self,
        hop: u32,
        newly_protected: &[NodeId],
        newly_infected: &[NodeId],
    ) {
        for &v in newly_protected {
            debug_assert!(self.is_inactive(v));
            self.status[v.index()] = Status::Protected;
            self.activation_hop[v.index()] = Some(hop);
        }
        for &v in newly_infected {
            debug_assert!(self.is_inactive(v));
            self.status[v.index()] = Status::Infected;
            self.activation_hop[v.index()] = Some(hop);
        }
        self.total_infected += newly_infected.len();
        self.total_protected += newly_protected.len();
        self.trace.push(HopRecord {
            hop,
            new_infected: newly_infected.len(),
            new_protected: newly_protected.len(),
            total_infected: self.total_infected,
            total_protected: self.total_protected,
        });
    }

    pub fn finish(self, quiescent: bool) -> DiffusionOutcome {
        DiffusionOutcome::new(self.status, self.activation_hop, self.trace, quiescent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::DiGraph;

    fn seeds(g: &DiGraph) -> SeedSets {
        SeedSets::new(g, vec![NodeId::new(0)], vec![NodeId::new(1)]).unwrap()
    }

    #[test]
    fn tracker_initializes_from_seeds() {
        let g = DiGraph::with_nodes(4);
        let t = StateTracker::from_seeds(4, &seeds(&g));
        assert_eq!(t.status[0], Status::Infected);
        assert_eq!(t.status[1], Status::Protected);
        assert_eq!(t.status[2], Status::Inactive);
        assert_eq!(t.activation_hop[0], Some(0));
        let outcome = t.finish(true);
        assert_eq!(outcome.infected_count(), 1);
        assert_eq!(outcome.protected_count(), 1);
        assert!(outcome.is_quiescent());
    }

    #[test]
    fn activate_hop_updates_trace() {
        let g = DiGraph::with_nodes(5);
        let mut t = StateTracker::from_seeds(5, &seeds(&g));
        t.activate_hop(1, &[NodeId::new(2)], &[NodeId::new(3)]);
        let outcome = t.finish(false);
        assert_eq!(outcome.trace().len(), 2);
        let rec = outcome.trace()[1];
        assert_eq!(rec.hop, 1);
        assert_eq!(rec.new_infected, 1);
        assert_eq!(rec.new_protected, 1);
        assert_eq!(rec.total_infected, 2);
        assert_eq!(outcome.activation_hop(NodeId::new(3)), Some(1));
        assert_eq!(outcome.activation_hop(NodeId::new(4)), None);
        assert!(!outcome.is_quiescent());
    }

    #[test]
    fn infected_at_hop_carries_final_value_forward() {
        let g = DiGraph::with_nodes(3);
        let mut t = StateTracker::from_seeds(3, &seeds(&g));
        t.activate_hop(1, &[], &[NodeId::new(2)]);
        let outcome = t.finish(true);
        assert_eq!(outcome.infected_at_hop(0), 1);
        assert_eq!(outcome.infected_at_hop(1), 2);
        assert_eq!(outcome.infected_at_hop(30), 2);
    }

    #[test]
    fn node_lists_are_sorted_and_complete() {
        let g = DiGraph::with_nodes(6);
        let mut t = StateTracker::from_seeds(6, &seeds(&g));
        t.activate_hop(1, &[NodeId::new(5)], &[NodeId::new(3), NodeId::new(4)]);
        let o = t.finish(true);
        assert_eq!(
            o.infected_nodes(),
            vec![NodeId::new(0), NodeId::new(3), NodeId::new(4)]
        );
        assert_eq!(o.protected_nodes(), vec![NodeId::new(1), NodeId::new(5)]);
    }

    #[test]
    fn status_helpers() {
        assert!(Status::Infected.is_infected());
        assert!(!Status::Infected.is_protected());
        assert!(Status::Protected.is_active());
        assert!(!Status::Inactive.is_active());
        assert_eq!(Status::default(), Status::Inactive);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn outcome_validates_lengths() {
        let _ = DiffusionOutcome::new(
            vec![Status::Inactive; 3],
            vec![None; 2],
            vec![HopRecord {
                hop: 0,
                new_infected: 0,
                new_protected: 0,
                total_infected: 0,
                total_protected: 0,
            }],
            true,
        );
    }
}
