//! # lcrb-diffusion
//!
//! Two-cascade diffusion engine for the reproduction of *Least Cost
//! Rumor Blocking in Social Networks* (Fan et al., ICDCS 2013).
//!
//! The paper studies a rumor cascade R and a protector cascade P
//! spreading simultaneously on a directed social graph, under two
//! models (§III) sharing three properties: both cascades start at
//! step 0, P wins simultaneous arrivals, and activation is
//! progressive. This crate implements, from scratch:
//!
//! - [`OpoaoModel`]: the Opportunistic One-Activate-One model — each
//!   active node targets one uniformly random out-neighbor per step;
//! - [`DoamModel`]: the Deterministic One-Activate-Many model —
//!   newly active nodes broadcast to all inactive out-neighbors —
//!   plus [`doam_analytic`], the exact BFS-distance oracle, and
//!   [`doam_safe_targets`] for fast coverage checks;
//! - [`OpoaoRealization`]: common-random-numbers couplings of the
//!   OPOAO choices (the paper's timestamp/random-graph construction,
//!   §V-A), which make the greedy objective a deterministic
//!   submodular function per realization;
//! - [`monte_carlo`]: a thread-parallel, seed-reproducible
//!   Monte-Carlo driver over any [`TwoCascadeModel`];
//! - [`rr_sketch_into`]: reverse-reachable sketch generation under
//!   the OPOAO timestamp semantics, with [`RrScratch`] /
//!   [`SketchBatch`] storage (the RIS estimator's sampling
//!   primitive);
//! - [`CompetitiveIcModel`] / [`CompetitiveLtModel`]: the competitive
//!   IC / LT extension models from the paper's related work.
//!
//! The hot path is CSR-first: every model simulates against a frozen
//! [`lcrb_graph::CsrGraph`] snapshot with per-run scratch in a
//! reusable, epoch-versioned [`SimWorkspace`] (see
//! [`TwoCascadeModel::run_into`] and [`monte_carlo_csr`]) — snapshot
//! once, simulate many, zero steady-state allocation. The
//! `DiGraph`-based entry points remain as thin one-off wrappers.
//!
//! ## Example
//!
//! ```
//! use lcrb_diffusion::{DoamModel, SeedSets};
//! use lcrb_graph::{DiGraph, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // rumor 0 -> 1 -> 2; protector 3 -> 2 arrives at the same hop as
//! // the rumor, and the protector cascade has priority.
//! let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (3, 1)])?;
//! let seeds = SeedSets::new(&g, vec![NodeId::new(0)], vec![NodeId::new(3)])?;
//! let outcome = DoamModel::default().run_deterministic(&g, &seeds);
//! assert!(outcome.status(NodeId::new(1)).is_protected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod budget;
mod doam;
mod ic;
mod lt;
mod model;
mod montecarlo;
mod opoao;
mod outcome;
mod pool;
mod realization;
mod seeds;
mod sis;
mod sketch;
mod timestamps;
mod workspace;

pub use analytic::{doam_analytic, doam_analytic_csr, doam_safe_targets, doam_safe_targets_csr};
pub use budget::{CancelToken, RunBudget, StopReason, WorkMeter};
pub use doam::DoamModel;
pub use ic::{CompetitiveIcModel, IcRealization, InvalidProbabilityError};
pub use lt::CompetitiveLtModel;
pub use model::TwoCascadeModel;
pub use montecarlo::{
    monte_carlo, monte_carlo_csr, monte_carlo_csr_budgeted, AveragedOutcome, MonteCarloConfig,
};
pub use opoao::{OpoaoModel, PAPER_OPOAO_HOPS};
pub use outcome::{DiffusionOutcome, HopRecord, Status};
pub use pool::{ScratchLease, ScratchPool};
pub use realization::OpoaoRealization;
pub use seeds::{derive_stream, splitmix64, SeedError, SeedSets};
pub use sis::{CompetitiveSisModel, SisOutcome, SisRecord, SisState};
pub use sketch::{rr_sketch_batch_into, rr_sketch_into, RrScratch, SketchBatch};
pub use timestamps::{run_opoao_timestamped, EdgeStamp, TimestampedOutcome};
pub use workspace::SimWorkspace;
