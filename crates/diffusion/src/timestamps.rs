//! The timestamp-assignment machinery of §V-A (Fig. 1).
//!
//! The paper's submodularity proof instruments an OPOAO diffusion: at
//! each step, when an active node picks its activation target, the
//! corresponding edge receives a timestamp `t_s` recording that the
//! cascade originating at seed `s` used that edge at step `t` — and
//! repeat selections stamp the edge again (Fig. 1(a)), with only the
//! smallest timestamp per seed preserved (Fig. 1(b)). This module
//! makes that construction an explicit API so the lemmas behind
//! Theorem 1 can be checked mechanically:
//!
//! - every stamp `t_s` on an in-edge of `v` witnesses a cascade path
//!   from seed `s` arriving at `v` by step `t` (Lemma 1);
//! - a protected node's smallest protector stamp is no larger than
//!   its smallest rumor stamp (the arrival-order condition of
//!   Lemma 2).

// xtask-allow-file: index -- attribution/status arrays are node_count-sized at run start; nodes come from the same snapshot
use std::collections::BTreeMap;

use lcrb_graph::{DiGraph, NodeId};

use crate::outcome::StateTracker;
use crate::{DiffusionOutcome, OpoaoRealization, SeedSets, Status};

/// A single edge timestamp: the cascade originating at `seed` used
/// the edge at step `hop` (the paper's `hop_seed` notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeStamp {
    /// The originating seed (a rumor or protector originator).
    pub seed: NodeId,
    /// The step at which the edge was used.
    pub hop: u32,
}

/// An OPOAO run instrumented with edge timestamps and per-node seed
/// attribution, produced by [`run_opoao_timestamped`].
#[derive(Clone, Debug)]
pub struct TimestampedOutcome {
    /// The plain diffusion outcome.
    pub outcome: DiffusionOutcome,
    /// `attribution[v]` is the originating seed whose cascade
    /// activated `v` (`Some(v)` itself for seeds, `None` for inactive
    /// nodes).
    pub attribution: Vec<Option<NodeId>>,
    /// Smallest timestamp per (edge, seed), keyed by `(source,
    /// target)` — the simplified stamps of Fig. 1(b). Ordered so
    /// iteration is deterministic (the submodularity lemmas are
    /// checked by iterating stamps; see the determinism lint rule).
    stamps: BTreeMap<(NodeId, NodeId), Vec<EdgeStamp>>,
}

impl TimestampedOutcome {
    /// The preserved (smallest-per-seed) stamps on edge `(u, v)`, in
    /// first-stamped order; empty if the edge was never chosen.
    #[must_use]
    pub fn stamps_on(&self, u: NodeId, v: NodeId) -> &[EdgeStamp] {
        self.stamps.get(&(u, v)).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct edges that received at least one stamp.
    #[must_use]
    pub fn stamped_edge_count(&self) -> usize {
        self.stamps.len()
    }

    /// Iterates over all stamped edges as `((source, target),
    /// stamps)`, in ascending `(source, target)` order.
    pub fn stamped_edges(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Vec<EdgeStamp>)> {
        self.stamps.iter()
    }

    /// The smallest stamp on any in-edge of `v` originating from a
    /// seed of the given cascade (`true` = protector seeds), along
    /// with the edge source. `None` if no such stamp exists.
    #[must_use]
    pub fn earliest_incoming(
        &self,
        g: &DiGraph,
        v: NodeId,
        seeds: &SeedSets,
        protector_cascade: bool,
    ) -> Option<(NodeId, EdgeStamp)> {
        let belongs = |s: NodeId| {
            if protector_cascade {
                seeds.protectors().contains(&s)
            } else {
                seeds.rumors().contains(&s)
            }
        };
        g.in_neighbors(v)
            .iter()
            .flat_map(|&u| {
                self.stamps_on(u, v)
                    .iter()
                    .filter(|st| belongs(st.seed))
                    .map(move |st| (u, *st))
            })
            .min_by_key(|(_, st)| st.hop)
    }
}

/// Runs the OPOAO model against a fixed realization, recording the
/// full timestamp assignment of §V-A. Identical diffusion semantics
/// (and outcome) to [`crate::OpoaoModel::run_realized`] with the same
/// arguments.
///
/// # Panics
///
/// Panics if `seeds` refers to nodes outside `graph`.
#[must_use]
pub fn run_opoao_timestamped(
    graph: &DiGraph,
    seeds: &SeedSets,
    max_hops: u32,
    realization: &OpoaoRealization,
) -> TimestampedOutcome {
    let n = graph.node_count();
    let mut tracker = StateTracker::from_seeds(n, seeds);
    let mut attribution: Vec<Option<NodeId>> = vec![None; n];
    for &s in seeds.rumors().iter().chain(seeds.protectors()) {
        attribution[s.index()] = Some(s);
    }
    let mut stamps: BTreeMap<(NodeId, NodeId), Vec<EdgeStamp>> = BTreeMap::new();

    let mut inactive_out: Vec<u32> = (0..n)
        .map(|i| graph.out_degree(NodeId::new(i)) as u32)
        .collect();
    let retire = |w: NodeId, inactive_out: &mut Vec<u32>| {
        for &u in graph.in_neighbors(w) {
            inactive_out[u.index()] -= 1;
        }
    };
    for &s in seeds.rumors().iter().chain(seeds.protectors()) {
        retire(s, &mut inactive_out);
    }
    // Unlike the plain engine, keep *every* out-capable active node
    // live: the paper stamps repeat selections of already-active
    // targets too (Fig. 1(a), step 2). The quiescence rule is
    // unchanged — stamps stop mattering once no inactive target
    // remains — so we still retire exhausted nodes for termination,
    // but only from claiming, not from stamping... which is the same
    // thing: a retired node's choices can no longer change the
    // diffusion, and the smallest stamp per (edge, seed) is already
    // fixed by then unless a new seed's cascade arrives — impossible
    // once all its targets are active. Hence retiring preserves the
    // simplified stamp set exactly.
    let mut live: Vec<NodeId> = seeds
        .rumors()
        .iter()
        .chain(seeds.protectors())
        .copied()
        .filter(|&v| graph.out_degree(v) > 0)
        .collect();

    let mut claim: Vec<u8> = vec![0; n];
    let mut claim_attr: Vec<Option<NodeId>> = vec![None; n];
    let mut claimed: Vec<NodeId> = Vec::new();
    let mut quiescent = false;

    for hop in 1..=max_hops {
        live.retain(|&u| inactive_out[u.index()] > 0);
        if live.is_empty() {
            quiescent = true;
            break;
        }
        claimed.clear();
        for &u in &live {
            let degree = graph.out_degree(u);
            let idx = realization.choice(u, hop, degree);
            let target = graph.out_neighbors(u)[idx];
            // xtask-allow: panic -- nodes enter `live` only after their attribution slot is written
            let seed = attribution[u.index()].expect("active nodes are attributed");
            // Record the stamp (smallest per seed).
            let entry = stamps.entry((u, target)).or_default();
            match entry.iter_mut().find(|st| st.seed == seed) {
                Some(st) => st.hop = st.hop.min(hop),
                None => entry.push(EdgeStamp { seed, hop }),
            }
            if !tracker.is_inactive(target) {
                continue;
            }
            let cascade = if tracker.status[u.index()] == Status::Protected {
                2
            } else {
                1
            };
            let slot = &mut claim[target.index()];
            if *slot == 0 {
                claimed.push(target);
            }
            if cascade > *slot {
                *slot = cascade;
                claim_attr[target.index()] = Some(seed);
            }
        }
        let mut new_protected = Vec::new();
        let mut new_infected = Vec::new();
        for &w in &claimed {
            let slot = claim[w.index()];
            claim[w.index()] = 0;
            attribution[w.index()] = claim_attr[w.index()].take();
            if slot == 2 {
                new_protected.push(w);
            } else {
                new_infected.push(w);
            }
            retire(w, &mut inactive_out);
            if graph.out_degree(w) > 0 {
                live.push(w);
            }
        }
        tracker.activate_hop(hop, &new_protected, &new_infected);
    }
    TimestampedOutcome {
        outcome: tracker.finish(quiescent),
        attribution,
        stamps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpoaoModel;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn outcome_matches_plain_realized_run() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::gnm_directed(60, 240, &mut rng).unwrap();
        let s = seeds(&g, &[0, 1], &[2]);
        let real = OpoaoRealization::new(9);
        let plain = OpoaoModel::new(20).run_realized(&g, &s, &real);
        let stamped = run_opoao_timestamped(&g, &s, 20, &real);
        assert_eq!(plain.statuses(), stamped.outcome.statuses());
        assert_eq!(plain.trace(), stamped.outcome.trace());
    }

    #[test]
    fn path_walk_stamps_each_edge_once() {
        let g = generators::path_graph(4);
        let s = seeds(&g, &[0], &[]);
        let run = run_opoao_timestamped(&g, &s, 10, &OpoaoRealization::new(0));
        // Forced walk: edge (i, i+1) stamped by seed 0 at hop i+1.
        for i in 0..3u32 {
            let st = run.stamps_on(NodeId::new(i as usize), NodeId::new(i as usize + 1));
            assert_eq!(st.len(), 1);
            assert_eq!(st[0].seed, NodeId::new(0));
            assert_eq!(st[0].hop, i + 1);
        }
        assert_eq!(run.stamped_edge_count(), 3);
    }

    #[test]
    fn repeat_selection_keeps_smallest_stamp() {
        // 0 -> 1 only: node 0 re-selects node 1 every hop while it
        // still has an inactive target... after hop 1, node 1 is
        // active, so 0 retires — the preserved stamp is the hop-1
        // stamp, exactly the simplified Fig. 1(b) content.
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let s = seeds(&g, &[0], &[]);
        let run = run_opoao_timestamped(&g, &s, 10, &OpoaoRealization::new(1));
        let st = run.stamps_on(NodeId::new(0), NodeId::new(1));
        assert_eq!(
            st,
            &[EdgeStamp {
                seed: NodeId::new(0),
                hop: 1
            }]
        );
    }

    #[test]
    fn lemma1_stamps_witness_arrival() {
        // Every stamp t_s on an in-edge of v implies the cascade from
        // s reached the edge's source before t, i.e. the source
        // activated at some hop < t with attribution s.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnm_directed(50, 220, &mut rng).unwrap();
        let s = seeds(&g, &[0, 1], &[2, 3]);
        let run = run_opoao_timestamped(&g, &s, 25, &OpoaoRealization::new(4));
        for (&(u, _v), stamps) in run.stamped_edges() {
            for st in stamps {
                let hop_u = run.outcome.activation_hop(u).expect("stamper is active");
                assert!(
                    hop_u < st.hop,
                    "stamp at {} but {u} active at {hop_u}",
                    st.hop
                );
                assert_eq!(run.attribution[u.index()], Some(st.seed));
            }
        }
    }

    #[test]
    fn lemma2_protected_nodes_have_earliest_protector_stamp() {
        // For every protected non-seed node v: the smallest protector
        // stamp on v's in-edges is <= the smallest rumor stamp
        // (protector priority resolves equality).
        for graph_seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(graph_seed);
            let g = generators::gnm_directed(40, 200, &mut rng).unwrap();
            let s = seeds(&g, &[0, 1], &[2, 3]);
            let run = run_opoao_timestamped(&g, &s, 25, &OpoaoRealization::new(graph_seed));
            for v in g.nodes() {
                if !run.outcome.status(v).is_protected() || s.protectors().contains(&v) {
                    continue;
                }
                let p = run
                    .earliest_incoming(&g, v, &s, true)
                    .expect("protected non-seed has a protector stamp");
                if let Some(r) = run.earliest_incoming(&g, v, &s, false) {
                    assert!(
                        p.1.hop <= r.1.hop,
                        "node {v}: protector stamp {} after rumor stamp {}",
                        p.1.hop,
                        r.1.hop
                    );
                }
                // The stamp coincides with the activation hop.
                assert_eq!(Some(p.1.hop), run.outcome.activation_hop(v));
            }
        }
    }

    #[test]
    fn attribution_is_consistent_with_statuses() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnm_directed(50, 200, &mut rng).unwrap();
        let s = seeds(&g, &[0, 1], &[2]);
        let run = run_opoao_timestamped(&g, &s, 20, &OpoaoRealization::new(11));
        for v in g.nodes() {
            match run.outcome.status(v) {
                Status::Inactive => assert_eq!(run.attribution[v.index()], None),
                Status::Infected => {
                    let seed = run.attribution[v.index()].expect("attributed");
                    assert!(s.rumors().contains(&seed), "infected {v} from {seed}");
                }
                Status::Protected => {
                    let seed = run.attribution[v.index()].expect("attributed");
                    assert!(s.protectors().contains(&seed), "protected {v} from {seed}");
                }
            }
        }
    }
}
