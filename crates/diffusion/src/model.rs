//! The common interface implemented by every two-cascade diffusion
//! model in this crate.

use rand::Rng;

// xtask-allow: hotpath -- DiGraph is imported only for the documented one-off convenience wrapper
use lcrb_graph::{CsrGraph, DiGraph};

use crate::{DiffusionOutcome, SeedSets, SimWorkspace};

/// A diffusion process in which a rumor cascade R and a protector
/// cascade P compete on a directed graph, with P given priority on
/// simultaneous arrival (§III of the paper).
///
/// The hot path is [`TwoCascadeModel::run_into`]: simulations execute
/// against a frozen [`CsrGraph`] snapshot and write their result into
/// a caller-owned [`SimWorkspace`], so repeated runs (Monte-Carlo
/// batches, greedy objective evaluations) perform no per-run heap
/// allocation. [`TwoCascadeModel::run`] is a convenience wrapper that
/// snapshots the graph and allocates a throwaway workspace.
///
/// Implementations must be deterministic functions of `(graph,
/// seeds, rng stream)` so that Monte-Carlo runs are reproducible from
/// a seed. Deterministic models (e.g. DOAM) simply ignore the RNG.
pub trait TwoCascadeModel {
    /// Runs one diffusion to completion (or to the model's hop
    /// budget), writing the result into `ws`. Read it back through
    /// the workspace accessors ([`SimWorkspace::status`],
    /// [`SimWorkspace::trace`], ...) or materialize it with
    /// [`SimWorkspace::to_outcome`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if `seeds` was validated against a
    /// different graph than the one `graph` snapshots.
    fn run_into<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        seeds: &SeedSets,
        ws: &mut SimWorkspace,
        rng: &mut R,
    );

    /// Runs one diffusion on a [`DiGraph`], snapshotting it and
    /// allocating a fresh workspace. Convenience wrapper over
    /// [`TwoCascadeModel::run_into`] for one-off runs; batch callers
    /// should snapshot once and reuse a workspace instead.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `seeds` was validated against a
    /// different graph.
    fn run<R: Rng + ?Sized>(
        &self,
        // xtask-allow: hotpath -- documented cold-path convenience wrapper; snapshots then delegates to run_into
        graph: &DiGraph,
        seeds: &SeedSets,
        rng: &mut R,
    ) -> DiffusionOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_into(&csr, seeds, &mut ws, rng);
        ws.to_outcome()
    }

    /// Short stable name for reports ("opoao", "doam", ...).
    fn name(&self) -> &'static str;
}
