//! The common interface implemented by every two-cascade diffusion
//! model in this crate.

use rand::Rng;

use lcrb_graph::DiGraph;

use crate::{DiffusionOutcome, SeedSets};

/// A diffusion process in which a rumor cascade R and a protector
/// cascade P compete on a directed graph, with P given priority on
/// simultaneous arrival (§III of the paper).
///
/// Implementations must be deterministic functions of `(graph,
/// seeds, rng stream)` so that Monte-Carlo runs are reproducible from
/// a seed. Deterministic models (e.g. DOAM) simply ignore the RNG.
pub trait TwoCascadeModel {
    /// Runs one diffusion to completion (or to the model's hop
    /// budget) and reports the outcome.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `seeds` was validated against a
    /// different graph.
    fn run<R: Rng + ?Sized>(
        &self,
        graph: &DiGraph,
        seeds: &SeedSets,
        rng: &mut R,
    ) -> DiffusionOutcome;

    /// Short stable name for reports ("opoao", "doam", ...).
    fn name(&self) -> &'static str;
}
