//! The DOAM analytic oracle and `DiGraph` convenience layer.
//!
//! Under DOAM the outcome has a closed form: with `d_R(v)`/`d_P(v)`
//! the plain multi-source BFS distances from the rumor/protector
//! seeds, node `v` activates at hop `min(d_P(v), d_R(v))` and is
//! protected iff `d_P(v) <= d_R(v)`. (Induction along a shortest
//! cascade path: a blocked intermediate node would imply a strictly
//! shorter opposing distance to `v`, contradicting the path being
//! shortest.) [`doam_analytic`] computes this directly with two BFS
//! passes and is the fast protection oracle used by the Table I
//! coverage experiments; its agreement with the step simulator
//! [`DoamModel::run_deterministic`] is enforced by unit and property
//! tests. [`doam_analytic_csr`] / [`doam_safe_targets_csr`] are the
//! snapshot variants with reusable BFS scratch, for callers that
//! sweep many seed sets on one graph.
//!
//! This module is deliberately *outside* the declared hot-module
//! list (see `cargo xtask lint`): every function here allocates its
//! owned outcome, and the `DiGraph`-taking entry points snapshot per
//! call. The zero-allocation kernel lives in [`crate::DoamModel`]'s
//! `run_deterministic_into`.

// xtask-allow-file: index -- bfs_distances returns node_count-sized maps and SeedSets validates every seed against the same graph
use lcrb_graph::traversal::{bfs_distances, CsrBfsScratch, Direction};
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

use crate::{DiffusionOutcome, DoamModel, HopRecord, SeedSets, SimWorkspace, Status};

impl DoamModel {
    /// Runs the deterministic step simulation, snapshotting the graph
    /// and allocating a fresh workspace. Batch callers should use
    /// [`DoamModel::run_deterministic_into`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` refers to nodes outside `graph`.
    #[must_use]
    pub fn run_deterministic(&self, graph: &DiGraph, seeds: &SeedSets) -> DiffusionOutcome {
        let csr = CsrGraph::from(graph);
        let mut ws = SimWorkspace::new();
        self.run_deterministic_into(&csr, seeds, &mut ws);
        ws.to_outcome()
    }
}

/// Shared trace/status assembly for the analytic oracle, given the
/// two distance maps as lookups.
fn assemble_analytic(
    n: usize,
    d_r: impl Fn(usize) -> Option<u32>,
    d_p: impl Fn(usize) -> Option<u32>,
) -> DiffusionOutcome {
    let mut status = vec![Status::Inactive; n];
    let mut activation = vec![None; n];
    let mut max_hop = 0u32;
    for (i, (s_slot, a_slot)) in status.iter_mut().zip(activation.iter_mut()).enumerate() {
        let (s, h) = match (d_p(i), d_r(i)) {
            (Some(p), Some(r)) if p <= r => (Status::Protected, p),
            (Some(p), None) => (Status::Protected, p),
            (_, Some(r)) => (Status::Infected, r),
            (None, None) => continue,
        };
        *s_slot = s;
        *a_slot = Some(h);
        max_hop = max_hop.max(h);
    }
    // Rebuild the hop trace from activation times.
    let mut new_infected = vec![0usize; max_hop as usize + 1];
    let mut new_protected = vec![0usize; max_hop as usize + 1];
    for i in 0..n {
        if let Some(h) = activation[i] {
            match status[i] {
                Status::Infected => new_infected[h as usize] += 1,
                Status::Protected => new_protected[h as usize] += 1,
                Status::Inactive => unreachable!("activated node has a status"),
            }
        }
    }
    let mut trace = Vec::with_capacity(max_hop as usize + 2);
    let (mut ti, mut tp) = (0usize, 0usize);
    for hop in 0..=max_hop {
        ti += new_infected[hop as usize];
        tp += new_protected[hop as usize];
        trace.push(HopRecord {
            hop,
            new_infected: new_infected[hop as usize],
            new_protected: new_protected[hop as usize],
            total_infected: ti,
            total_protected: tp,
        });
    }
    // The step simulator records one final hop with no activity
    // before detecting quiescence — only when some seed existed.
    if n > 0 && (ti > 0 || tp > 0) {
        trace.push(HopRecord {
            hop: max_hop + 1,
            new_infected: 0,
            new_protected: 0,
            total_infected: ti,
            total_protected: tp,
        });
    }
    DiffusionOutcome::new(status, activation, trace, true)
}

/// Computes the DOAM outcome analytically from two multi-source BFS
/// passes (see the module docs for the correctness argument).
/// Produces exactly the same statuses, activation hops, and trace as
/// [`DoamModel::run_deterministic`] with an unlimited hop budget.
///
/// # Panics
///
/// Panics if `seeds` refers to nodes outside `graph`.
#[must_use]
pub fn doam_analytic(graph: &DiGraph, seeds: &SeedSets) -> DiffusionOutcome {
    let d_r = bfs_distances(graph, seeds.rumors());
    let d_p = bfs_distances(graph, seeds.protectors());
    assemble_analytic(graph.node_count(), |i| d_r[i], |i| d_p[i])
}

/// Snapshot variant of [`doam_analytic`]: runs the two BFS passes in
/// caller-owned scratches, so sweeping many seed sets on one graph
/// performs no per-call distance-map allocation.
///
/// # Panics
///
/// Panics if `seeds` refers to nodes outside the snapshot.
#[must_use]
pub fn doam_analytic_csr(
    graph: &CsrGraph,
    seeds: &SeedSets,
    d_r: &mut CsrBfsScratch,
    d_p: &mut CsrBfsScratch,
) -> DiffusionOutcome {
    d_r.run(graph, seeds.rumors(), Direction::Forward, u32::MAX);
    d_p.run(graph, seeds.protectors(), Direction::Forward, u32::MAX);
    assemble_analytic(
        graph.node_count(),
        |i| d_r.distance(NodeId::new(i)),
        |i| d_p.distance(NodeId::new(i)),
    )
}

/// Reports whether each node of `targets` would be protected (not
/// infected) under DOAM with the given seeds — the coverage check
/// used by the LCRB-D experiments. A target is "safe" when it is
/// protected or never reached.
///
/// # Panics
///
/// Panics if `seeds` or `targets` refer to nodes outside `graph`.
#[must_use]
pub fn doam_safe_targets(graph: &DiGraph, seeds: &SeedSets, targets: &[NodeId]) -> Vec<bool> {
    let d_r = bfs_distances(graph, seeds.rumors());
    let d_p = bfs_distances(graph, seeds.protectors());
    targets
        .iter()
        .map(|&v| match (d_p[v.index()], d_r[v.index()]) {
            (_, None) => true,
            (Some(p), Some(r)) => p <= r,
            (None, Some(_)) => false,
        })
        .collect()
}

/// Snapshot variant of [`doam_safe_targets`] with caller-owned BFS
/// scratches.
///
/// # Panics
///
/// Panics if `seeds` or `targets` refer to nodes outside the
/// snapshot.
#[must_use]
pub fn doam_safe_targets_csr(
    graph: &CsrGraph,
    seeds: &SeedSets,
    targets: &[NodeId],
    d_r: &mut CsrBfsScratch,
    d_p: &mut CsrBfsScratch,
) -> Vec<bool> {
    d_r.run(graph, seeds.rumors(), Direction::Forward, u32::MAX);
    d_p.run(graph, seeds.protectors(), Direction::Forward, u32::MAX);
    targets
        .iter()
        .map(|&v| match (d_p.distance(v), d_r.distance(v)) {
            (_, None) => true,
            (Some(p), Some(r)) => p <= r,
            (None, Some(_)) => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeds(g: &DiGraph, r: &[usize], p: &[usize]) -> SeedSets {
        SeedSets::new(
            g,
            r.iter().map(|&i| NodeId::new(i)).collect(),
            p.iter().map(|&i| NodeId::new(i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn analytic_matches_simulation_on_fixtures() {
        let cases: Vec<(DiGraph, SeedSets)> = vec![
            {
                let g = generators::path_graph(6);
                let s = seeds(&g, &[0], &[3]);
                (g, s)
            },
            {
                let g = generators::star_graph(8);
                let s = seeds(&g, &[1], &[2]);
                (g, s)
            },
            {
                let g = generators::cycle_graph(9);
                let s = seeds(&g, &[0], &[4]);
                (g, s)
            },
            {
                let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
                let s = seeds(&g, &[0], &[1]);
                (g, s)
            },
        ];
        for (g, s) in cases {
            let sim = DoamModel::default().run_deterministic(&g, &s);
            let ana = doam_analytic(&g, &s);
            assert_eq!(sim.statuses(), ana.statuses());
            for v in g.nodes() {
                assert_eq!(sim.activation_hop(v), ana.activation_hop(v), "node {v}");
            }
            assert_eq!(sim.trace(), ana.trace());
        }
    }

    #[test]
    fn analytic_matches_simulation_on_random_graphs() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = generators::gnm_directed(50, 170, &mut rng).unwrap();
            let s = seeds(&g, &[0, 1], &[2, 3]);
            let sim = DoamModel::default().run_deterministic(&g, &s);
            let ana = doam_analytic(&g, &s);
            assert_eq!(sim.statuses(), ana.statuses(), "seed {seed}");
            assert_eq!(sim.trace(), ana.trace(), "seed {seed}");
        }
    }

    #[test]
    fn csr_oracle_matches_digraph_oracle() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = generators::gnm_directed(50, 170, &mut rng).unwrap();
        let csr = CsrGraph::from(&g);
        let mut d_r = CsrBfsScratch::new();
        let mut d_p = CsrBfsScratch::new();
        // Reuse the scratches across several seed sets.
        for (r, p) in [(0usize, 1usize), (5, 9), (13, 2)] {
            let s = seeds(&g, &[r], &[p]);
            let reference = doam_analytic(&g, &s);
            let fast = doam_analytic_csr(&csr, &s, &mut d_r, &mut d_p);
            assert_eq!(reference, fast, "seeds ({r}, {p})");
            let targets: Vec<NodeId> = g.nodes().collect();
            assert_eq!(
                doam_safe_targets(&g, &s, &targets),
                doam_safe_targets_csr(&csr, &s, &targets, &mut d_r, &mut d_p),
            );
        }
    }

    #[test]
    fn safe_targets_match_outcome() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnm_directed(40, 160, &mut rng).unwrap();
        let s = seeds(&g, &[0], &[1, 2]);
        let outcome = DoamModel::default().run_deterministic(&g, &s);
        let targets: Vec<NodeId> = g.nodes().collect();
        let safe = doam_safe_targets(&g, &s, &targets);
        for (v, &is_safe) in targets.iter().zip(&safe) {
            assert_eq!(is_safe, !outcome.status(*v).is_infected(), "node {v}");
        }
    }

    #[test]
    fn empty_seeds_trace() {
        let g = generators::path_graph(3);
        let s = seeds(&g, &[], &[]);
        let sim = DoamModel::default().run_deterministic(&g, &s);
        let ana = doam_analytic(&g, &s);
        assert_eq!(sim.infected_count(), 0);
        assert_eq!(sim.trace(), ana.trace());
    }
}
