//! Cooperative cancellation and work budgets for anytime solves.
//!
//! Long-running kernels (Monte-Carlo sweeps, RR-sketch batches, CELF
//! advances) poll a [`WorkMeter`] at deterministic *checkpoint
//! boundaries*: between simulation batches, between sketches, and
//! between greedy picks. A checkpoint either passes or stops the
//! kernel with a typed [`StopReason`] — kernels never observe a
//! half-spent checkpoint, which is what keeps budget-degraded results
//! bitwise-reproducible across thread counts.
//!
//! Two stop families behave differently by design:
//!
//! - **Work-unit caps** ([`RunBudget::max_sims`] /
//!   [`RunBudget::max_sketches`] / [`RunBudget::max_advances`]) are
//!   counted in deterministic units, so the same request stops at the
//!   same checkpoint on every run and every worker count.
//! - **Wall-clock deadlines and [`CancelToken`]s** are advisory: they
//!   are observed only at checkpoints, so *where* they land depends on
//!   machine speed, but the result at whichever checkpoint they land
//!   on is still a valid prefix of the uninterrupted computation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, monotone cancellation flag (`Arc<AtomicBool>`).
///
/// Cloning shares the flag: cancelling any clone cancels them all.
/// Cancellation is cooperative — kernels observe it at their next
/// checkpoint poll, never mid-batch.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Irrevocable: a cancelled token stays
    /// cancelled.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Token identity: two tokens are equal when they share the same
/// underlying flag (clones of one another).
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Work-unit caps and an optional wall-clock deadline for one solve.
///
/// The default is unlimited in every dimension. Caps are checked at
/// deterministic checkpoint boundaries and are all-or-nothing per
/// checkpoint: a batch either fits under the cap and runs whole, or
/// the kernel stops *before* it — partial batches never contribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Cap on Monte-Carlo simulation runs charged this solve.
    pub max_sims: Option<u64>,
    /// Cap on RR sketches generated this solve.
    pub max_sketches: Option<u64>,
    /// Cap on CELF advances (greedy picks committed) this solve.
    pub max_advances: Option<u64>,
    /// Advisory wall-clock deadline, measured from solve start.
    /// Observed at checkpoints only; see the module docs for why this
    /// is not the reproducible path.
    pub deadline: Option<Duration>,
}

impl RunBudget {
    /// A budget with no caps and no deadline — every solve runs to
    /// completion.
    #[must_use]
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Caps Monte-Carlo simulation runs.
    #[must_use]
    pub fn with_max_sims(mut self, max_sims: u64) -> Self {
        self.max_sims = Some(max_sims);
        self
    }

    /// Caps RR sketch generation.
    #[must_use]
    pub fn with_max_sketches(mut self, max_sketches: u64) -> Self {
        self.max_sketches = Some(max_sketches);
        self
    }

    /// Caps CELF advances (greedy picks).
    #[must_use]
    pub fn with_max_advances(mut self, max_advances: u64) -> Self {
        self.max_advances = Some(max_advances);
        self
    }

    /// Sets an advisory wall-clock deadline measured from solve start.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether no cap or deadline is set at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::default()
    }
}

/// Why a kernel stopped early at a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StopReason {
    /// A [`CancelToken`] on the request (or its batch) was raised.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The Monte-Carlo simulation cap was reached.
    SimBudget,
    /// The RR-sketch generation cap was reached.
    SketchBudget,
    /// The CELF advance cap was reached.
    AdvanceBudget,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::SimBudget => "simulation budget exhausted",
            StopReason::SketchBudget => "sketch budget exhausted",
            StopReason::AdvanceBudget => "advance budget exhausted",
        };
        f.write_str(text)
    }
}

/// Per-solve checkpoint state: the budget, the cancellation tokens in
/// scope, the deadline clock, and the work-unit counters.
///
/// One meter lives for exactly one solve. Charging methods take
/// `&mut self` and run only on serial checkpoint boundaries;
/// [`WorkMeter::poll`] takes `&self` and may be called from worker
/// threads sharing the meter by reference.
#[derive(Debug)]
pub struct WorkMeter {
    budget: RunBudget,
    cancel: Option<CancelToken>,
    batch_cancel: Option<CancelToken>,
    started: Option<Instant>,
    sims: u64,
    sketches: u64,
    advances: u64,
}

impl WorkMeter {
    /// A meter for `budget` observing the given cancellation tokens
    /// (`cancel` rides on the request, `batch_cancel` on a
    /// `solve_many` batch). Starts the deadline clock now if the
    /// budget has one.
    #[must_use]
    pub fn new(
        budget: RunBudget,
        cancel: Option<CancelToken>,
        batch_cancel: Option<CancelToken>,
    ) -> Self {
        #[allow(clippy::disallowed_methods)]
        let started = budget
            .deadline
            .is_some()
            // xtask-allow: determinism -- the deadline clock is the one sanctioned wall-clock source; deadlines are advisory and resolve to checkpoint boundaries (see module docs)
            .then(Instant::now);
        WorkMeter {
            budget,
            cancel,
            batch_cancel,
            started,
            sims: 0,
            sketches: 0,
            advances: 0,
        }
    }

    /// A meter that never stops anything — the path every
    /// budget-unaware caller takes.
    #[must_use]
    pub fn unlimited() -> Self {
        WorkMeter::new(RunBudget::unlimited(), None, None)
    }

    /// Checkpoint poll: observes cancellation and the deadline, never
    /// the work-unit caps. Cheap enough for per-simulation granularity
    /// and callable from worker threads (`&self`).
    ///
    /// # Errors
    ///
    /// [`StopReason::Cancelled`] if any token in scope is raised,
    /// [`StopReason::DeadlineExpired`] if the deadline passed.
    pub fn poll(&self) -> Result<(), StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self
                .batch_cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
        {
            return Err(StopReason::Cancelled);
        }
        if let (Some(deadline), Some(started)) = (self.budget.deadline, self.started) {
            if started.elapsed() >= deadline {
                return Err(StopReason::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// Checkpoint: charges `n` Monte-Carlo simulation runs,
    /// all-or-nothing. If the batch would cross [`RunBudget::max_sims`]
    /// nothing is charged and the kernel must stop before running it.
    ///
    /// # Errors
    ///
    /// Everything [`WorkMeter::poll`] reports, plus
    /// [`StopReason::SimBudget`] when the batch does not fit.
    pub fn charge_sims(&mut self, n: u64) -> Result<(), StopReason> {
        self.poll()?;
        if let Some(cap) = self.budget.max_sims {
            if self.sims.saturating_add(n) > cap {
                return Err(StopReason::SimBudget);
            }
        }
        self.sims = self.sims.saturating_add(n);
        Ok(())
    }

    /// Checkpoint: charges one RR sketch.
    ///
    /// # Errors
    ///
    /// Everything [`WorkMeter::poll`] reports, plus
    /// [`StopReason::SketchBudget`] when the cap is already reached.
    pub fn charge_sketch(&mut self) -> Result<(), StopReason> {
        self.poll()?;
        if let Some(cap) = self.budget.max_sketches {
            if self.sketches >= cap {
                return Err(StopReason::SketchBudget);
            }
        }
        self.sketches = self.sketches.saturating_add(1);
        Ok(())
    }

    /// Whether the CELF advance cap is already spent. Checked at the
    /// top of each greedy iteration; charging happens separately via
    /// [`WorkMeter::note_advance`] when a pick actually commits, so
    /// lazy re-score iterations are never double-charged.
    #[must_use]
    pub fn advances_exhausted(&self) -> bool {
        self.budget
            .max_advances
            .is_some_and(|cap| self.advances >= cap)
    }

    /// Records one committed CELF advance (greedy pick). Infallible:
    /// the cap is enforced by [`WorkMeter::advances_exhausted`] before
    /// the pick's work starts.
    pub fn note_advance(&mut self) {
        self.advances = self.advances.saturating_add(1);
    }

    /// Whether any poll can ever stop a kernel (a token or deadline is
    /// in scope). Engines use this to decide when results may depend
    /// on interruption and shared caches must be bypassed.
    #[must_use]
    pub fn polls_needed(&self) -> bool {
        self.cancel.is_some() || self.batch_cancel.is_some() || self.budget.deadline.is_some()
    }

    /// Whether a sketch-generation cap is set.
    #[must_use]
    pub fn limits_sketches(&self) -> bool {
        self.budget.max_sketches.is_some()
    }

    /// Whether a simulation cap is set.
    #[must_use]
    pub fn limits_sims(&self) -> bool {
        self.budget.max_sims.is_some()
    }

    /// Work-unit counters charged so far: `(sims, sketches, advances)`.
    #[must_use]
    pub fn spent(&self) -> (u64, u64, u64) {
        (self.sims, self.sketches, self.advances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_meter_never_stops() {
        let budget = RunBudget::unlimited();
        assert!(budget.is_unlimited());
        let mut meter = WorkMeter::unlimited();
        assert!(meter.poll().is_ok());
        assert!(meter.charge_sims(1_000_000).is_ok());
        assert!(meter.charge_sketch().is_ok());
        assert!(!meter.advances_exhausted());
        assert!(!meter.polls_needed());
        assert!(!meter.limits_sims());
        assert!(!meter.limits_sketches());
        assert_eq!(meter.spent(), (1_000_000, 1, 0));
    }

    #[test]
    fn cancel_token_is_shared_and_monotone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn poll_observes_request_and_batch_tokens() {
        let request = CancelToken::new();
        let batch = CancelToken::new();
        let meter = WorkMeter::new(
            RunBudget::unlimited(),
            Some(request.clone()),
            Some(batch.clone()),
        );
        assert!(meter.polls_needed());
        assert!(meter.poll().is_ok());
        batch.cancel();
        assert_eq!(meter.poll(), Err(StopReason::Cancelled));
        let meter = WorkMeter::new(RunBudget::unlimited(), Some(request.clone()), None);
        assert!(meter.poll().is_ok());
        request.cancel();
        assert_eq!(meter.poll(), Err(StopReason::Cancelled));
    }

    #[test]
    fn sim_charges_are_all_or_nothing() {
        let mut meter = WorkMeter::new(RunBudget::unlimited().with_max_sims(10), None, None);
        assert!(meter.limits_sims());
        assert!(meter.charge_sims(6).is_ok());
        // 6 + 5 > 10: rejected whole, nothing charged...
        assert_eq!(meter.charge_sims(5), Err(StopReason::SimBudget));
        // ...so an exact-fit batch still passes.
        assert!(meter.charge_sims(4).is_ok());
        assert_eq!(meter.charge_sims(1), Err(StopReason::SimBudget));
        assert_eq!(meter.spent().0, 10);
    }

    #[test]
    fn sketch_charges_stop_at_the_cap() {
        let mut meter = WorkMeter::new(RunBudget::unlimited().with_max_sketches(2), None, None);
        assert!(meter.limits_sketches());
        assert!(meter.charge_sketch().is_ok());
        assert!(meter.charge_sketch().is_ok());
        assert_eq!(meter.charge_sketch(), Err(StopReason::SketchBudget));
        assert_eq!(meter.spent().1, 2);
    }

    #[test]
    fn advances_check_then_note_never_double_charges() {
        let mut meter = WorkMeter::new(RunBudget::unlimited().with_max_advances(2), None, None);
        assert!(!meter.advances_exhausted());
        meter.note_advance();
        assert!(!meter.advances_exhausted());
        meter.note_advance();
        assert!(meter.advances_exhausted());
        assert_eq!(meter.spent().2, 2);
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let meter = WorkMeter::new(
            RunBudget::unlimited().with_deadline(Duration::ZERO),
            None,
            None,
        );
        assert!(meter.polls_needed());
        assert_eq!(meter.poll(), Err(StopReason::DeadlineExpired));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let meter = WorkMeter::new(
            RunBudget::unlimited().with_deadline(Duration::from_secs(3600)),
            None,
            None,
        );
        assert!(meter.poll().is_ok());
    }

    #[test]
    fn cancellation_outranks_the_work_caps() {
        let token = CancelToken::new();
        token.cancel();
        let mut meter = WorkMeter::new(RunBudget::unlimited().with_max_sims(0), Some(token), None);
        assert_eq!(meter.charge_sims(1), Err(StopReason::Cancelled));
    }

    #[test]
    fn stop_reasons_display() {
        for (reason, text) in [
            (StopReason::Cancelled, "cancelled"),
            (StopReason::DeadlineExpired, "deadline expired"),
            (StopReason::SimBudget, "simulation budget exhausted"),
            (StopReason::SketchBudget, "sketch budget exhausted"),
            (StopReason::AdvanceBudget, "advance budget exhausted"),
        ] {
            assert_eq!(reason.to_string(), text);
        }
    }
}
