//! Workspace leasing: a thread-safe free-list pool for reusable
//! scratch values.
//!
//! Every estimator in this workspace follows the caller-owned-scratch
//! pattern (`SimWorkspace`, `RrScratch`, coverage stamps): the caller
//! allocates once and threads the scratch through every query. A
//! session engine that answers many queries against one snapshot
//! needs somewhere to park those scratches between solves so warm
//! queries reuse the grown buffers instead of re-allocating them.
//! [`ScratchPool`] is that place: a LIFO free list that leases values
//! out behind an RAII guard ([`ScratchLease`]) and takes them back
//! automatically when the guard drops.
//!
//! LIFO order deliberately hands back the most recently used value —
//! the one whose buffers are hot in cache and already sized to the
//! instance. The free list lives behind a [`Mutex`], so a shared
//! engine can lease scratches from `&self` across concurrent solves;
//! the lock is only held for the push/pop, never while the scratch is
//! in use.

use core::fmt;
use core::ops::{Deref, DerefMut};

use lcrb_sync::{Mutex, MutexGuard, PoisonError};

/// A thread-safe LIFO free list of reusable scratch values.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::{ScratchPool, SimWorkspace};
///
/// let pool: ScratchPool<SimWorkspace> = ScratchPool::new();
/// {
///     let _ws = pool.lease(); // fresh: pool was empty
/// } // dropping the lease parks the workspace back in the pool
/// assert_eq!(pool.pooled(), 1);
/// let _again = pool.lease(); // the same grown workspace comes back
/// assert_eq!(pool.pooled(), 0);
/// ```
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("pooled", &self.pooled())
            .finish()
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }
}

impl<T> ScratchPool<T> {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Locks the free list, recovering the value even if another
    /// thread panicked mid-push (a poisoned `Vec<T>` is still a valid
    /// free list: the worst case is a lost park, never a torn value).
    fn free(&self) -> MutexGuard<'_, Vec<T>> {
        self.free.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of values currently parked in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free().len()
    }

    /// Drops every parked value — the pool's invalidation hook for
    /// when the instance the scratches were sized against changes.
    /// Values currently out on lease are unaffected; they return to
    /// the pool when their guards drop.
    pub fn clear(&self) {
        self.free().clear();
    }
}

impl<T: Default> ScratchPool<T> {
    /// Leases a value out: the most recently parked one if the pool
    /// is non-empty, otherwise `T::default()`. The value returns to
    /// the pool when the [`ScratchLease`] guard drops.
    #[must_use]
    pub fn lease(&self) -> ScratchLease<'_, T> {
        let value = self.free().pop().unwrap_or_default();
        let lease = ScratchLease {
            pool: self,
            value: Some(value),
        };
        // Injectable failure after the value left the free list but
        // before the caller sees the guard: the guard's drop must park
        // the value back during unwind.
        lcrb_sync::fault::point("scratch.lease");
        lease
    }
}

/// RAII guard for a value leased from a [`ScratchPool`].
///
/// Dereferences to the leased value; on drop, the value is parked
/// back in the pool for the next lease.
pub struct ScratchLease<'a, T> {
    pool: &'a ScratchPool<T>,
    value: Option<T>,
}

impl<T: fmt::Debug> fmt::Debug for ScratchLease<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchLease")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> Deref for ScratchLease<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // The Option is only vacated in drop, after which no deref
        // can observe it.
        self.value
            .as_ref()
            .unwrap_or_else(|| unreachable!("lease vacated before drop"))
    }
}

impl<T> DerefMut for ScratchLease<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value
            .as_mut()
            .unwrap_or_else(|| unreachable!("lease vacated before drop"))
    }
}

impl<T> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        if let Some(value) = self.value.take() {
            self.pool.free().push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_lifo_and_falls_back_to_default() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        assert_eq!(*pool.lease(), Vec::<u32>::new());
        // The empty default was parked by the drop above.
        assert_eq!(pool.pooled(), 1);
        {
            let mut a = pool.lease();
            a.push(1);
            let mut b = pool.lease();
            b.push(2);
            assert_eq!(pool.pooled(), 0);
            // b drops first, then a: LIFO puts a's value on top.
        }
        assert_eq!(*pool.lease(), vec![1]);
    }

    #[test]
    fn clear_drops_parked_values_but_not_live_leases() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        let mut live = pool.lease();
        live.push(7);
        {
            let mut parked = pool.lease();
            parked.push(9);
        }
        assert_eq!(pool.pooled(), 1);
        pool.clear();
        assert_eq!(pool.pooled(), 0);
        drop(live);
        assert_eq!(pool.pooled(), 1);
        assert_eq!(*pool.lease(), vec![7]);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..16 {
                        let mut lease = pool.lease();
                        lease.push(t * 100 + i);
                    }
                });
            }
        });
        assert!(pool.pooled() >= 1);
        assert!(pool.pooled() <= 4);
    }
}
