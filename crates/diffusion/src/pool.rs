//! Workspace lending: a free-list pool for reusable scratch values.
//!
//! Every estimator in this workspace follows the caller-owned-scratch
//! pattern (`SimWorkspace`, `RrScratch`, coverage stamps): the caller
//! allocates once and threads the scratch through every query. A
//! session engine that answers many queries against one snapshot
//! needs somewhere to park those scratches between solves so warm
//! queries reuse the grown buffers instead of re-allocating them.
//! [`ScratchPool`] is that place: a LIFO free list that lends values
//! out by move and takes them back when the caller is done.
//!
//! LIFO order deliberately hands back the most recently used value —
//! the one whose buffers are hot in cache and already sized to the
//! instance.

use core::fmt;

/// A LIFO free list of reusable scratch values.
///
/// # Examples
///
/// ```
/// use lcrb_diffusion::{ScratchPool, SimWorkspace};
///
/// let mut pool: ScratchPool<SimWorkspace> = ScratchPool::new();
/// let ws = pool.lend(); // fresh: pool was empty
/// pool.restore(ws);
/// assert_eq!(pool.pooled(), 1);
/// let _again = pool.lend(); // the same grown workspace comes back
/// assert_eq!(pool.pooled(), 0);
/// ```
pub struct ScratchPool<T> {
    free: Vec<T>,
}

impl<T> fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("pooled", &self.free.len())
            .finish()
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool { free: Vec::new() }
    }
}

impl<T> ScratchPool<T> {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Number of values currently parked in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Returns a parked value to the pool for the next lender.
    pub fn restore(&mut self, value: T) {
        self.free.push(value);
    }

    /// Drops every parked value — the pool's invalidation hook for
    /// when the instance the scratches were sized against changes.
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

impl<T: Default> ScratchPool<T> {
    /// Lends a value out by move: the most recently restored one if
    /// the pool is non-empty, otherwise `T::default()`.
    #[must_use]
    pub fn lend(&mut self) -> T {
        self.free.pop().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lend_is_lifo_and_falls_back_to_default() {
        let mut pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        assert_eq!(pool.lend(), Vec::<u32>::new());
        pool.restore(vec![1]);
        pool.restore(vec![2]);
        assert_eq!(pool.pooled(), 2);
        assert_eq!(pool.lend(), vec![2]);
        assert_eq!(pool.lend(), vec![1]);
        assert_eq!(pool.lend(), Vec::<u32>::new());
    }

    #[test]
    fn clear_drops_parked_values() {
        let mut pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        pool.restore(vec![1, 2, 3]);
        pool.clear();
        assert_eq!(pool.pooled(), 0);
        assert!(pool.lend().is_empty());
    }
}
