//! Self-tests for the deterministic-scheduler backend: the explorer
//! must find real schedule bugs (races, lost wakeups, deadlocks),
//! reproduce them from the reported decision string, and stay quiet on
//! correct protocols.
#![cfg(feature = "sched")]

use std::sync::atomic::{AtomicU64, Ordering};

use lcrb_sync::sched::{self, Config};
use lcrb_sync::{fault, thread, Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A correct 2-thread increment (read-modify-write under one lock)
/// passes under exhaustive DFS, and the DFS is provably not degenerate
/// (more than one distinct schedule).
#[test]
fn dfs_explores_multiple_schedules_of_a_correct_protocol() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        let counter = Mutex::new(0u64);
        thread::scope(|scope| {
            let h1 = scope.spawn(|| *lock(&counter) += 1);
            let h2 = scope.spawn(|| *lock(&counter) += 1);
            h1.join().expect("t1");
            h2.join().expect("t2");
        });
        assert_eq!(*lock(&counter), 2);
    })
    .expect("correct protocol must pass exploration");
    assert!(
        exploration.schedules > 1,
        "degenerate exploration: only {} schedule(s)",
        exploration.schedules
    );
    assert!(exploration.complete);
}

/// A check-then-act race (read under one critical section, write under
/// another) is caught by DFS, and the reported decision string replays
/// to the same failure.
#[test]
fn dfs_catches_check_then_act_race_and_replay_reproduces_it() {
    let body = || {
        let counter = Mutex::new(0u64);
        thread::scope(|scope| {
            let racy_increment = || {
                let snapshot = *lock(&counter);
                // Lock released here: another thread can interleave.
                *lock(&counter) = snapshot + 1;
            };
            let h1 = scope.spawn(racy_increment);
            let h2 = scope.spawn(racy_increment);
            h1.join().expect("t1");
            h2.join().expect("t2");
        });
        assert_eq!(*lock(&counter), 2, "lost update");
    };
    let failure = sched::explore_dfs(&Config::default(), body)
        .expect_err("the lost-update schedule must be found");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    // The printed decision string reproduces the same failing schedule.
    let replayed = sched::replay(&sched::parse_replay(&failure.replay_string()), body)
        .expect_err("replay must re-fail");
    assert_eq!(replayed.message, failure.message);
}

/// A notify that can land between a predicate check and the wait —
/// the classic lost wakeup — deadlocks under some schedule; the
/// explorer reports it and the replay string reproduces it.
#[test]
fn dfs_catches_lost_wakeup_as_deadlock() {
    let body = || {
        let flag = Mutex::new(false);
        let cv = Condvar::new();
        thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                // BROKEN on purpose: the predicate is checked in one
                // critical section and the wait happens in another
                // without re-checking, so a notify landing in the
                // window is lost and the waiter blocks forever.
                let ready = *lock(&flag);
                if !ready {
                    let guard = lock(&flag);
                    let _guard = cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            });
            let notifier = scope.spawn(|| {
                *lock(&flag) = true;
                cv.notify_one();
            });
            waiter.join().expect("waiter");
            notifier.join().expect("notifier");
        });
    };
    let failure =
        sched::explore_dfs(&Config::default(), body).expect_err("lost wakeup must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
    let replayed = sched::replay(&failure.decisions, body).expect_err("replay must re-fail");
    assert!(replayed.message.contains("deadlock"));
}

/// Opposite-order lock acquisition deadlocks under some schedule.
#[test]
fn dfs_catches_lock_order_deadlock() {
    let body = || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                let _a = lock(&a);
                let _b = lock(&b);
            });
            let h2 = scope.spawn(|| {
                let _b = lock(&b);
                let _a = lock(&a);
            });
            h1.join().expect("t1");
            h2.join().expect("t2");
        });
    };
    let failure = sched::explore_dfs(&Config::default(), body)
        .expect_err("opposite lock order must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"), "got: {failure}");
    assert!(
        failure.message.contains("blocked on mutex"),
        "deadlock report should describe blocked threads: {failure}"
    );
}

/// Seeded exploration drives the same body through distinct schedules
/// deterministically: the same seed yields the same decision list.
#[test]
fn seeded_runs_are_deterministic_per_seed() {
    let observed = AtomicU64::new(0);
    let body = || {
        let counter = Mutex::new(0u64);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| scope.spawn(|| *lock(&counter) += 1))
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        });
        observed.fetch_add(*lock(&counter), Ordering::Relaxed);
    };
    let exploration =
        sched::explore_seeds(&Config::default(), &[7, 7, 13, 13], body).expect("correct protocol");
    assert_eq!(exploration.schedules, 4);
    assert_eq!(observed.load(Ordering::Relaxed), 12);
}

/// An armed fault point panics in whichever logical thread executes
/// it; the payload travels through `join` like any panic, and the
/// protocol around it recovers.
#[test]
fn fault_injection_panics_the_chosen_execution_and_recovers() {
    let exploration = sched::explore_dfs(&Config::default(), || {
        sched::arm_fault("harness.step", 1);
        let slot: Mutex<Option<u64>> = Mutex::new(None);
        let attempts = AtomicU64::new(0);
        let build = || {
            attempts.fetch_add(1, Ordering::Relaxed);
            fault::point("harness.step");
            *lock(&slot) = Some(42);
        };
        thread::scope(|scope| {
            let h1 = scope.spawn(build);
            let h2 = scope.spawn(build);
            let results = [h1.join(), h2.join()];
            let failures = results.iter().filter(|r| r.is_err()).count();
            assert_eq!(failures, 1, "exactly the armed execution panics");
            for r in results {
                if let Err(payload) = r {
                    let msg = sched::payload_message(payload.as_ref());
                    assert!(sched::is_fault_panic(&msg), "unexpected payload: {msg}");
                }
            }
        });
        assert_eq!(*lock(&slot), Some(42), "the surviving build publishes");
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    })
    .expect("fault recovery must hold under every schedule");
    assert!(exploration.schedules > 1);
}

/// Outside a model run the sched backend behaves exactly like std:
/// plain locking works and a panicking holder poisons the lock.
#[test]
fn passthrough_outside_model_runs_preserves_std_semantics() {
    let m = Mutex::new(5u64);
    *lock(&m) += 1;
    assert_eq!(*lock(&m), 6);
    // fault points are no-ops outside model runs, even under `sched`.
    fault::point("harness.step");

    let poisoned = Mutex::new(0u64);
    std::thread::scope(|s| {
        let _ = s
            .spawn(|| {
                let _guard = poisoned.lock().expect("first lock");
                panic!("poison it");
            })
            .join();
    });
    assert!(
        poisoned.lock().is_err(),
        "poison must propagate through the facade"
    );
    assert_eq!(*lock(&poisoned), 0, "PoisonError::into_inner recovers");
}

/// The facade scope mirrors std semantics for unjoined panicked
/// threads inside a model run: the scope close re-raises.
#[test]
fn unjoined_panicked_thread_fails_the_scope() {
    let failure = sched::explore_dfs(&Config::default(), || {
        sched::arm_fault("harness.unjoined", 1);
        thread::scope(|scope| {
            let _unjoined = scope.spawn(|| fault::point("harness.unjoined"));
        });
    })
    .expect_err("scope close must re-raise the unjoined panic");
    assert!(
        failure.message.contains("scoped thread panicked"),
        "got: {failure}"
    );
}
