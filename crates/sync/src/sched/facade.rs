//! Facade types for the `sched` backend.
//!
//! Same public surface as the std passthrough backend, but every
//! operation first checks the thread-local model context: inside a
//! model run it routes through the scheduler (becoming a recorded
//! scheduling decision), outside one it falls through to the plain
//! std primitive. Data always lives in a real `std::sync::Mutex`, so
//! poison semantics — a panicking holder poisons the lock — come for
//! free in both modes.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, LockResult, OnceLock, PoisonError};

use super::core::{self, object_id, Ctx, ThreadEnter};

/// Mutual-exclusion primitive: std mutex data storage plus model
/// ownership bookkeeping inside an active model run.
#[derive(Default)]
pub struct Mutex<T> {
    id: OnceLock<usize>,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            data: std::sync::Mutex::new(value),
        }
    }

    fn model_id(&self) -> usize {
        object_id(&self.id)
    }

    fn wrap<'a>(
        &'a self,
        raw: LockResult<std::sync::MutexGuard<'a, T>>,
        modeled: Option<Ctx>,
    ) -> LockResult<MutexGuard<'a, T>> {
        match raw {
            Ok(inner) => Ok(MutexGuard {
                mutex: self,
                inner: Some(inner),
                modeled,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                mutex: self,
                inner: Some(poisoned.into_inner()),
                modeled,
            })),
        }
    }

    /// Acquires the mutex. Inside a model run this is a scheduling
    /// decision point (preemption before the acquire, blocking via the
    /// scheduler); outside one it is a plain std lock.
    ///
    /// # Errors
    ///
    /// Returns a [`PoisonError`] carrying the guard if a holder
    /// panicked (same contract as std).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(ctx) = core::current() {
            if ctx.sched.op_lock(ctx.tid, self.model_id()) {
                // We are the logical owner; the raw lock is free modulo
                // abort-unwinding threads releasing theirs.
                return self.wrap(self.data.lock(), Some(ctx));
            }
        }
        self.wrap(self.data.lock(), None)
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the raw lock and
/// the model ownership on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// `Some` iff this guard holds model ownership that must be
    /// released through the scheduler.
    modeled: Option<Ctx>,
}

impl<T> MutexGuard<'_, T> {
    /// Drops the raw guard and forgets model ownership *without*
    /// releasing it — used by [`Condvar::wait`], whose model op
    /// releases the mutex atomically with entering the wakeup set.
    fn clear_for_wait(&mut self) {
        self.inner = None;
        self.modeled = None;
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Raw release first, then model release; no decision point
        // runs in between because this thread stays scheduled.
        self.inner = None;
        if let Some(ctx) = self.modeled.take() {
            ctx.sched.op_unlock(ctx.tid, self.mutex.model_id());
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .unwrap_or_else(|| unreachable!("guard accessed after release"))
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!("guard accessed after release"))
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable with an explicit model wakeup set inside model
/// runs; plain std condvar otherwise.
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    cv: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            id: OnceLock::new(),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the mutex and returns the guard. Inside a model run
    /// the wait enters this condvar's explicit wakeup set: if no
    /// matching notify ever arrives, the thread stays blocked and the
    /// scheduler reports a deadlock (lost wakeups are observable).
    ///
    /// # Errors
    ///
    /// Returns a [`PoisonError`] carrying the reacquired guard if the
    /// mutex was poisoned while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mut guard = guard;
        if let (Some(ctx), true) = (core::current(), guard.modeled.is_some()) {
            let mutex = guard.mutex;
            let mid = mutex.model_id();
            // Release the raw lock now; the model op releases the
            // ownership atomically with entering the wakeup set, and
            // no other logical thread runs in between.
            guard.clear_for_wait();
            drop(guard);
            let modeled = ctx.sched.op_cv_wait(ctx.tid, self.model_id(), mid);
            return mutex.wrap(mutex.data.lock(), modeled.then_some(ctx));
        }
        // Passthrough (or a guard taken outside the model): real wait.
        let mutex = guard.mutex;
        let inner = guard
            .inner
            .take()
            .unwrap_or_else(|| unreachable!("guard accessed after release"));
        guard.modeled = None;
        drop(guard);
        mutex.wrap(self.cv.wait(inner), None)
    }

    fn model_id(&self) -> usize {
        object_id(&self.id)
    }

    /// Wakes one waiter. Inside a model run, *which* waiter wakes is a
    /// recorded scheduling decision; with an empty wakeup set the
    /// notification is lost, exactly like the real primitive.
    pub fn notify_one(&self) {
        if let Some(ctx) = core::current() {
            ctx.sched.op_notify(ctx.tid, self.model_id(), false);
        }
        self.cv.notify_one();
    }

    /// Wakes every waiter in the wakeup set.
    pub fn notify_all(&self) {
        if let Some(ctx) = core::current() {
            ctx.sched.op_notify(ctx.tid, self.model_id(), true);
        }
        self.cv.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Scoped-thread facade. Inside a model run every spawned thread
/// becomes a logical thread: it parks until scheduled, its panics are
/// contained (payloads travel through [`ScopedJoinHandle::join`], as
/// with std), and the scope logically joins every unjoined thread
/// before closing so the scheduler always knows who can run.
pub mod thread {
    use super::*;

    type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// Tracks logical threads spawned in a scope and not yet joined.
    #[derive(Default)]
    pub(super) struct ScopeTracker {
        unjoined: std::sync::Mutex<Vec<core::Tid>>,
    }

    impl ScopeTracker {
        fn push(&self, tid: core::Tid) {
            self.unjoined
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(tid);
        }

        fn remove(&self, tid: core::Tid) {
            self.unjoined
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain(|t| *t != tid);
        }

        fn take_all(&self) -> Vec<core::Tid> {
            let mut unjoined = self.unjoined.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *unjoined)
        }
    }

    /// Logically joins every unjoined scoped thread when the scope
    /// body finishes (normally or by unwind), so the raw scope close
    /// never blocks on a thread the scheduler still controls.
    struct ScopeJoiner {
        ctx: Ctx,
        tracker: Arc<ScopeTracker>,
    }

    impl Drop for ScopeJoiner {
        fn drop(&mut self) {
            let pending = self.tracker.take_all();
            if pending.is_empty() {
                return;
            }
            let mut any_panicked = false;
            for tid in pending {
                match self.ctx.sched.op_join(self.ctx.tid, tid) {
                    Some(panicked) => any_panicked |= panicked,
                    // Abort shutdown: the raw scope close joins the
                    // (self-killing) OS threads.
                    None => return,
                }
            }
            if any_panicked && !std::thread::panicking() {
                // Mirror std's scope semantics for unjoined panicked
                // threads; their payloads were contained by the spawn
                // wrapper, so the raw scope will not re-raise.
                panic!("a scoped thread panicked");
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; see
    /// [`std::thread::scope`]. The closure receives the facade
    /// [`Scope`] by value.
    pub fn scope<'env, T, F>(f: F) -> T
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
    {
        match core::current() {
            Some(ctx) => {
                let tracker = Arc::new(ScopeTracker::default());
                std::thread::scope(|s| {
                    let _joiner = ScopeJoiner {
                        ctx: ctx.clone(),
                        tracker: Arc::clone(&tracker),
                    };
                    f(Scope {
                        inner: s,
                        model: Some((ctx.clone(), Arc::clone(&tracker))),
                    })
                })
            }
            None => std::thread::scope(|s| {
                f(Scope {
                    inner: s,
                    model: None,
                })
            }),
        }
    }

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        model: Option<(Ctx, Arc<ScopeTracker>)>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`. Inside a model run the
        /// thread is registered with the scheduler before its OS
        /// thread starts, and the spawner hits a preemption point
        /// right after — so "child runs first" schedules are explored.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match &self.model {
                None => ScopedJoinHandle {
                    kind: HandleKind::Raw(self.inner.spawn(f)),
                },
                Some((ctx, tracker)) => {
                    let tid = ctx.sched.op_register_thread();
                    tracker.push(tid);
                    let sched = Arc::clone(&ctx.sched);
                    let handle = self.inner.spawn(move || {
                        // The whole logical thread (including its
                        // scheduler registration) runs under
                        // catch_unwind: panics — injected faults,
                        // assertion failures, abort kills — are
                        // contained here and re-raised only through
                        // `join`, never through the raw scope close.
                        catch_unwind(AssertUnwindSafe(move || {
                            let _enter = ThreadEnter::new(sched, tid);
                            f()
                        }))
                    });
                    ctx.sched.op_yield(ctx.tid);
                    ScopedJoinHandle {
                        kind: HandleKind::Model {
                            inner: handle,
                            tid,
                            tracker: Arc::clone(tracker),
                        },
                    }
                }
            }
        }
    }

    impl fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Scope").finish_non_exhaustive()
        }
    }

    /// Join handle for a thread spawned via [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        kind: HandleKind<'scope, T>,
    }

    enum HandleKind<'scope, T> {
        /// Passthrough handle (no model run active at spawn time).
        Raw(std::thread::ScopedJoinHandle<'scope, T>),
        /// Model handle: the payload-containing wrapper result plus
        /// the logical thread to join through the scheduler.
        Model {
            inner: std::thread::ScopedJoinHandle<'scope, Result<T, Payload>>,
            tid: core::Tid,
            tracker: Arc<ScopeTracker>,
        },
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or its
        /// panic payload (same contract as std).
        ///
        /// # Errors
        ///
        /// Returns the payload if the spawned thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            match self.kind {
                HandleKind::Raw(h) => h.join(),
                HandleKind::Model {
                    inner,
                    tid,
                    tracker,
                } => {
                    if let Some(ctx) = core::current() {
                        // Logical join first: park until the child's
                        // logical thread finishes (or bypass during
                        // abort — the raw join below blocks for real).
                        let _ = ctx.sched.op_join(ctx.tid, tid);
                    }
                    tracker.remove(tid);
                    match inner.join() {
                        Ok(result) => result,
                        Err(payload) => Err(payload),
                    }
                }
            }
        }
    }

    impl<T> fmt::Debug for ScopedJoinHandle<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ScopedJoinHandle").finish_non_exhaustive()
        }
    }
}
