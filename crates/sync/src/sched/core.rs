//! Scheduler core: logical-thread bookkeeping, the decision engine,
//! and the blocking operations the facade types delegate to.
//!
//! At most one logical thread runs at a time. Every other registered
//! thread is parked inside [`Scheduler::park`] on the scheduler's own
//! (real) condvar. A context switch happens only at an explicit
//! operation — lock acquire, condvar wait, notify-one wakeup choice,
//! spawn, join, fault point — and each switch appends one
//! [`Decision`] `(chosen, arity)` to the run's decision list, which is
//! the complete replayable description of the schedule.
//!
//! Deadlock (no runnable, not all finished) and step-budget overflow
//! set the run's `abort` message; every parked thread then wakes and
//! panics, unwinding its stack so scoped borrows are released and the
//! run's driver can report the failure with its replay string. During
//! that shutdown, facade operations on already-unwinding threads
//! degrade to plain std behaviour (`Bypassed`) so that drop guards
//! never panic inside a panic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{OnceLock, PoisonError};

/// Logical thread id within one model run (root is 0).
pub(crate) type Tid = usize;

/// Panic-message prefix used when the scheduler kills parked threads
/// after an abort (deadlock / step budget); the driver recognizes it.
pub(crate) const ABORT_PANIC_PREFIX: &str = "lcrb-sync schedule abort";

/// One scheduling decision: index `chosen` out of `arity` equally
/// legal alternatives (runnable threads, or condvar waiters for a
/// `notify_one`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub arity: usize,
}

/// How choices beyond the replay prefix are made.
#[derive(Debug)]
pub(crate) enum Picker {
    /// Always take alternative 0 (the DFS driver enumerates siblings
    /// through the replay prefix).
    Dfs,
    /// splitmix64 stream from the given seed.
    Seeded(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Running,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(Tid),
    Finished,
}

/// Signals that the calling thread is unwinding while the run is
/// aborting; the facade op should fall through to plain std behaviour.
pub(crate) struct Bypassed;

pub(crate) struct SchedState {
    statuses: Vec<Status>,
    panicked: Vec<bool>,
    current: Option<Tid>,
    /// Mutex id -> owning logical thread.
    owners: BTreeMap<usize, Tid>,
    /// Condvar id -> explicit FIFO wakeup set. `notify_one` removes
    /// one chosen entry; a notify with an empty set is a lost wakeup.
    wait_sets: BTreeMap<usize, Vec<Tid>>,
    /// Forced choices (replay prefix), then `picker` takes over.
    replay: Vec<usize>,
    cursor: usize,
    picker: Picker,
    pub decisions: Vec<Decision>,
    max_steps: usize,
    /// Failure description; once set the run is shutting down.
    pub abort: Option<String>,
    /// Armed fault points: name -> remaining executions before firing.
    faults: BTreeMap<String, u64>,
}

pub(crate) struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scheduler {
    pub(crate) fn new(picker: Picker, replay: Vec<usize>, max_steps: usize) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                statuses: vec![Status::Running],
                panicked: vec![false],
                current: Some(0),
                owners: BTreeMap::new(),
                wait_sets: BTreeMap::new(),
                replay,
                cursor: 0,
                picker,
                decisions: Vec::new(),
                max_steps,
                abort: None,
                faults: BTreeMap::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of (decisions, abort) for the run driver.
    pub(crate) fn snapshot(&self) -> (Vec<Decision>, Option<String>) {
        let st = self.lock_state();
        (st.decisions.clone(), st.abort.clone())
    }

    fn runnable_set(st: &SchedState) -> Vec<Tid> {
        st.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Makes one recorded choice among `arity` alternatives.
    fn decide(st: &mut SchedState, arity: usize) -> usize {
        debug_assert!(arity > 0);
        let chosen = if st.cursor < st.replay.len() {
            let c = st.replay[st.cursor].min(arity - 1);
            st.cursor += 1;
            c
        } else {
            match &mut st.picker {
                Picker::Dfs => 0,
                Picker::Seeded(seed) => (splitmix64(seed) % arity as u64) as usize,
            }
        };
        st.decisions.push(Decision { chosen, arity });
        chosen
    }

    fn describe_blocked(st: &SchedState) -> String {
        let mut parts = Vec::new();
        for (tid, s) in st.statuses.iter().enumerate() {
            let what = match s {
                Status::BlockedMutex(m) => format!("t{tid} blocked on mutex #{m}"),
                Status::BlockedCondvar(c) => format!("t{tid} waiting on condvar #{c}"),
                Status::BlockedJoin(j) => format!("t{tid} joining t{j}"),
                _ => continue,
            };
            parts.push(what);
        }
        parts.join(", ")
    }

    /// Picks the next thread to run and wakes it. The caller must have
    /// moved the calling thread out of `Running` first. Sets `abort`
    /// on deadlock or step-budget overflow.
    fn pick_next(&self, st: &mut SchedState) {
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable = Self::runnable_set(st);
        if runnable.is_empty() {
            if st.statuses.iter().all(|s| *s == Status::Finished) {
                st.current = None;
                return;
            }
            st.abort = Some(format!(
                "deadlock: no runnable thread ({})",
                Self::describe_blocked(st)
            ));
            self.cv.notify_all();
            return;
        }
        if st.decisions.len() >= st.max_steps {
            st.abort = Some(format!(
                "step budget exceeded ({} scheduling decisions)",
                st.max_steps
            ));
            self.cv.notify_all();
            return;
        }
        let chosen = Self::decide(st, runnable.len());
        st.current = Some(runnable[chosen]);
        self.cv.notify_all();
    }

    /// Parks the calling thread until it is scheduled again.
    ///
    /// On abort: panics (killing the thread so its stack unwinds and
    /// scoped borrows are released) unless the thread is *already*
    /// unwinding, in which case the caller gets [`Bypassed`] and falls
    /// through to plain std behaviour.
    fn park<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        tid: Tid,
    ) -> Result<StdMutexGuard<'a, SchedState>, Bypassed> {
        loop {
            if let Some(msg) = &st.abort {
                if std::thread::panicking() {
                    return Err(Bypassed);
                }
                let msg = msg.clone();
                drop(st);
                panic!("{ABORT_PANIC_PREFIX}: {msg}");
            }
            if st.current == Some(tid) && st.statuses[tid] == Status::Runnable {
                st.statuses[tid] = Status::Running;
                return Ok(st);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Preemption point: lets any runnable thread (including the
    /// caller) run next. Returns `false` when bypassed during abort.
    pub(crate) fn op_yield(&self, tid: Tid) -> bool {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return self.kill_or_bypass(st).is_err();
        }
        st.statuses[tid] = Status::Runnable;
        self.pick_next(&mut st);
        self.park(st, tid).is_ok()
    }

    /// On abort outside a park loop: kill the thread (panic) unless it
    /// is already unwinding. `Ok(())` is never returned; the Result
    /// shape keeps call sites uniform.
    fn kill_or_bypass(&self, st: StdMutexGuard<'_, SchedState>) -> Result<(), Bypassed> {
        if std::thread::panicking() {
            return Err(Bypassed);
        }
        let msg = st.abort.clone().unwrap_or_default();
        drop(st);
        panic!("{ABORT_PANIC_PREFIX}: {msg}");
    }

    /// Model-acquires mutex `mid` for `tid` (preemption point, then
    /// blocking acquire). Returns `false` when bypassed during abort —
    /// the facade then takes the raw lock without bookkeeping.
    pub(crate) fn op_lock(&self, tid: Tid, mid: usize) -> bool {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return !matches!(self.kill_or_bypass(st), Err(Bypassed));
        }
        st.statuses[tid] = Status::Runnable;
        self.pick_next(&mut st);
        st = match self.park(st, tid) {
            Ok(g) => g,
            Err(Bypassed) => return false,
        };
        loop {
            if let std::collections::btree_map::Entry::Vacant(e) = st.owners.entry(mid) {
                e.insert(tid);
                return true;
            }
            st.statuses[tid] = Status::BlockedMutex(mid);
            self.pick_next(&mut st);
            st = match self.park(st, tid) {
                Ok(g) => g,
                Err(Bypassed) => return false,
            };
        }
    }

    /// Model-releases mutex `mid`; every thread blocked on it becomes
    /// runnable and re-contends at its next scheduling. Not a
    /// preemption point (the next acquire/wait exposes the race).
    pub(crate) fn op_unlock(&self, _tid: Tid, mid: usize) {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return;
        }
        st.owners.remove(&mid);
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedMutex(mid) {
                *s = Status::Runnable;
            }
        }
    }

    /// Condvar wait: atomically releases `mid`, enters `cvid`'s wakeup
    /// set, parks until notified *and* scheduled, then model-reacquires
    /// `mid`. Returns `false` when bypassed during abort.
    pub(crate) fn op_cv_wait(&self, tid: Tid, cvid: usize, mid: usize) -> bool {
        {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                return !matches!(self.kill_or_bypass(st), Err(Bypassed));
            }
            st.owners.remove(&mid);
            for s in st.statuses.iter_mut() {
                if *s == Status::BlockedMutex(mid) {
                    *s = Status::Runnable;
                }
            }
            st.wait_sets.entry(cvid).or_default().push(tid);
            st.statuses[tid] = Status::BlockedCondvar(cvid);
            self.pick_next(&mut st);
            match self.park(st, tid) {
                Ok(g) => drop(g),
                Err(Bypassed) => return false,
            }
        }
        self.op_lock(tid, mid)
    }

    /// Notify: wakes one chosen waiter (the choice is itself a
    /// recorded decision) or all waiters. A notify with an empty
    /// wakeup set is a lost wakeup and does nothing — which is what
    /// makes lost-wakeup protocol bugs observable as deadlocks.
    pub(crate) fn op_notify(&self, _tid: Tid, cvid: usize, all: bool) {
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return;
        }
        let waiters = match st.wait_sets.get(&cvid) {
            Some(w) if !w.is_empty() => w.len(),
            _ => return,
        };
        if all {
            let woken = st
                .wait_sets
                .get_mut(&cvid)
                .map(std::mem::take)
                .unwrap_or_default();
            for t in woken {
                st.statuses[t] = Status::Runnable;
            }
        } else {
            let chosen = Self::decide(&mut st, waiters);
            if let Some(set) = st.wait_sets.get_mut(&cvid) {
                if chosen < set.len() {
                    let woken = set.remove(chosen);
                    st.statuses[woken] = Status::Runnable;
                }
            }
        }
    }

    /// Registers a new logical thread (runnable, not yet entered).
    /// Not a preemption point; the spawner yields after the OS thread
    /// actually exists.
    pub(crate) fn op_register_thread(&self) -> Tid {
        let mut st = self.lock_state();
        let tid = st.statuses.len();
        st.statuses.push(Status::Runnable);
        st.panicked.push(false);
        tid
    }

    /// First park of a freshly spawned logical thread.
    pub(crate) fn op_enter(&self, tid: Tid) {
        let st = self.lock_state();
        match self.park(st, tid) {
            Ok(_) | Err(Bypassed) => {}
        }
    }

    /// Marks `tid` finished (recording whether it panicked), wakes its
    /// joiners, and passes the schedule on.
    pub(crate) fn op_finish(&self, tid: Tid, panicked: bool) {
        let mut st = self.lock_state();
        st.statuses[tid] = Status::Finished;
        st.panicked[tid] = panicked;
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedJoin(tid) {
                *s = Status::Runnable;
            }
        }
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.current == Some(tid) {
            self.pick_next(&mut st);
        } else {
            self.cv.notify_all();
        }
    }

    /// Logical join: parks until `child` finishes. Returns whether the
    /// child panicked; `None` when bypassed during abort (the caller's
    /// raw `std` join does the real waiting then).
    pub(crate) fn op_join(&self, tid: Tid, child: Tid) -> Option<bool> {
        let mut st = self.lock_state();
        loop {
            if st.abort.is_some() {
                return match self.kill_or_bypass(st) {
                    Err(Bypassed) => None,
                    Ok(()) => unreachable!("kill_or_bypass never returns Ok"),
                };
            }
            if st.statuses[child] == Status::Finished {
                return Some(st.panicked[child]);
            }
            st.statuses[tid] = Status::BlockedJoin(child);
            self.pick_next(&mut st);
            st = match self.park(st, tid) {
                Ok(g) => g,
                Err(Bypassed) => return None,
            };
        }
    }

    /// Arms the named fault point to fire on its `nth` execution
    /// (1-based) within this run.
    pub(crate) fn arm_fault(&self, name: &str, nth: u64) {
        let mut st = self.lock_state();
        st.faults.insert(name.to_owned(), nth.max(1));
    }

    /// Executes a fault point: a preemption point that additionally
    /// reports whether the armed fault fires here.
    pub(crate) fn op_fault(&self, tid: Tid, name: &str) -> bool {
        if !self.op_yield(tid) {
            return false;
        }
        let mut st = self.lock_state();
        if st.abort.is_some() {
            return false;
        }
        match st.faults.get_mut(name) {
            Some(remaining) => {
                *remaining -= 1;
                if *remaining == 0 {
                    st.faults.remove(name);
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }
}

/// Per-OS-thread pointer to the active model run, if any.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub sched: Arc<Scheduler>,
    pub tid: Tid,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The calling OS thread's model context (None = passthrough mode).
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// RAII registration of a spawned logical thread: sets the TLS
/// context, parks until first scheduled; on drop reports the thread
/// finished (panicked = currently unwinding) and clears the TLS.
pub(crate) struct ThreadEnter {
    sched: Arc<Scheduler>,
    tid: Tid,
}

impl ThreadEnter {
    pub(crate) fn new(sched: Arc<Scheduler>, tid: Tid) -> Self {
        set_current(Some(Ctx {
            sched: Arc::clone(&sched),
            tid,
        }));
        let me = Self { sched, tid };
        me.sched.op_enter(tid);
        me
    }
}

impl Drop for ThreadEnter {
    fn drop(&mut self) {
        set_current(None);
        self.sched.op_finish(self.tid, std::thread::panicking());
    }
}

static NEXT_OBJECT_ID: AtomicUsize = AtomicUsize::new(0);

/// Lazily assigns a process-unique id to a model object (mutex or
/// condvar). Ids only key scheduler state maps; decisions are over
/// thread ids, so the values need not be stable across runs.
pub(crate) fn object_id(slot: &OnceLock<usize>) -> usize {
    *slot.get_or_init(|| NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed))
}
