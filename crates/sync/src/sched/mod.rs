//! Deterministic schedule exploration and fault injection.
//!
//! A **model run** executes a closure (the *body*) with logical
//! threads serialized by the cooperative scheduler in [`core`]: at
//! most one thread runs at a time, and every context switch is a
//! recorded decision `(chosen, arity)`. The resulting decision list
//! fully determines the schedule, so any run — in particular any
//! *failing* run — can be replayed exactly.
//!
//! Three drivers:
//!
//! * [`explore_dfs`] — bounded exhaustive depth-first enumeration of
//!   the decision tree: run, then backtrack the deepest decision (up
//!   to `max_depth`) that still has an untried sibling, and rerun with
//!   that prefix forced.
//! * [`explore_seeds`] — one run per seed; choices beyond the (empty)
//!   prefix come from a splitmix64 stream, so large thread counts get
//!   diverse schedules without tree blowup.
//! * [`replay`] — force a full recorded decision list; used to
//!   reproduce a reported failure under a debugger or in a regression
//!   test.
//!
//! A run **fails** if the body (root logical thread) panics, if the
//! scheduler detects a deadlock (no runnable thread while some are
//! blocked — including every lost-wakeup manifestation), or if the
//! decision budget is exhausted. The returned [`ScheduleFailure`]
//! carries the seed (if any) and the decision string; its `Display`
//! form is the repro recipe.
//!
//! Fault injection: [`arm_fault`]`("name", n)` inside the body makes
//! the `n`-th execution of `lcrb_sync::fault::point("name")` panic in
//! whichever logical thread executes it, exercising drop-guard
//! recovery paths under every explored schedule.

pub(crate) mod core;
pub mod facade;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use self::core::{Decision, Picker, Scheduler};

use crate::fault::FAULT_PANIC_PREFIX;

/// Budgets for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// DFS only: decisions beyond this depth never branch (always
    /// alternative 0), bounding the tree.
    pub max_depth: usize,
    /// Per-run cap on scheduling decisions; overflow fails the run.
    pub max_steps: usize,
    /// DFS only: cap on schedules explored; hitting it returns an
    /// incomplete (but passing) [`Exploration`].
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_depth: 48,
            max_steps: 100_000,
            max_schedules: 200_000,
        }
    }
}

/// Summary of a passing exploration.
#[derive(Clone, Copy, Debug)]
pub struct Exploration {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Whether the bounded DFS enumerated the whole (depth-bounded)
    /// tree; seeded exploration always reports `false`.
    pub complete: bool,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct ScheduleFailure {
    /// Panic payload of the root thread, or the scheduler's abort
    /// reason (deadlock / step budget).
    pub message: String,
    /// PRNG seed of the failing run (seeded exploration only).
    pub seed: Option<u64>,
    /// The failing run's full decision list (chosen indices).
    pub decisions: Vec<usize>,
    /// How many schedules ran up to and including the failing one.
    pub schedules: usize,
}

impl ScheduleFailure {
    /// The decision string: chosen indices joined with `.` — the
    /// argument to [`parse_replay`] / [`replay`].
    #[must_use]
    pub fn replay_string(&self) -> String {
        let parts: Vec<String> = self.decisions.iter().map(ToString::to_string).collect();
        parts.join(".")
    }
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule failure: {}", self.message)?;
        match self.seed {
            Some(seed) => writeln!(f, "  seed: {seed}")?,
            None => writeln!(f, "  seed: - (DFS)")?,
        }
        writeln!(f, "  schedule {} of this exploration", self.schedules)?;
        writeln!(f, "  replay decision string: {}", self.replay_string())?;
        write!(
            f,
            "  reproduce: lcrb_sync::sched::replay(&lcrb_sync::sched::parse_replay(\"{}\"), body)",
            self.replay_string()
        )
    }
}

/// Parses a decision string (`"0.2.1"`) back into chosen indices.
/// Ignores empty segments; non-numeric segments parse as 0.
#[must_use]
pub fn parse_replay(s: &str) -> Vec<usize> {
    s.split('.')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().unwrap_or(0))
        .collect()
}

/// Arms the named [`fault::point`](crate::fault::point) to panic on
/// its `nth` (1-based) execution within the current model run.
///
/// # Panics
///
/// Panics if called outside a model run — arming a fault that can
/// never fire is a test bug.
pub fn arm_fault(name: &str, nth: u64) {
    let ctx =
        core::current().unwrap_or_else(|| panic!("arm_fault('{name}') called outside a model run"));
    ctx.sched.arm_fault(name, nth);
}

/// Backend for [`crate::fault::point`]: no-op unless a model run is
/// active on this thread; inside one it is a preemption point that
/// panics when the armed execution is reached.
pub(crate) fn fault_point(name: &str) {
    if let Some(ctx) = core::current() {
        if ctx.sched.op_fault(ctx.tid, name) {
            panic!("{FAULT_PANIC_PREFIX} at '{name}'");
        }
    }
}

/// Returns whether `payload`-style panic message `msg` is an injected
/// fault (as opposed to an assertion or a scheduler abort).
#[must_use]
pub fn is_fault_panic(msg: &str) -> bool {
    msg.starts_with(FAULT_PANIC_PREFIX)
}

/// Renders a join-error / catch_unwind payload as a string.
#[must_use]
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

struct RunRecord {
    decisions: Vec<Decision>,
    abort: Option<String>,
    panic: Option<String>,
}

impl RunRecord {
    fn failure_message(&self) -> Option<String> {
        // The abort reason is authoritative: the root's panic in an
        // aborted run is just the kill mechanism.
        if let Some(msg) = &self.abort {
            return Some(msg.clone());
        }
        self.panic.clone()
    }

    fn chosen(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }
}

/// Installs (once per process) a panic hook that stays quiet for
/// threads inside a model run: injected faults and scheduler kills are
/// expected control flow there, and their payloads are reported
/// through [`ScheduleFailure`] instead. Other threads keep the
/// previous hook behaviour.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if core::current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn run_once<F: Fn()>(picker: Picker, prefix: Vec<usize>, max_steps: usize, body: &F) -> RunRecord {
    assert!(
        core::current().is_none(),
        "nested model runs are not supported"
    );
    install_quiet_hook();
    let sched = Arc::new(Scheduler::new(picker, prefix, max_steps));
    core::set_current(Some(core::Ctx {
        sched: Arc::clone(&sched),
        tid: 0,
    }));
    let result = catch_unwind(AssertUnwindSafe(body));
    core::set_current(None);
    let (decisions, abort) = sched.snapshot();
    RunRecord {
        decisions,
        abort,
        panic: result.err().map(|p| payload_message(p.as_ref())),
    }
}

/// The deepest decision (within `max_depth`) with an untried sibling,
/// advanced by one; `None` when the bounded tree is exhausted.
fn next_prefix(decisions: &[Decision], max_depth: usize) -> Option<Vec<usize>> {
    let mut idx = decisions.len().min(max_depth);
    while idx > 0 {
        idx -= 1;
        let d = decisions[idx];
        if d.chosen + 1 < d.arity {
            let mut prefix: Vec<usize> = decisions[..idx].iter().map(|d| d.chosen).collect();
            prefix.push(d.chosen + 1);
            return Some(prefix);
        }
    }
    None
}

/// Bounded exhaustive DFS over scheduling decisions.
///
/// Runs `body` under every schedule reachable by varying the first
/// `cfg.max_depth` decisions (deeper decisions always take
/// alternative 0), stopping early after `cfg.max_schedules` runs.
///
/// # Errors
///
/// The first failing schedule, with its replay decision string.
pub fn explore_dfs<F: Fn()>(cfg: &Config, body: F) -> Result<Exploration, ScheduleFailure> {
    let mut prefix = Vec::new();
    let mut schedules = 0usize;
    loop {
        let rec = run_once(Picker::Dfs, prefix, cfg.max_steps, &body);
        schedules += 1;
        if let Some(message) = rec.failure_message() {
            return Err(ScheduleFailure {
                message,
                seed: None,
                decisions: rec.chosen(),
                schedules,
            });
        }
        match next_prefix(&rec.decisions, cfg.max_depth) {
            Some(p) if schedules < cfg.max_schedules => prefix = p,
            Some(_) => {
                return Ok(Exploration {
                    schedules,
                    complete: false,
                })
            }
            None => {
                return Ok(Exploration {
                    schedules,
                    complete: true,
                })
            }
        }
    }
}

/// Seeded random exploration: one run per seed, choices drawn from a
/// splitmix64 stream.
///
/// # Errors
///
/// The first failing schedule, with its seed and replay string.
pub fn explore_seeds<F: Fn()>(
    cfg: &Config,
    seeds: &[u64],
    body: F,
) -> Result<Exploration, ScheduleFailure> {
    for (i, &seed) in seeds.iter().enumerate() {
        let rec = run_once(Picker::Seeded(seed), Vec::new(), cfg.max_steps, &body);
        if let Some(message) = rec.failure_message() {
            return Err(ScheduleFailure {
                message,
                seed: Some(seed),
                decisions: rec.chosen(),
                schedules: i + 1,
            });
        }
    }
    Ok(Exploration {
        schedules: seeds.len(),
        complete: false,
    })
}

/// Replays one schedule from a recorded decision list (see
/// [`ScheduleFailure::replay_string`] / [`parse_replay`]).
///
/// # Errors
///
/// The run's failure, if it (re)fails.
pub fn replay<F: Fn()>(decisions: &[usize], body: F) -> Result<(), ScheduleFailure> {
    let cfg = Config::default();
    let rec = run_once(
        Picker::Dfs,
        decisions.to_vec(),
        cfg.max_steps.max(decisions.len() + 1),
        &body,
    );
    match rec.failure_message() {
        Some(message) => Err(ScheduleFailure {
            message,
            seed: None,
            decisions: rec.chosen(),
            schedules: 1,
        }),
        None => Ok(()),
    }
}
