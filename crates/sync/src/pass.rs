//! Zero-cost std passthrough backend (default).
//!
//! Every type is a `#[repr(transparent)]`-shaped newtype over its
//! `std::sync` counterpart and every method is an `#[inline]` one-line
//! delegate, so release codegen is identical to using `std::sync`
//! directly. Poison semantics are preserved: `lock`/`wait` return
//! [`LockResult`] over the facade guard, built from the std error via
//! [`PoisonError::into_inner`] / [`PoisonError::new`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError};

/// Mutual-exclusion primitive; a thin wrapper over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    #[inline]
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is free.
    ///
    /// # Errors
    ///
    /// Returns a [`PoisonError`] carrying the guard if another thread
    /// panicked while holding this mutex (same contract as std).
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard { inner }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: poisoned.into_inner(),
            })),
        }
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable; a thin wrapper over [`std::sync::Condvar`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the mutex and returns the guard.
    ///
    /// # Errors
    ///
    /// Returns a [`PoisonError`] carrying the reacquired guard if the
    /// mutex was poisoned while this thread was waiting.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.inner.wait(guard.inner) {
            Ok(inner) => Ok(MutexGuard { inner }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: poisoned.into_inner(),
            })),
        }
    }

    /// Wakes one thread blocked in [`Condvar::wait`] on this condvar.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked in [`Condvar::wait`] on this condvar.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Scoped-thread facade mirroring [`std::thread::scope`].
pub mod thread {
    use std::fmt;

    /// Creates a scope for spawning borrowing threads; equivalent to
    /// [`std::thread::scope`] except the closure receives the facade
    /// [`Scope`] **by value** (it is `Copy`-free but reusable through
    /// `&self` methods).
    #[inline]
    pub fn scope<'env, T, F>(f: F) -> T
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|s| f(Scope { inner: s }))
    }

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`; the thread is joined
        /// (or its panic re-raised) before the scope returns.
        #[inline]
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    impl fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Scope").finish_non_exhaustive()
        }
    }

    /// Join handle for a thread spawned via [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload (same contract as std).
        ///
        /// # Errors
        ///
        /// Returns the payload if the spawned thread panicked.
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<T> fmt::Debug for ScopedJoinHandle<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ScopedJoinHandle").finish_non_exhaustive()
        }
    }
}
