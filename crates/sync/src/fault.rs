//! Named fault-injection points.
//!
//! Library code marks interesting failure sites with
//! [`point`]`("name")`. Under the default std backend — and under the
//! `sched` backend when no model run is active — a point is a no-op.
//! Inside a model run, a test can arm a point with
//! [`sched::arm_fault`](crate::sched::arm_fault)`("name", n)` so that
//! the `n`-th execution of that point panics with a recognizable
//! payload, exercising the drop-guard recovery path around it.
//!
//! Point names used by the workspace:
//!
//! | name            | site                                              |
//! |-----------------|---------------------------------------------------|
//! | `family.build`  | inside `FamilyCache::get_or_try_build`, after the |
//! |                 | miss is charged, before the builder closure runs  |
//! | `celf.advance`  | in `solve_greedy`, after `CelfCache::take`,       |
//! |                 | before the trajectory is advanced/stored          |
//! | `scratch.lease` | in `ScratchPool::lease`, after the scratch value  |
//! |                 | is removed from the free list                     |

/// Marker message prefix carried by every injected-fault panic.
pub const FAULT_PANIC_PREFIX: &str = "lcrb-sync injected fault";

/// Executes the named fault point.
///
/// No-op unless a model run is active **and** a test armed this name;
/// then the armed execution panics with
/// [`FAULT_PANIC_PREFIX`]` at '<name>'`.
#[inline]
pub fn point(name: &str) {
    #[cfg(feature = "sched")]
    crate::sched::fault_point(name);
    #[cfg(not(feature = "sched"))]
    let _ = name;
}
