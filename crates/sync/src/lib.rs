//! # lcrb-sync
//!
//! Synchronization facade for the LCRB reproduction.
//!
//! The shared concurrent [`Solver`] protocol (DESIGN.md §11) —
//! `FamilyCache` Building/Ready slots, one-shot `Gate` latches, CELF
//! leases, the `ScratchPool` free list and the `solve_many` scoped
//! fan-out — is written against this crate's `Mutex` / `MutexGuard` /
//! `Condvar` / `thread::scope` types instead of `std::sync` directly.
//! That single seam buys two backends:
//!
//! * **std passthrough** (default): `#[inline]` newtype wrappers over
//!   the `std::sync` primitives. No extra state, no branches — release
//!   codegen is the same as using `std::sync` directly.
//! * **deterministic cooperative scheduler** (`sched` feature): a
//!   model-checking backend that serializes logical threads so that at
//!   most one runs at a time, makes every context switch an explicit
//!   recorded decision, and explores the decision tree either
//!   exhaustively (bounded DFS) or randomly (seed-driven PRNG).
//!   Condvar wait/notify is modeled with explicit wakeup sets, so lost
//!   wakeups manifest as observable deadlocks; a fault registry lets a
//!   test make a chosen code path panic on its Nth execution to
//!   exercise drop-guard recovery paths. Every failing exploration
//!   reports a replay seed plus decision string that reproduces the
//!   schedule deterministically (see [`sched`]).
//!
//! With the `sched` feature enabled but **no model run active**, every
//! operation falls through to the plain std behaviour after one
//! thread-local check. This matters because cargo feature unification
//! turns the feature on for entire test builds: ordinary tests keep
//! their ordinary semantics, and only code executed inside
//! [`sched::explore_dfs`] / [`sched::explore_seeds`] / [`sched::replay`]
//! is scheduled by the model.
//!
//! [`Solver`]: ../lcrb/engine/struct.Solver.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub use std::sync::{LockResult, PoisonError};

pub mod fault;

#[cfg(not(feature = "sched"))]
mod pass;
#[cfg(not(feature = "sched"))]
pub use pass::{thread, Condvar, Mutex, MutexGuard};

#[cfg(feature = "sched")]
pub mod sched;
#[cfg(feature = "sched")]
pub use sched::facade::{thread, Condvar, Mutex, MutexGuard};
