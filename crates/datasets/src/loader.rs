//! Loading the paper's real traces, if the user has them.
//!
//! The Enron email network and the arXiv Hep collaboration network
//! are both distributed by SNAP as whitespace edge lists. Drop them
//! anywhere on disk and point [`load_edge_list`] at the file; the
//! experiments accept either a synthetic stand-in or a loaded trace.

use std::fs::File;
use std::path::Path;

use lcrb_graph::io::{read_edge_list, LoadedGraph};
use lcrb_graph::ParseEdgeListError;

/// Reads a SNAP-style edge list from `path` (comments starting with
/// `#`/`%` ignored, arbitrary string node labels remapped to dense
/// ids).
///
/// For undirected collaboration networks, symmetrize afterwards with
/// [`lcrb_graph::DiGraph::symmetrized`], matching the paper's
/// treatment of the Hep network ("we represent each undirected edge
/// `(i,j)` by two directed edges", §VI-A2).
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] for I/O failures or malformed
/// lines.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, ParseEdgeListError> {
    let file = File::open(path)?;
    read_edge_list(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn loads_a_file_from_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join("lcrb_loader_test_edges.txt");
        {
            let mut f = File::create(&path).unwrap();
            writeln!(f, "# test graph").unwrap();
            writeln!(f, "a b").unwrap();
            writeln!(f, "b c").unwrap();
        }
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.graph.node_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_edge_list("/nonexistent/lcrb/edges.txt").unwrap_err();
        assert!(matches!(err, ParseEdgeListError::Io(_)));
    }
}
