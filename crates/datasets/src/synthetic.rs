//! Calibrated synthetic stand-ins for the paper's datasets.
//!
//! The paper evaluates on two real networks (§VI-A):
//!
//! - **Enron email**: 36,692 nodes, 367,662 directed edges, average
//!   node degree 10.0, with Louvain communities including one of 80
//!   nodes (135 bridge ends) and one of 2,631 nodes (2,250 bridge
//!   ends);
//! - **Hep collaboration** (arXiv high-energy physics): 15,233 nodes,
//!   58,891 undirected edges (symmetrized to 117,782 arcs), average
//!   node degree 7.73, with a community of 308 nodes (387 bridge
//!   ends).
//!
//! The raw traces are not redistributable here, so this module
//! builds synthetic graphs matched on the statistics the algorithms
//! actually consume: node count, edge count / average degree, edge
//! symmetry, and a heavy-tailed planted community structure with
//! communities *pinned* at the sizes the paper selects as rumor
//! communities. See DESIGN.md §3 for why this substitution preserves
//! the experimental shape. Real traces dropped into `data/` can be
//! loaded instead via [`crate::load_edge_list`].

// xtask-allow-file: index -- generator-owned arrays are sized to the synthesized node count before any indexing
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use lcrb_community::Partition;
use lcrb_graph::generators::community_gnm;
use lcrb_graph::metrics::GraphSummary;
use lcrb_graph::DiGraph;

/// Configuration for the synthetic dataset builders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetConfig {
    /// Linear scale factor on node and edge counts, in `(0, 1]`.
    /// `1.0` reproduces the paper's sizes; smaller values build
    /// proportionally shrunken networks for quick experiments (the
    /// pinned community sizes shrink with the same factor).
    pub scale: f64,
    /// RNG seed; datasets are deterministic functions of
    /// `(scale, seed)`.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            scale: 1.0,
            seed: 0,
        }
    }
}

impl DatasetConfig {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    #[must_use]
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        DatasetConfig { scale, seed }
    }
}

/// A generated synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// Human-readable name ("enron-like", "hep-like").
    pub name: &'static str,
    /// The network.
    pub graph: DiGraph,
    /// The planted community structure (what the paper obtains with
    /// Louvain on the real traces).
    pub planted: Partition,
    /// Community ids of the pinned paper-experiment communities, in
    /// the order documented per dataset (e.g. enron-like pins
    /// `[|C|≈2631, |C|≈80]`).
    pub pinned_communities: Vec<usize>,
}

impl SyntheticDataset {
    /// Structural summary (for logging and calibration checks).
    #[must_use]
    pub fn summary(&self) -> GraphSummary {
        GraphSummary::of(&self.graph)
    }
}

/// Draws heavy-tailed community sizes summing exactly to `total`,
/// starting from the pinned sizes.
fn power_law_sizes<R: Rng + ?Sized>(
    total: usize,
    pinned: &[usize],
    min_size: usize,
    max_size: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut sizes: Vec<usize> = pinned.to_vec();
    let mut used: usize = sizes.iter().sum();
    assert!(used <= total, "pinned sizes exceed the node budget");
    // Pareto(γ ≈ 2.5) tail: heavy-tailed like real Louvain partitions.
    while total - used > 0 {
        let remaining = total - used;
        if remaining <= min_size * 2 {
            sizes.push(remaining);
            break;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let raw = (min_size as f64 * u.powf(-1.0 / 1.5)).floor() as usize;
        let s = raw.clamp(min_size, max_size.min(remaining));
        sizes.push(s);
        used += s;
    }
    sizes
}

/// Allocates per-community internal edge budgets proportional to
/// community size, capped by what each community can hold, and
/// returns `(intra_budgets, inter_budget)`.
fn edge_budgets(
    sizes: &[usize],
    total_edges: usize,
    mixing: f64,
    symmetric: bool,
) -> (Vec<usize>, usize) {
    let n: usize = sizes.iter().sum();
    let intra_total = ((1.0 - mixing) * total_edges as f64) as usize;
    let cap_of = |s: usize| {
        if symmetric {
            s * (s - 1) / 2
        } else {
            s * (s - 1)
        }
    };
    let mut intra: Vec<usize> = sizes
        .iter()
        .map(|&s| {
            let want = (intra_total as f64 * s as f64 / n as f64) as usize;
            want.min(cap_of(s))
        })
        .collect();
    // Small communities cap out below their proportional share;
    // redistribute the shortfall into communities with slack so the
    // global mixing parameter stays on target.
    let mut assigned: usize = intra.iter().sum();
    if assigned < intra_total {
        let mut shortfall = intra_total - assigned;
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cap_of(sizes[i]) - intra[i]));
        for i in order {
            if shortfall == 0 {
                break;
            }
            let slack = cap_of(sizes[i]) - intra[i];
            // Keep each community below ~60% internal density so the
            // redistribution does not create near-cliques.
            let headroom = (cap_of(sizes[i]) * 3 / 5).saturating_sub(intra[i]);
            let add = slack.min(headroom).min(shortfall);
            intra[i] += add;
            shortfall -= add;
        }
        assigned = intra.iter().sum();
    }
    let mut inter = total_edges.saturating_sub(assigned);
    // Keep the inter budget inside the available cross-pair space
    // (only binds for degenerate scales).
    let cross_pairs = {
        let all = if symmetric {
            n * (n - 1) / 2
        } else {
            n * (n - 1)
        };
        let intra_pairs: usize = sizes
            .iter()
            .map(|&s| {
                if symmetric {
                    s * (s - 1) / 2
                } else {
                    s * (s - 1)
                }
            })
            .sum();
        all - intra_pairs
    };
    if inter > cross_pairs {
        // Push the overflow back into the largest communities.
        let mut overflow = inter - cross_pairs;
        inter = cross_pairs;
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..sizes.len()).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
            idx
        };
        for i in order {
            if overflow == 0 {
                break;
            }
            let cap = if symmetric {
                sizes[i] * (sizes[i] - 1) / 2
            } else {
                sizes[i] * (sizes[i] - 1)
            };
            let room = cap - intra[i];
            let add = room.min(overflow);
            intra[i] += add;
            overflow -= add;
        }
    }
    (intra, inter)
}

/// How node degrees are distributed inside the synthetic blocks.
#[derive(Clone, Copy, Debug, PartialEq)]
enum DegreeModel {
    /// Near-Poisson degrees (`G(n, m)` blocks).
    Homogeneous,
    /// Heavy-tailed Chung–Lu degrees with the given Pareto exponent
    /// — produces the hubs real email/collaboration graphs have.
    HeavyTailed { exponent: f64 },
}

#[allow(clippy::too_many_arguments)]
fn build(
    name: &'static str,
    nodes: usize,
    edges: usize,
    pinned: &[usize],
    min_size: usize,
    max_size: usize,
    mixing: f64,
    symmetric: bool,
    seed: u64,
    degrees: DegreeModel,
) -> SyntheticDataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sizes = power_law_sizes(nodes, pinned, min_size, max_size, &mut rng);
    let (intra, inter) = edge_budgets(&sizes, edges, mixing, symmetric);
    let (graph, labels) = match degrees {
        DegreeModel::Homogeneous => community_gnm(&sizes, &intra, inter, symmetric, &mut rng),
        DegreeModel::HeavyTailed { exponent } => lcrb_graph::generators::community_chung_lu(
            &sizes, &intra, inter, exponent, symmetric, &mut rng,
        ),
    }
    // xtask-allow: panic -- the calibration loop only emits budgets it has already verified feasible
    .expect("calibrated budgets are feasible by construction");
    let planted = Partition::from_labels(labels);
    // Pinned communities come first in `sizes`, and community_gnm
    // labels blocks in order, so their ids are 0..pinned.len().
    SyntheticDataset {
        name,
        graph,
        planted,
        pinned_communities: (0..pinned.len()).collect(),
    }
}

/// Paper statistics of the Enron email network.
pub mod enron_stats {
    /// Node count reported in §VI-A1.
    pub const NODES: usize = 36_692;
    /// Directed edge count reported in §VI-A1.
    pub const EDGES: usize = 367_662;
    /// The large rumor community used in Fig. 6/9 and Table I.
    pub const LARGE_COMMUNITY: usize = 2_631;
    /// The small rumor community used in Fig. 5/8 and Table I.
    pub const SMALL_COMMUNITY: usize = 80;
}

/// Paper statistics of the Hep collaboration network.
pub mod hep_stats {
    /// Node count reported in §VI-A2.
    pub const NODES: usize = 15_233;
    /// Undirected edge count reported in §VI-A2 (each becomes two
    /// arcs after symmetrization).
    pub const UNDIRECTED_EDGES: usize = 58_891;
    /// The rumor community used in Fig. 4/7 and Table I.
    pub const COMMUNITY: usize = 308;
}

/// Builds the Enron-like directed network: heavy-tailed communities
/// with pinned blocks near sizes 2631 and 80 (ids 0 and 1 of
/// [`SyntheticDataset::pinned_communities`]), calibrated to 36,692
/// nodes / 367,662 arcs at scale 1.
///
/// # Panics
///
/// Panics if `config.scale` is not in `(0, 1]` or so small that the
/// pinned communities degenerate (fewer than 8 nodes).
///
/// # Examples
///
/// ```
/// use lcrb_datasets::{enron_like, DatasetConfig};
///
/// let ds = enron_like(&DatasetConfig::new(0.02, 7));
/// assert_eq!(ds.name, "enron-like");
/// assert!(ds.graph.node_count() > 500);
/// ```
#[must_use]
pub fn enron_like(config: &DatasetConfig) -> SyntheticDataset {
    let scale = config.scale;
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let nodes = (enron_stats::NODES as f64 * scale).round() as usize;
    let edges = (enron_stats::EDGES as f64 * scale).round() as usize;
    let big = (enron_stats::LARGE_COMMUNITY as f64 * scale).round() as usize;
    let small = (enron_stats::SMALL_COMMUNITY as f64 * scale)
        .round()
        .max(8.0) as usize;
    assert!(big >= 8, "scale {scale} degenerates the pinned communities");
    build(
        "enron-like",
        nodes,
        edges,
        &[big, small],
        (20.0 * scale).max(5.0) as usize,
        (4_000.0 * scale).max(50.0) as usize,
        0.20,
        false,
        config.seed,
        DegreeModel::Homogeneous,
    )
}

/// Builds the Hep-like symmetric network: pinned block near size 308
/// (id 0 of [`SyntheticDataset::pinned_communities`]), calibrated to
/// 15,233 nodes / 58,891 undirected edges at scale 1.
///
/// # Panics
///
/// Panics if `config.scale` is not in `(0, 1]` or degenerates the
/// pinned community.
///
/// # Examples
///
/// ```
/// use lcrb_datasets::{hep_like, DatasetConfig};
///
/// let ds = hep_like(&DatasetConfig::new(0.05, 3));
/// // Symmetric: every arc has its reverse.
/// assert!(ds.graph.edges().all(|(u, v)| ds.graph.has_edge(v, u)));
/// ```
#[must_use]
pub fn hep_like(config: &DatasetConfig) -> SyntheticDataset {
    let scale = config.scale;
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let nodes = (hep_stats::NODES as f64 * scale).round() as usize;
    let pairs = (hep_stats::UNDIRECTED_EDGES as f64 * scale).round() as usize;
    let comm = (hep_stats::COMMUNITY as f64 * scale).round().max(8.0) as usize;
    build(
        "hep-like",
        nodes,
        pairs,
        &[comm],
        (15.0 * scale).max(4.0) as usize,
        (1_500.0 * scale).max(40.0) as usize,
        0.33,
        true,
        config.seed,
        DegreeModel::Homogeneous,
    )
}

/// Degree-heterogeneous variant of [`enron_like`]: identical node,
/// edge, mixing, and pinned-community calibration, but block edges
/// follow a Chung–Lu model with Pareto exponent 2.5, producing the
/// hub structure of the real Enron graph (whose top senders have
/// degrees in the hundreds). Use this variant to study how
/// degree-based heuristics (MaxDegree, PageRank) behave when hubs
/// actually exist; see the `ablation/degree_model` benchmarks.
///
/// # Panics
///
/// Same conditions as [`enron_like`].
#[must_use]
pub fn enron_like_heterogeneous(config: &DatasetConfig) -> SyntheticDataset {
    let scale = config.scale;
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let nodes = (enron_stats::NODES as f64 * scale).round() as usize;
    let edges = (enron_stats::EDGES as f64 * scale).round() as usize;
    let big = (enron_stats::LARGE_COMMUNITY as f64 * scale).round() as usize;
    let small = (enron_stats::SMALL_COMMUNITY as f64 * scale)
        .round()
        .max(8.0) as usize;
    assert!(big >= 8, "scale {scale} degenerates the pinned communities");
    build(
        "enron-like-heterogeneous",
        nodes,
        edges,
        &[big, small],
        (20.0 * scale).max(5.0) as usize,
        (4_000.0 * scale).max(50.0) as usize,
        0.20,
        false,
        config.seed,
        DegreeModel::HeavyTailed { exponent: 2.5 },
    )
}

/// Degree-heterogeneous variant of [`hep_like`] (see
/// [`enron_like_heterogeneous`]).
///
/// # Panics
///
/// Same conditions as [`hep_like`].
#[must_use]
pub fn hep_like_heterogeneous(config: &DatasetConfig) -> SyntheticDataset {
    let scale = config.scale;
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let nodes = (hep_stats::NODES as f64 * scale).round() as usize;
    let pairs = (hep_stats::UNDIRECTED_EDGES as f64 * scale).round() as usize;
    let comm = (hep_stats::COMMUNITY as f64 * scale).round().max(8.0) as usize;
    build(
        "hep-like-heterogeneous",
        nodes,
        pairs,
        &[comm],
        (15.0 * scale).max(4.0) as usize,
        (1_500.0 * scale).max(40.0) as usize,
        0.33,
        true,
        config.seed,
        DegreeModel::HeavyTailed { exponent: 2.5 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::metrics::mixing_parameter;

    #[test]
    fn power_law_sizes_sum_exactly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sizes = power_law_sizes(5_000, &[800, 50], 20, 1_000, &mut rng);
        assert_eq!(sizes.iter().sum::<usize>(), 5_000);
        assert_eq!(sizes[0], 800);
        assert_eq!(sizes[1], 50);
        assert!(sizes.len() > 10);
    }

    #[test]
    #[should_panic(expected = "exceed the node budget")]
    fn power_law_sizes_reject_oversized_pins() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = power_law_sizes(100, &[200], 10, 50, &mut rng);
    }

    #[test]
    fn edge_budgets_respect_caps_and_total() {
        let sizes = vec![50, 30, 20];
        let (intra, inter) = edge_budgets(&sizes, 900, 0.25, false);
        let assigned: usize = intra.iter().sum();
        assert_eq!(assigned + inter, 900);
        for (s, &m) in sizes.iter().zip(&intra) {
            assert!(m <= s * (s - 1));
        }
    }

    #[test]
    fn enron_like_matches_paper_statistics_at_small_scale() {
        let ds = enron_like(&DatasetConfig::new(0.05, 11));
        let s = ds.summary();
        let want_nodes = (36_692.0_f64 * 0.05).round();
        let want_edges = (367_662.0_f64 * 0.05).round();
        assert!((s.nodes as f64 - want_nodes).abs() / want_nodes < 0.02);
        assert_eq!(s.edges as f64, want_edges);
        // Average degree ≈ 10 regardless of scale.
        assert!(
            (s.average_out_degree - 10.0).abs() < 0.5,
            "{}",
            s.average_out_degree
        );
        // Pinned communities at scaled paper sizes.
        let sizes = ds.planted.community_sizes();
        assert_eq!(
            sizes[ds.pinned_communities[0]],
            (2631.0_f64 * 0.05).round() as usize
        );
        assert_eq!(sizes[ds.pinned_communities[1]], 8); // max(80 * 0.05, 8)
    }

    #[test]
    fn hep_like_is_symmetric_with_paper_degree() {
        let ds = hep_like(&DatasetConfig::new(0.05, 5));
        let s = ds.summary();
        assert_eq!(s.reciprocity, 1.0);
        // avg out-degree = 2 * pairs / nodes ≈ 7.73.
        assert!(
            (s.average_out_degree - 7.73).abs() < 0.6,
            "{}",
            s.average_out_degree
        );
        let sizes = ds.planted.community_sizes();
        assert_eq!(
            sizes[ds.pinned_communities[0]],
            (308.0_f64 * 0.05).round() as usize
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = enron_like(&DatasetConfig::new(0.02, 9));
        let b = enron_like(&DatasetConfig::new(0.02, 9));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn different_seeds_differ() {
        let a = enron_like(&DatasetConfig::new(0.02, 1));
        let b = enron_like(&DatasetConfig::new(0.02, 2));
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn mixing_parameter_matches_calibration() {
        let ds = enron_like(&DatasetConfig::new(0.05, 13));
        let mu = mixing_parameter(&ds.graph, &ds.planted);
        assert!((mu - 0.20).abs() < 0.05, "mixing {mu}");
        let ds = hep_like(&DatasetConfig::new(0.05, 13));
        let mu = mixing_parameter(&ds.graph, &ds.planted);
        assert!((mu - 0.33).abs() < 0.06, "mixing {mu}");
    }

    #[test]
    fn heterogeneous_variants_have_hubs_and_same_calibration() {
        let homo = enron_like(&DatasetConfig::new(0.05, 7));
        let hetero = enron_like_heterogeneous(&DatasetConfig::new(0.05, 7));
        assert_eq!(homo.graph.node_count(), hetero.graph.node_count());
        assert_eq!(homo.graph.edge_count(), hetero.graph.edge_count());
        assert_eq!(
            homo.planted.community_sizes()[0],
            hetero.planted.community_sizes()[0]
        );
        let max_homo = homo.summary().max_out_degree;
        let max_hetero = hetero.summary().max_out_degree;
        assert!(
            max_hetero as f64 > 2.0 * max_homo as f64,
            "hetero max degree {max_hetero} vs homo {max_homo}"
        );
    }

    #[test]
    fn hep_heterogeneous_is_symmetric() {
        let ds = hep_like_heterogeneous(&DatasetConfig::new(0.04, 3));
        assert_eq!(ds.summary().reciprocity, 1.0);
        assert_eq!(ds.name, "hep-like-heterogeneous");
        // Same mixing calibration as the homogeneous variant.
        let mu = lcrb_community::metrics::mixing_parameter(&ds.graph, &ds.planted);
        assert!((mu - 0.33).abs() < 0.08, "mixing {mu}");
    }

    #[test]
    fn community_sizes_respect_min_floor() {
        let ds = enron_like(&DatasetConfig::new(0.1, 21));
        let sizes = ds.planted.community_sizes();
        let min_size = (20.0_f64 * 0.1).max(5.0) as usize;
        // Every block respects the floor except possibly the final
        // remainder block (which absorbs the leftover nodes).
        let violations = sizes.iter().filter(|&&s| s < min_size).count();
        assert!(violations <= 1, "{violations} undersized communities");
    }

    #[test]
    fn heterogeneous_edge_budgets_are_exact() {
        let scale = 0.05;
        let ds = enron_like_heterogeneous(&DatasetConfig::new(scale, 3));
        assert_eq!(
            ds.graph.edge_count(),
            (super::enron_stats::EDGES as f64 * scale).round() as usize
        );
        let ds = hep_like_heterogeneous(&DatasetConfig::new(scale, 3));
        assert_eq!(
            ds.graph.edge_count(),
            2 * (super::hep_stats::UNDIRECTED_EDGES as f64 * scale).round() as usize
        );
    }

    #[test]
    fn scale_preserves_average_degree() {
        for scale in [0.03, 0.08, 0.15] {
            let ds = enron_like(&DatasetConfig::new(scale, 2));
            let avg = ds.graph.edge_count() as f64 / ds.graph.node_count() as f64;
            assert!((avg - 10.0).abs() < 0.6, "scale {scale}: avg {avg}");
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn rejects_zero_scale() {
        let _ = enron_like(&DatasetConfig {
            scale: 0.0,
            seed: 0,
        });
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn config_new_rejects_oversized_scale() {
        let _ = DatasetConfig::new(1.5, 0);
    }
}
