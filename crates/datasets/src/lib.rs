//! # lcrb-datasets
//!
//! Dataset layer for the reproduction of *Least Cost Rumor Blocking
//! in Social Networks* (Fan et al., ICDCS 2013).
//!
//! Provides calibrated synthetic stand-ins for the paper's two
//! evaluation networks — [`enron_like`] (36,692 nodes, 367,662
//! directed arcs, avg degree 10.0) and [`hep_like`] (15,233 nodes,
//! 58,891 undirected edges, avg degree 7.73) — with heavy-tailed
//! planted community structure pinning the exact rumor-community
//! sizes the paper experiments on (2631, 80, and 308). A
//! [`load_edge_list`] escape hatch loads the real SNAP traces when
//! available. See DESIGN.md §3 for the substitution rationale.
//!
//! ## Example
//!
//! ```
//! use lcrb_datasets::{enron_like, DatasetConfig};
//!
//! // A 2% scale model for fast experiments.
//! let ds = enron_like(&DatasetConfig::new(0.02, 42));
//! println!("{}: {}", ds.name, ds.summary());
//! assert!(ds.planted.community_count() > 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod loader;
mod synthetic;

pub use loader::load_edge_list;
pub use synthetic::{
    enron_like, enron_like_heterogeneous, enron_stats, hep_like, hep_like_heterogeneous, hep_stats,
    DatasetConfig, SyntheticDataset,
};
