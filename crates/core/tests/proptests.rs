//! Property-based tests for the LCRB algorithms, including empirical
//! checks of the paper's theory: per-realization monotonicity and
//! submodularity of the protector-blocking count (Lemma 4 / Theorem
//! 1), the exactness of SCBG covers, and set-cover invariants.

use lcrb::setcover::{greedy_set_cover, harmonic};
use lcrb::{
    find_bridge_ends, greedy_with_budget, protectors_to_cover_all, scbg, BridgeEndRule,
    GreedyConfig, MaxDegreeSelector, ProtectionObjective, RumorBlockingInstance, ScbgConfig,
};
use lcrb_community::Partition;
use lcrb_diffusion::DoamModel;
use lcrb_graph::{DiGraph, NodeId};
use proptest::prelude::*;

/// A random two-community instance with rumor seeds in community 0.
fn arb_instance() -> impl Strategy<Value = RumorBlockingInstance> {
    (4usize..14, 4usize..14, 0u64..10_000).prop_flat_map(|(a, b, seed)| {
        let n = a + b;
        (
            proptest::collection::vec((0..n, 0..n), n..(4 * n)),
            proptest::collection::btree_set(0..a, 1..3.min(a)),
        )
            .prop_map(move |(pairs, seeds)| {
                let mut g = DiGraph::with_nodes(n);
                for (u, v) in pairs {
                    if u != v {
                        let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
                    }
                }
                let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= a)).collect();
                let _ = seed;
                RumorBlockingInstance::new(
                    g,
                    Partition::from_labels(labels),
                    0,
                    seeds.into_iter().map(NodeId::new).collect(),
                )
                .expect("seeds are in community 0 by construction")
            })
    })
}

/// Distinct non-rumor nodes of an instance, for protector picks.
fn non_rumor_nodes(inst: &RumorBlockingInstance) -> Vec<NodeId> {
    inst.graph()
        .nodes()
        .filter(|&v| !inst.is_rumor_seed(v))
        .collect()
}

proptest! {
    /// Lemma 4 (monotonicity): on a fixed realization, adding a
    /// protector never decreases the number of saved bridge ends.
    #[test]
    fn saved_count_is_monotone_per_realization(
        inst in arb_instance(),
        picks in proptest::collection::vec(0usize..100, 1..4),
        rseed in 0u64..64,
    ) {
        let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
        let obj = ProtectionObjective::new(&inst, bridges.nodes, 1, rseed, 31).unwrap();
        let pool = non_rumor_nodes(&inst);
        let mut set: Vec<NodeId> = Vec::new();
        let mut prev = obj.saved_on_realization(0, &set).unwrap();
        for p in picks {
            let candidate = pool[p % pool.len()];
            if set.contains(&candidate) {
                continue;
            }
            set.push(candidate);
            let cur = obj.saved_on_realization(0, &set).unwrap();
            prop_assert!(
                cur >= prev,
                "adding {candidate} dropped saved count {prev} -> {cur}"
            );
            prev = cur;
        }
    }

    /// Lemma 4 (submodularity): on a fixed realization, the marginal
    /// gain of a node shrinks as the base set grows:
    /// f(X ∪ v) − f(X) ≥ f(Y ∪ v) − f(Y) for X ⊆ Y.
    #[test]
    fn saved_count_is_submodular_per_realization(
        inst in arb_instance(),
        xs in proptest::collection::btree_set(0usize..100, 0..3),
        extra in proptest::collection::btree_set(0usize..100, 1..3),
        v in 0usize..100,
        rseed in 0u64..64,
    ) {
        let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
        let obj = ProtectionObjective::new(&inst, bridges.nodes, 1, rseed, 31).unwrap();
        let pool = non_rumor_nodes(&inst);
        let to_nodes = |idxs: &std::collections::BTreeSet<usize>| -> Vec<NodeId> {
            let mut out: Vec<NodeId> = idxs.iter().map(|&i| pool[i % pool.len()]).collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let x = to_nodes(&xs);
        let mut y = x.clone();
        for n in to_nodes(&extra) {
            if !y.contains(&n) {
                y.push(n);
            }
        }
        let v = pool[v % pool.len()];
        if x.contains(&v) || y.contains(&v) {
            return Ok(());
        }
        let f = |s: &[NodeId]| obj.saved_on_realization(0, s).unwrap() as i64;
        let mut xv = x.clone();
        xv.push(v);
        let mut yv = y.clone();
        yv.push(v);
        let gain_x = f(&xv) - f(&x);
        let gain_y = f(&yv) - f(&y);
        prop_assert!(
            gain_x >= gain_y,
            "submodularity violated: gain at X = {gain_x} < gain at Y = {gain_y} (|X|={}, |Y|={})",
            x.len(),
            y.len()
        );
    }

    /// SCBG always covers every bridge end, and the DOAM simulation
    /// certifies the protection.
    #[test]
    fn scbg_cover_is_complete_and_certified(inst in arb_instance()) {
        let sol = scbg(&inst, &ScbgConfig::default());
        prop_assert!(sol.is_complete());
        let seeds = inst.seed_sets(sol.protectors.clone()).unwrap();
        let outcome = DoamModel::default().run_deterministic(inst.graph(), &seeds);
        for &v in &sol.bridge_ends.nodes {
            prop_assert!(!outcome.status(v).is_infected(), "bridge end {v} infected");
        }
        // Never selects rumor seeds and never repeats.
        let mut seen = std::collections::HashSet::new();
        for &p in &sol.protectors {
            prop_assert!(!inst.is_rumor_seed(p));
            prop_assert!(seen.insert(p));
        }
    }

    /// Every set greedy set cover selects contributes at least one
    /// new element, and coverage equals the coverable universe.
    #[test]
    fn greedy_set_cover_invariants(
        universe in 1usize..30,
        sets in proptest::collection::vec(proptest::collection::vec(0u32..30, 0..8), 0..12),
    ) {
        let sets: Vec<Vec<u32>> = sets
            .into_iter()
            .map(|s| s.into_iter().filter(|&e| (e as usize) < universe).collect())
            .collect();
        let sol = greedy_set_cover(universe, &sets);
        // Coverage equals the union of all sets.
        let mut coverable = vec![false; universe];
        for s in &sets {
            for &e in s {
                coverable[e as usize] = true;
            }
        }
        prop_assert_eq!(sol.covered, coverable.iter().filter(|&&b| b).count());
        // Replay: each selected set adds fresh coverage.
        let mut covered = vec![false; universe];
        for &i in &sol.selected {
            let fresh = sets[i].iter().any(|&e| !covered[e as usize]);
            prop_assert!(fresh, "set {i} added nothing");
            for &e in &sets[i] {
                covered[e as usize] = true;
            }
        }
        prop_assert_eq!(sol.cost, sol.selected.len() as f64);
    }

    /// Greedy set cover respects the harmonic bound against a known
    /// optimum built from disjoint blocks.
    #[test]
    fn greedy_set_cover_harmonic_bound(blocks in 1usize..5, block_size in 1usize..5, decoys in 0usize..6) {
        let universe = blocks * block_size;
        let mut sets: Vec<Vec<u32>> = (0..blocks)
            .map(|b| ((b * block_size) as u32..((b + 1) * block_size) as u32).collect())
            .collect();
        // Decoys: random strided subsets.
        for d in 0..decoys {
            sets.push(
                (0..universe as u32)
                    .filter(|e| (*e as usize + d).is_multiple_of(d + 2))
                    .collect(),
            );
        }
        let sol = greedy_set_cover(universe, &sets);
        prop_assert_eq!(sol.covered, universe);
        let bound = harmonic(universe) * blocks as f64 + 1e-9;
        prop_assert!(
            (sol.selected.len() as f64) <= bound,
            "greedy {} > H({universe}) * {blocks}",
            sol.selected.len()
        );
    }

    /// Coverage-mode heuristics return a prefix whose last element is
    /// necessary (dropping it leaves some bridge end unprotected).
    #[test]
    fn coverage_prefix_is_tight(inst in arb_instance()) {
        let ordering = MaxDegreeSelector.ordering(&inst);
        let Some(chosen) = protectors_to_cover_all(
            &inst,
            BridgeEndRule::WithinCommunity,
            &ordering,
        ) else {
            // MaxDegree ordering contains every non-rumor node, and
            // protecting a bridge end itself always works, so
            // coverage can only fail if... it cannot.
            prop_assert!(false, "max-degree over all nodes must cover");
            return Ok(());
        };
        // The chosen set covers (re-verified via simulation).
        let seeds = inst.seed_sets(chosen.clone()).unwrap();
        let outcome = DoamModel::default().run_deterministic(inst.graph(), &seeds);
        let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
        for &v in &bridges.nodes {
            prop_assert!(!outcome.status(v).is_infected());
        }
        // Dropping the last pick breaks coverage (unless nothing was
        // needed at all).
        if let Some((_, prefix)) = chosen.split_last() {
            if !bridges.nodes.is_empty() && !chosen.is_empty() {
                let seeds = inst.seed_sets(prefix.to_vec()).unwrap();
                let outcome = DoamModel::default().run_deterministic(inst.graph(), &seeds);
                let still_unprotected = bridges
                    .nodes
                    .iter()
                    .any(|&v| outcome.status(v).is_infected());
                prop_assert!(still_unprotected, "last protector was redundant");
            }
        }
    }

    /// Budget-mode greedy respects the budget, avoids rumor seeds,
    /// and improves σ̂ monotonically.
    #[test]
    fn greedy_budget_mode_invariants(inst in arb_instance(), budget in 0usize..4) {
        let cfg = GreedyConfig {
            realizations: 4,
            max_hops: 12,
            ..GreedyConfig::default()
        };
        let sel = greedy_with_budget(&inst, budget, &cfg).unwrap();
        prop_assert!(sel.protectors.len() <= budget);
        for p in &sel.protectors {
            prop_assert!(!inst.is_rumor_seed(*p));
        }
        for w in sel.sigma_history.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert_eq!(sel.sigma_history.len(), sel.protectors.len());
    }
}
