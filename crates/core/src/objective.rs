//! The protector-influence objective `σ̂` for LCRB-P.
//!
//! §V-A of the paper defines `σ(A) = E[|PB(A)|]`, the expected number
//! of bridge ends saved by seeding protectors at `A`, and proves it
//! monotone and submodular (Theorem 1) by conditioning on the random
//! choices of a diffusion (Lemmas 1–4). This module is the estimator:
//! it fixes a batch of [`OpoaoRealization`]s once and evaluates every
//! candidate set against the *same* batch (common random numbers).
//!
//! We maximize the equivalent shifted objective
//! `σ̂(A) = avg #{v ∈ B : v not infected under (S_R, A)}`:
//! per realization this equals a constant (bridge ends the rumor
//! never reaches) plus `|PB(A)|`, so it inherits monotonicity and
//! submodularity while also being directly comparable with the
//! paper's protection target `α·|B|`.

use lcrb_diffusion::{
    CompetitiveIcModel, IcRealization, OpoaoModel, OpoaoRealization, SeedSets, SimWorkspace,
};
use lcrb_graph::NodeId;

use crate::{LcrbError, RumorBlockingInstance};

/// Which diffusion model the LCRB-P objective estimates under.
///
/// The paper studies LCRB-P on OPOAO; the IC variant is the
/// EIL-flavored extension enabled by the live-edge coupling (see
/// [`IcRealization`]). Both couplings make the per-realization
/// saved-bridge-end count monotone and submodular, so the greedy's
/// `(1 - 1/e)` guarantee carries over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObjectiveModel {
    /// Opportunistic One-Activate-One (the paper's §III-A model).
    Opoao(OpoaoModel),
    /// Competitive Independent Cascade with live-edge realizations.
    CompetitiveIc(CompetitiveIcModel),
}

impl Default for ObjectiveModel {
    fn default() -> Self {
        ObjectiveModel::Opoao(OpoaoModel::default())
    }
}

/// The realization batch matching an [`ObjectiveModel`].
#[derive(Debug)]
enum Batch {
    Opoao(OpoaoModel, Vec<OpoaoRealization>),
    Ic(CompetitiveIcModel, Vec<IcRealization>),
}

impl Batch {
    fn len(&self) -> usize {
        match self {
            Batch::Opoao(_, r) => r.len(),
            Batch::Ic(_, r) => r.len(),
        }
    }
}

/// A reusable evaluator of `σ̂` over a fixed realization batch.
///
/// # Examples
///
/// ```
/// use lcrb::{ProtectionObjective, RumorBlockingInstance};
/// use lcrb_community::Partition;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p = Partition::from_labels(vec![0, 0, 1, 1]);
/// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
/// let obj = ProtectionObjective::new(&inst, vec![NodeId::new(2)], 16, 0, 31)?;
/// let unprotected = obj.sigma(&[])?;
/// let protected = obj.sigma(&[NodeId::new(2)])?;
/// assert!(protected >= unprotected);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProtectionObjective<'a> {
    instance: &'a RumorBlockingInstance,
    bridge_ends: Vec<NodeId>,
    batch: Batch,
}

impl<'a> ProtectionObjective<'a> {
    /// Builds an objective over `realization_count` coupled
    /// realizations derived from `master_seed`, simulating up to
    /// `max_hops` hops.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::NoRealizations`] when
    /// `realization_count == 0`.
    pub fn new(
        instance: &'a RumorBlockingInstance,
        bridge_ends: Vec<NodeId>,
        realization_count: usize,
        master_seed: u64,
        max_hops: u32,
    ) -> Result<Self, LcrbError> {
        ProtectionObjective::with_model(
            instance,
            bridge_ends,
            ObjectiveModel::Opoao(OpoaoModel::new(max_hops)),
            realization_count,
            master_seed,
        )
    }

    /// Builds an objective for any supported diffusion model.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::NoRealizations`] when
    /// `realization_count == 0`.
    pub fn with_model(
        instance: &'a RumorBlockingInstance,
        bridge_ends: Vec<NodeId>,
        model: ObjectiveModel,
        realization_count: usize,
        master_seed: u64,
    ) -> Result<Self, LcrbError> {
        if realization_count == 0 {
            return Err(LcrbError::NoRealizations);
        }
        let batch = match model {
            ObjectiveModel::Opoao(m) => {
                Batch::Opoao(m, OpoaoRealization::batch(realization_count, master_seed))
            }
            ObjectiveModel::CompetitiveIc(m) => {
                Batch::Ic(m, IcRealization::batch(realization_count, master_seed))
            }
        };
        Ok(ProtectionObjective {
            instance,
            bridge_ends,
            batch,
        })
    }

    /// The bridge ends the objective counts over.
    #[must_use]
    pub fn bridge_ends(&self) -> &[NodeId] {
        &self.bridge_ends
    }

    /// Number of realizations in the batch.
    #[must_use]
    pub fn realization_count(&self) -> usize {
        self.batch.len()
    }

    /// Number of bridge ends *not infected* on one specific
    /// realization with protector seeds `protectors`.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `index >= realization_count()`.
    pub fn saved_on_realization(
        &self,
        index: usize,
        protectors: &[NodeId],
    ) -> Result<usize, LcrbError> {
        let seeds = self.seed_sets(protectors)?;
        let mut ws = SimWorkspace::with_capacity(self.instance.graph().node_count());
        Ok(self.saved(index, &seeds, &mut ws))
    }

    /// `σ̂(protectors)`: the average over the realization batch of the
    /// number of bridge ends not infected.
    ///
    /// One-off convenience around [`ProtectionObjective::sigma_with`];
    /// loops that evaluate many candidate sets should hold a
    /// [`SimWorkspace`] and call `sigma_with` instead.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is out of bounds
    /// or overlaps the rumor seeds.
    pub fn sigma(&self, protectors: &[NodeId]) -> Result<f64, LcrbError> {
        let mut ws = SimWorkspace::with_capacity(self.instance.graph().node_count());
        self.sigma_with(protectors, &mut ws)
    }

    /// `σ̂(protectors)` evaluated through a caller-owned workspace.
    ///
    /// The entire realization batch is simulated against the
    /// instance's frozen CSR snapshot with per-run scratch in `ws`, so
    /// repeated evaluations allocate nothing. The objective itself
    /// stays shareable across threads (`&self`); each worker brings
    /// its own workspace.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is out of bounds
    /// or overlaps the rumor seeds.
    pub fn sigma_with(
        &self,
        protectors: &[NodeId],
        ws: &mut SimWorkspace,
    ) -> Result<f64, LcrbError> {
        let seeds = self.seed_sets(protectors)?;
        let total: usize = (0..self.batch.len())
            .map(|i| self.saved(i, &seeds, ws))
            .sum();
        Ok(total as f64 / self.batch.len() as f64)
    }

    /// `σ̂(protectors)` with *zero* per-query allocation: the seed
    /// pair lives in `seeds` (built lazily on first use) and is
    /// refilled in place via [`SeedSets::set_protectors`]. This is
    /// the path the greedy's CELF loop drives.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is out of bounds
    /// or overlaps the rumor seeds.
    pub(crate) fn sigma_with_cached_seeds(
        &self,
        protectors: &[NodeId],
        seeds: &mut Option<SeedSets>,
        ws: &mut SimWorkspace,
    ) -> Result<f64, LcrbError> {
        let seeds = match seeds {
            Some(s) => s,
            // xtask-allow: hotpath -- lazy one-time seed-set construction; later calls refill in place
            None => seeds.insert(self.instance.seed_sets(Vec::new())?),
        };
        seeds.set_protectors(self.instance.graph().node_count(), protectors)?;
        let total: usize = (0..self.batch.len())
            .map(|i| self.saved(i, seeds, ws))
            .sum();
        Ok(total as f64 / self.batch.len() as f64)
    }

    fn seed_sets(&self, protectors: &[NodeId]) -> Result<SeedSets, LcrbError> {
        // xtask-allow: bufclone -- one-off convenience entry; the CELF loop goes through sigma_with_cached_seeds
        self.instance.seed_sets(protectors.to_vec())
    }

    fn saved(&self, index: usize, seeds: &SeedSets, ws: &mut SimWorkspace) -> usize {
        let csr = self.instance.snapshot();
        match &self.batch {
            Batch::Opoao(m, reals) => m.run_realized_into(csr, seeds, ws, &reals[index]),
            Batch::Ic(m, reals) => m.run_realized_into(csr, seeds, ws, &reals[index]),
        }
        self.bridge_ends
            .iter()
            .filter(|&&v| !ws.status(v).is_infected())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_instance() -> RumorBlockingInstance {
        // 0 -> 1 -> 2 -> 3; rumor community {0, 1}; bridge end 2.
        let g = generators::path_graph(4);
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    #[test]
    fn rejects_zero_realizations() {
        let inst = chain_instance();
        let err = ProtectionObjective::new(&inst, vec![NodeId::new(2)], 0, 0, 31).unwrap_err();
        assert_eq!(err, LcrbError::NoRealizations);
    }

    #[test]
    fn protecting_the_bridge_end_directly_is_perfect() {
        let inst = chain_instance();
        let obj = ProtectionObjective::new(&inst, vec![NodeId::new(2)], 8, 0, 31).unwrap();
        // On a path the walk is forced: without protection the bridge
        // end is always infected by hop 2.
        assert_eq!(obj.sigma(&[]).unwrap(), 0.0);
        assert_eq!(obj.sigma(&[NodeId::new(2)]).unwrap(), 1.0);
    }

    #[test]
    fn sigma_is_deterministic_for_fixed_master_seed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (g, labels) =
            generators::planted_partition(&[15, 15], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        let obj1 = ProtectionObjective::new(&inst, b.nodes.clone(), 32, 5, 31).unwrap();
        let obj2 = ProtectionObjective::new(&inst, b.nodes, 32, 5, 31).unwrap();
        let p0 = vec![NodeId::new(20)];
        assert_eq!(obj1.sigma(&p0).unwrap(), obj2.sigma(&p0).unwrap());
    }

    #[test]
    fn sigma_is_monotone_in_protectors() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (g, labels) =
            generators::planted_partition(&[15, 15], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        if b.nodes.is_empty() {
            return;
        }
        let obj = ProtectionObjective::new(&inst, b.nodes.clone(), 24, 0, 31).unwrap();
        let base = obj.sigma(&[]).unwrap();
        let one = obj.sigma(&[b.nodes[0]]).unwrap();
        assert!(one >= base, "one {one} < base {base}");
        if b.nodes.len() > 1 {
            let two = obj.sigma(&[b.nodes[0], b.nodes[1]]).unwrap();
            assert!(two >= one);
        }
    }

    #[test]
    fn invalid_protectors_error() {
        let inst = chain_instance();
        let obj = ProtectionObjective::new(&inst, vec![NodeId::new(2)], 4, 0, 31).unwrap();
        assert!(matches!(
            obj.sigma(&[NodeId::new(0)]).unwrap_err(),
            LcrbError::Seeds(_)
        ));
        assert!(obj.sigma(&[NodeId::new(99)]).is_err());
    }

    #[test]
    fn ic_objective_behaves_like_opoao_objective() {
        use lcrb_diffusion::CompetitiveIcModel;
        let inst = chain_instance();
        let model = ObjectiveModel::CompetitiveIc(CompetitiveIcModel::new(1.0).unwrap());
        let obj =
            ProtectionObjective::with_model(&inst, vec![NodeId::new(2)], model, 8, 0).unwrap();
        // p = 1 on a path: deterministic infection unless protected.
        assert_eq!(obj.sigma(&[]).unwrap(), 0.0);
        assert_eq!(obj.sigma(&[NodeId::new(2)]).unwrap(), 1.0);
        // Monotone per realization.
        for i in 0..obj.realization_count() {
            let a = obj.saved_on_realization(i, &[]).unwrap();
            let b = obj.saved_on_realization(i, &[NodeId::new(3)]).unwrap();
            assert!(b >= a);
        }
    }

    #[test]
    fn sigma_with_reused_workspace_matches_sigma() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (g, labels) =
            generators::planted_partition(&[15, 15], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        let obj = ProtectionObjective::new(&inst, b.nodes.clone(), 16, 2, 31).unwrap();
        let mut ws = SimWorkspace::new();
        for k in 0..b.nodes.len().min(3) {
            let protectors = &b.nodes[..k];
            assert_eq!(
                obj.sigma_with(protectors, &mut ws).unwrap(),
                obj.sigma(protectors).unwrap()
            );
        }
    }

    #[test]
    fn cached_seed_sigma_matches_sigma() {
        let mut rng = SmallRng::seed_from_u64(13);
        let (g, labels) =
            generators::planted_partition(&[15, 15], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        let obj = ProtectionObjective::new(&inst, b.nodes.clone(), 16, 2, 31).unwrap();
        let mut ws = SimWorkspace::new();
        let mut seeds = None;
        for k in 0..b.nodes.len().min(3) {
            let protectors = &b.nodes[..k];
            assert_eq!(
                obj.sigma_with_cached_seeds(protectors, &mut seeds, &mut ws)
                    .unwrap(),
                obj.sigma(protectors).unwrap()
            );
        }
        // Error paths leave the cached pair reusable.
        let rumor = inst.rumor_seeds()[0];
        assert!(obj
            .sigma_with_cached_seeds(&[rumor], &mut seeds, &mut ws)
            .is_err());
        if !b.nodes.is_empty() {
            assert_eq!(
                obj.sigma_with_cached_seeds(&b.nodes[..1], &mut seeds, &mut ws)
                    .unwrap(),
                obj.sigma(&b.nodes[..1]).unwrap()
            );
        }
    }

    #[test]
    fn saved_on_realization_matches_sigma_average() {
        let inst = chain_instance();
        let obj = ProtectionObjective::new(&inst, vec![NodeId::new(2)], 6, 9, 31).unwrap();
        let protectors = vec![NodeId::new(3)];
        let total: usize = (0..obj.realization_count())
            .map(|i| obj.saved_on_realization(i, &protectors).unwrap())
            .sum();
        let avg = total as f64 / obj.realization_count() as f64;
        assert_eq!(avg, obj.sigma(&protectors).unwrap());
    }
}
