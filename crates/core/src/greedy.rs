//! The greedy algorithm for LCRB-P (Algorithm 1 of the paper), with
//! CELF lazy evaluation.
//!
//! Algorithm 1 repeatedly adds the node with the largest marginal
//! gain in expected bridge-end protection until `σ(S_P) ≥ α·|B|`.
//! Submodularity of `σ` (Theorem 1) gives the classic `(1 − 1/e)`
//! guarantee and also makes CELF lazy evaluation sound: a node's
//! marginal gain can only shrink as the solution grows, so a stale
//! heap entry that still tops the heap after re-scoring is the true
//! argmax. The paper's conclusion flags greedy's cost as its main
//! drawback; CELF (plus parallel evaluation of the initial gains) is
//! the standard remedy and is benchmarked against plain greedy in
//! `lcrb-bench`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lcrb_diffusion::{ScratchPool, SimWorkspace, StopReason, WorkMeter};
use lcrb_graph::traversal::{CsrBfsScratch, Direction};
use lcrb_graph::NodeId;

use crate::{
    find_bridge_ends, BridgeEndRule, BridgeEnds, CoverageScratch, LcrbError, ObjectiveModel,
    ProtectionObjective, RumorBlockingInstance, SketchObjective, SketchParams,
};

/// Where Algorithm 1 looks for protector candidates.
///
/// The paper's pseudocode scans all of `V \ (S_P ∪ S_R)`; on large
/// networks a restricted pool evaluates far fewer candidates without
/// hurting quality (nodes that cannot reach any bridge end in time
/// have zero gain anyway).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CandidatePool {
    /// Every node except the rumor originators (the paper's literal
    /// candidate set).
    AllNonRumor,
    /// Nodes that can reach some bridge end within `radius` hops
    /// (backward BFS from the bridge ends).
    BackwardRadius(u32),
    /// Nodes that can reach some bridge end `v` within `d_R(v)` hops —
    /// the union of the SCBG BBSTs, i.e. everything that could beat
    /// the rumor to some bridge end under DOAM timing. The default.
    #[default]
    BbstUnion,
}

/// How the greedy estimates `σ̂` (see DESIGN.md "Estimators").
///
/// Monte Carlo re-simulates the realization batch for every marginal
/// gain query; the sketch estimator pays a one-time RR-sketch sample
/// and answers every query by coverage counting
/// ([`SketchObjective`]). Sketches require the OPOAO objective model
/// and ignore [`GreedyConfig::realizations`] (the sample size comes
/// from the `(ε, δ)` schedule in [`SketchParams`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Estimator {
    /// Simulation over the coupled realization batch (the default).
    #[default]
    MonteCarlo,
    /// Reverse-reachable sketch coverage (the RIS estimator).
    Sketch(SketchParams),
}

/// Configuration for [`greedy_lcrb_p`] and [`greedy_with_budget`].
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Protection level `α ∈ (0, 1]`: stop once `σ̂ ≥ α·|B|`.
    pub alpha: f64,
    /// Number of coupled realizations for the `σ̂` estimator.
    pub realizations: usize,
    /// Master seed for the realization batch.
    pub master_seed: u64,
    /// Hop budget per simulated diffusion (applies to the OPOAO
    /// objective; an IC model keeps its own hop budget).
    pub max_hops: u32,
    /// Which diffusion model the objective estimates under (OPOAO by
    /// default; competitive IC via live-edge realizations as the
    /// EIL-flavored extension).
    pub model: ObjectiveModel,
    /// Hard cap on the number of protectors selected.
    pub max_protectors: usize,
    /// Candidate pool to draw from.
    pub candidates: CandidatePool,
    /// Use CELF lazy evaluation (`false` re-scores every candidate in
    /// every round — the plain Algorithm 1, kept for ablation).
    pub lazy: bool,
    /// Bridge-end detection rule.
    pub rule: BridgeEndRule,
    /// Worker threads for the initial gain sweep (0 = available
    /// parallelism).
    pub threads: usize,
    /// How `σ̂` is estimated: Monte-Carlo simulation or RR-sketch
    /// coverage.
    pub estimator: Estimator,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            alpha: 0.8,
            realizations: 64,
            master_seed: 0,
            max_hops: lcrb_diffusion::PAPER_OPOAO_HOPS,
            model: ObjectiveModel::default(),
            max_protectors: usize::MAX,
            candidates: CandidatePool::default(),
            lazy: true,
            rule: BridgeEndRule::default(),
            threads: 0,
            estimator: Estimator::default(),
        }
    }
}

/// The outcome of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedySelection {
    /// Selected protector originators, in selection order.
    pub protectors: Vec<NodeId>,
    /// `σ̂` after each selection (index 0 = after the first pick).
    pub sigma_history: Vec<f64>,
    /// The stopping target `α·|B|` (`f64::INFINITY` in budget mode).
    pub target: f64,
    /// Final `σ̂` achieved.
    pub achieved: f64,
    /// Whether the target was reached before the candidate pool or
    /// the budget ran out.
    pub target_met: bool,
    /// Number of `σ̂` evaluations performed (CELF-vs-plain metric).
    pub evaluations: usize,
    /// The bridge ends protected against.
    pub bridge_ends: BridgeEnds,
}

/// An `f64` known to be finite, ordered for use in the CELF heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct FiniteF64(f64);

impl Eq for FiniteF64 {}

impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            // xtask-allow: panic -- FiniteF64 wraps only checked-finite gains, so partial_cmp cannot return None
            .expect("gains are finite by construction")
    }
}

/// Runs Algorithm 1: select protectors until `σ̂ ≥ α·|B|`.
///
/// **Deprecated shim**: this one-shot entry rebuilds every artifact
/// (bridge ends, estimator state) per call. New code should hold a
/// [`crate::engine::Solver`] and submit
/// [`crate::engine::SolveRequest`]s, which cache those artifacts
/// across queries; this function remains for one-off use and will be
/// removed from the prelude in a future release.
///
/// # Errors
///
/// - [`LcrbError::InvalidAlpha`] if `config.alpha` is not in
///   `(0, 1]`;
/// - [`LcrbError::NoRealizations`] if `config.realizations == 0`.
///
/// If the target is unreachable within the candidate pool and budget
/// (possible when `max_hops` is small or the pool is restricted), the
/// run returns with `target_met == false` rather than erroring — the
/// partial selection is still the greedy-optimal prefix.
pub fn greedy_lcrb_p(
    instance: &RumorBlockingInstance,
    config: &GreedyConfig,
) -> Result<GreedySelection, LcrbError> {
    if config.alpha.is_nan() || config.alpha <= 0.0 || config.alpha > 1.0 {
        return Err(LcrbError::InvalidAlpha {
            alpha: config.alpha,
        });
    }
    run_greedy(instance, config, None)
}

/// Budget-mode greedy: selects exactly `budget` protectors (or fewer
/// if gains hit zero), ignoring `config.alpha`. This is how the
/// paper's OPOAO experiments use the greedy — "for the same number of
/// protector and rumor originators, how many nodes will be infected?"
/// (§VI-B2).
///
/// **Deprecated shim**: prefer a [`crate::engine::Solver`] with
/// [`crate::engine::SolveRequest::greedy_budget`], which reuses the
/// sketch sample and CELF state across budgets instead of rebuilding
/// them per call.
///
/// # Errors
///
/// Returns [`LcrbError::NoRealizations`] if `config.realizations ==
/// 0`.
pub fn greedy_with_budget(
    instance: &RumorBlockingInstance,
    budget: usize,
    config: &GreedyConfig,
) -> Result<GreedySelection, LcrbError> {
    run_greedy(instance, config, Some(budget))
}

/// The `σ̂` estimator selected by [`GreedyConfig::estimator`], behind
/// one `sigma_with`-shaped call for the CELF loop.
///
/// Crate-internal so the session engine ([`crate::engine::Solver`])
/// can assemble one from cached artifacts (a shared
/// [`crate::SketchIndex`]) instead of rebuilding per solve.
pub(crate) enum SigmaBackend<'a> {
    Mc(ProtectionObjective<'a>),
    Sketch(SketchObjective<'a>),
}

/// Per-worker scratch covering either backend (all parts are empty
/// until first used, so carrying the unused ones is free): a
/// [`SimWorkspace`] plus a reusable seed pair for Monte Carlo,
/// coverage stamps for sketches.
#[derive(Debug, Default)]
pub(crate) struct SigmaScratch {
    ws: SimWorkspace,
    seeds: Option<lcrb_diffusion::SeedSets>,
    coverage: CoverageScratch,
}

impl SigmaBackend<'_> {
    pub(crate) fn sigma_with(
        &self,
        protectors: &[NodeId],
        s: &mut SigmaScratch,
    ) -> Result<f64, LcrbError> {
        match self {
            SigmaBackend::Mc(obj) => {
                obj.sigma_with_cached_seeds(protectors, &mut s.seeds, &mut s.ws)
            }
            SigmaBackend::Sketch(obj) => obj.sigma_with(protectors, &mut s.coverage),
        }
    }

    /// Monte-Carlo simulations charged per `sigma_with` evaluation:
    /// one per realization for the MC backend, zero for sketches
    /// (their sampling cost is charged at sketch generation).
    pub(crate) fn sim_cost(&self) -> u64 {
        match self {
            SigmaBackend::Mc(obj) => obj.realization_count() as u64,
            SigmaBackend::Sketch(_) => 0,
        }
    }
}

/// Applies the config's hop budget to the OPOAO objective model (an
/// IC model keeps its own hop budget) — shared between the one-shot
/// path here and the session engine.
pub(crate) fn normalized_model(config: &GreedyConfig) -> ObjectiveModel {
    match config.model {
        ObjectiveModel::Opoao(_) => {
            ObjectiveModel::Opoao(lcrb_diffusion::OpoaoModel::new(config.max_hops))
        }
        other => other,
    }
}

/// Builds the `σ̂` backend the config asks for, sampling sketches or
/// deriving the realization batch as needed.
pub(crate) fn build_backend<'a>(
    instance: &'a RumorBlockingInstance,
    config: &GreedyConfig,
    bridge_nodes: Vec<NodeId>,
) -> Result<SigmaBackend<'a>, LcrbError> {
    let model = normalized_model(config);
    Ok(match config.estimator {
        Estimator::MonteCarlo => SigmaBackend::Mc(ProtectionObjective::with_model(
            instance,
            bridge_nodes,
            model,
            config.realizations,
            config.master_seed,
        )?),
        Estimator::Sketch(params) => {
            if !matches!(model, ObjectiveModel::Opoao(_)) {
                return Err(LcrbError::SketchModelUnsupported);
            }
            SigmaBackend::Sketch(SketchObjective::build(
                instance,
                bridge_nodes,
                params,
                config.master_seed,
                config.max_hops,
            )?)
        }
    })
}

/// The resumable state of one greedy run: the CELF pick sequence so
/// far, plus everything needed to continue it.
///
/// The key invariant (CELF prefix consistency): the stopping rule —
/// target `α·|B|` or budget cap — only decides *where the pick
/// sequence stops*, never *which node is picked next*. So a
/// trajectory extended under one stopping rule serves any other rule
/// bitwise-identically: smaller budgets and already-met targets read
/// a prefix; larger ones resume the loop from the stored heap, which
/// has seen exactly the same push/pop sequence an uninterrupted cold
/// run would have produced. The session engine caches trajectories
/// across solves on the strength of this invariant.
#[derive(Clone, Debug)]
pub(crate) struct GreedyTrajectory {
    candidates: Vec<NodeId>,
    selected: Vec<NodeId>,
    sigma_history: Vec<f64>,
    sigma_empty: f64,
    sigma_current: f64,
    /// Cumulative σ̂ evaluations over the trajectory's whole life.
    evaluations: usize,
    /// CELF heap: (gain, candidate index, round the gain was scored).
    heap: BinaryHeap<(FiniteF64, usize, usize)>,
    round: usize,
    /// Whether `sigma_empty` has been evaluated.
    started: bool,
    /// Whether the initial parallel gain sweep has run.
    swept: bool,
    /// The pick loop ended with no positive marginal gain left;
    /// gains only shrink (submodularity), so no extension can ever
    /// add another pick.
    exhausted: bool,
    /// Reusable trial buffer for `selected + [candidate]` probes.
    trial: Vec<NodeId>,
}

impl GreedyTrajectory {
    pub(crate) fn new(candidates: Vec<NodeId>) -> Self {
        GreedyTrajectory {
            candidates,
            // xtask-allow: hotpath -- empty constructor state, one per trajectory; picks grow it incrementally
            selected: Vec::new(),
            // xtask-allow: hotpath -- empty constructor state, one per trajectory; picks grow it incrementally
            sigma_history: Vec::new(),
            sigma_empty: 0.0,
            sigma_current: 0.0,
            evaluations: 0,
            heap: BinaryHeap::new(),
            round: 0,
            started: false,
            swept: false,
            exhausted: false,
            // xtask-allow: hotpath -- empty constructor state; the probe loop reuses it clear-and-refill
            trial: Vec::new(),
        }
    }

    /// Cumulative σ̂ evaluations across every extension so far.
    pub(crate) fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Size of the candidate pool the trajectory selects from.
    pub(crate) fn candidate_count(&self) -> usize {
        self.candidates.len()
    }
}

/// Maps a checkpoint stop to `advance_trajectory`'s outcome:
/// cancellation aborts the solve as a typed error (the caller's drop
/// path vacates its lease), budget/deadline stops degrade gracefully
/// (the trajectory stays prefix-consistent and is parked).
fn stop_outcome(stop: StopReason) -> Result<Option<StopReason>, LcrbError> {
    if stop == StopReason::Cancelled {
        Err(LcrbError::Interrupted { reason: stop })
    } else {
        Ok(Some(stop))
    }
}

/// Extends `traj` until the stopping rule holds: `σ̂ ≥ target`, `cap`
/// picks made, or the candidate pool is out of positive gains.
///
/// Replays exactly the cold Algorithm 1 + CELF loop; on a fresh
/// trajectory this *is* the cold run. Scratch space is leased from
/// `pool` (one lease for the sequential loop, one per worker in the
/// initial sweep) and returned when the call finishes, so concurrent
/// callers share the pool without sharing buffers.
///
/// Budget checkpoints sit at the loop's serial boundaries: σ̂
/// evaluations charge their simulation cost before running
/// (all-or-nothing — the initial sweep is charged whole), advances
/// are checked before each pick's work starts. Any stop therefore
/// leaves `traj` exactly as an uninterrupted run would have it after
/// the same picks — prefix-consistent and safe to park. Returns
/// `Ok(None)` when a stopping rule was reached, `Ok(Some(reason))`
/// when a budget or deadline checkpoint stopped the loop early.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_trajectory(
    backend: &SigmaBackend<'_>,
    traj: &mut GreedyTrajectory,
    target: f64,
    cap: usize,
    lazy: bool,
    threads: usize,
    pool: &ScratchPool<SigmaScratch>,
    meter: &mut WorkMeter,
) -> Result<Option<StopReason>, LcrbError> {
    let sim_cost = backend.sim_cost();
    let mut lease = pool.lease();
    let scratch = &mut *lease;
    if !traj.started {
        if let Err(stop) = meter.charge_sims(sim_cost) {
            return stop_outcome(stop);
        }
        traj.sigma_empty = backend.sigma_with(&[], scratch)?;
        traj.sigma_current = traj.sigma_empty;
        traj.evaluations += 1;
        traj.started = true;
    }

    while traj.sigma_current < target && traj.selected.len() < cap && !traj.exhausted {
        if traj.candidates.is_empty() {
            break;
        }
        if meter.advances_exhausted() {
            return Ok(Some(StopReason::AdvanceBudget));
        }
        if !traj.swept {
            // Initial sweep: marginal gain of every candidate alone,
            // evaluated in parallel. Runs at most once per trajectory
            // (always with the empty selection), so resumed runs see
            // the same gains a cold run would. Charged whole: a sweep
            // that does not fit under the simulation cap never starts,
            // so partial sweeps cannot exist.
            if let Err(stop) = meter.charge_sims(sim_cost * traj.candidates.len() as u64) {
                return stop_outcome(stop);
            }
            let gains = match parallel_initial_gains(
                backend,
                &traj.candidates,
                traj.sigma_current,
                threads,
                pool,
                meter,
            ) {
                Ok(gains) => gains,
                // A cancellation/deadline poll fired mid-sweep: the
                // sweep mutated nothing (`swept` stays false), so the
                // trajectory is still the pre-sweep prefix.
                Err(LcrbError::Interrupted { reason }) => return stop_outcome(reason),
                Err(e) => return Err(e),
            };
            traj.evaluations += traj.candidates.len();
            traj.heap = gains
                .iter()
                .enumerate()
                .map(|(i, &g)| (FiniteF64(g), i, 0))
                // xtask-allow: collect -- runs once per trajectory (guarded by `swept`), not per pick
                .collect();
            traj.swept = true;
        }
        if lazy {
            let Some((FiniteF64(gain), idx, scored_round)) = traj.heap.pop() else {
                traj.exhausted = true;
                break;
            };
            if scored_round < traj.round {
                // Stale: re-score against the current selection.
                if let Err(stop) = meter.charge_sims(sim_cost) {
                    // Restore the popped entry so the parked heap
                    // matches an uninterrupted run's at this boundary.
                    traj.heap.push((FiniteF64(gain), idx, scored_round));
                    return stop_outcome(stop);
                }
                traj.trial.clear();
                traj.trial.extend_from_slice(&traj.selected);
                traj.trial.push(traj.candidates[idx]);
                let s = backend.sigma_with(&traj.trial, scratch)?;
                traj.evaluations += 1;
                traj.heap
                    .push((FiniteF64(s - traj.sigma_current), idx, traj.round));
                continue;
            }
            if gain <= 1e-12 {
                traj.exhausted = true; // no candidate can improve σ̂ any further
                break;
            }
            traj.selected.push(traj.candidates[idx]);
            traj.sigma_current += gain;
            traj.sigma_history.push(traj.sigma_current);
            traj.round += 1;
            meter.note_advance();
        } else {
            // Plain Algorithm 1: re-score everything each round,
            // charged whole before the scan like the initial sweep.
            let remaining = traj
                .candidates
                .iter()
                .filter(|c| !traj.selected.contains(c))
                .count() as u64;
            if let Err(stop) = meter.charge_sims(sim_cost * remaining) {
                return stop_outcome(stop);
            }
            let mut best: Option<(f64, usize)> = None;
            let mut evals = 0usize;
            for (idx, &candidate) in traj.candidates.iter().enumerate() {
                if traj.selected.contains(&candidate) {
                    continue;
                }
                traj.trial.clear();
                traj.trial.extend_from_slice(&traj.selected);
                traj.trial.push(candidate);
                let s = backend.sigma_with(&traj.trial, scratch)?;
                evals += 1;
                let gain = s - traj.sigma_current;
                if best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, idx));
                }
            }
            traj.evaluations += evals;
            let Some((gain, idx)) = best else {
                traj.exhausted = true;
                break;
            };
            if gain <= 1e-12 {
                traj.exhausted = true;
                break;
            }
            traj.selected.push(traj.candidates[idx]);
            traj.sigma_current += gain;
            traj.sigma_history.push(traj.sigma_current);
            meter.note_advance();
        }
    }
    Ok(None)
}

/// Materializes a [`GreedySelection`] as the stopping rule's prefix
/// of the (possibly longer) trajectory.
///
/// `evaluations` is the number of σ̂ evaluations the caller charges to
/// this solve — the whole trajectory for a cold run, the extension
/// delta for a warm cached one.
pub(crate) fn selection_from_trajectory(
    traj: &GreedyTrajectory,
    target: f64,
    cap: usize,
    evaluations: usize,
    bridge_ends: BridgeEnds,
) -> GreedySelection {
    let limit = traj.selected.len().min(cap);
    // Smallest prefix meeting the target, else everything available
    // under the cap — exactly where the cold loop would have stopped.
    let len = (0..=limit)
        .find(|&k| {
            let achieved = if k == 0 {
                traj.sigma_empty
            } else {
                traj.sigma_history[k - 1]
            };
            achieved >= target
        })
        .unwrap_or(limit);
    let achieved = if len == 0 {
        traj.sigma_empty
    } else {
        traj.sigma_history[len - 1]
    };
    GreedySelection {
        // xtask-allow: bufclone -- per-solve result materialization: at most `cap` picks copied out of the cached trajectory
        protectors: traj.selected[..len].to_vec(),
        // xtask-allow: bufclone -- per-solve result materialization: at most `cap` picks copied out of the cached trajectory
        sigma_history: traj.sigma_history[..len].to_vec(),
        target,
        achieved,
        target_met: achieved >= target,
        evaluations,
        bridge_ends,
    }
}

fn run_greedy(
    instance: &RumorBlockingInstance,
    config: &GreedyConfig,
    budget: Option<usize>,
) -> Result<GreedySelection, LcrbError> {
    let bridge_ends = find_bridge_ends(instance, config.rule);
    // xtask-allow: bufclone -- one-time handoff of the bridge-end list to the estimator, outside the query loop
    let backend = build_backend(instance, config, bridge_ends.nodes.clone())?;
    let target = match budget {
        Some(_) => f64::INFINITY,
        None => config.alpha * bridge_ends.len() as f64,
    };
    let cap = budget.unwrap_or(config.max_protectors);

    let mut traj = GreedyTrajectory::new(candidate_pool(instance, &bridge_ends, config.candidates));
    // A one-shot pool: the sequential CELF loop leases one long-lived
    // scratch (a `SimWorkspace` plus reusable seed pair against the
    // CSR snapshot for Monte Carlo, coverage stamps for sketches) and
    // the initial sweep leases one per worker.
    let pool = ScratchPool::new();
    let mut meter = WorkMeter::unlimited();
    advance_trajectory(
        &backend,
        &mut traj,
        target,
        cap,
        config.lazy,
        config.threads,
        &pool,
        &mut meter,
    )?;
    let evaluations = traj.evaluations();
    Ok(selection_from_trajectory(
        &traj,
        target,
        cap,
        evaluations,
        bridge_ends,
    ))
}

/// Crate-internal access to the candidate-pool construction (shared
/// with the GVS baseline).
pub(crate) fn candidate_pool_for(
    instance: &RumorBlockingInstance,
    bridge_ends: &BridgeEnds,
    pool: CandidatePool,
) -> Vec<NodeId> {
    candidate_pool(instance, bridge_ends, pool)
}

fn candidate_pool(
    instance: &RumorBlockingInstance,
    bridge_ends: &BridgeEnds,
    pool: CandidatePool,
) -> Vec<NodeId> {
    let g = instance.graph();
    let csr = instance.snapshot();
    let mut nodes: Vec<NodeId> = match pool {
        CandidatePool::AllNonRumor => g.nodes().filter(|&v| !instance.is_rumor_seed(v)).collect(),
        CandidatePool::BackwardRadius(radius) => {
            let mut back = CsrBfsScratch::new();
            back.run(csr, &bridge_ends.nodes, Direction::Backward, radius);
            g.nodes()
                .filter(|&v| back.is_reached(v) && !instance.is_rumor_seed(v))
                .collect()
        }
        CandidatePool::BbstUnion => {
            let mut d_r = CsrBfsScratch::new();
            d_r.run(csr, instance.rumor_seeds(), Direction::Forward, u32::MAX);
            // xtask-allow: hotpath -- one-time pool construction per greedy run, outside the evaluation loop
            let mut in_pool = vec![false; g.node_count()];
            let mut back = CsrBfsScratch::new();
            for &v in &bridge_ends.nodes {
                // xtask-allow: panic -- bridge ends are discovered by forward BFS from the rumor seeds, so a distance exists
                let depth = d_r.distance(v).expect("bridge ends are reachable");
                back.run(csr, &[v], Direction::Backward, depth);
                for &u in back.order() {
                    in_pool[u.index()] = true;
                }
            }
            g.nodes()
                .filter(|&v| in_pool[v.index()] && !instance.is_rumor_seed(v))
                .collect()
        }
    };
    nodes.sort_unstable();
    nodes
}

/// The initial CELF gain sweep. Cancellation/deadline polls run per
/// candidate (the simulation cost was already charged whole by the
/// caller); a stop surfaces as [`LcrbError::Interrupted`] and the
/// sweep's partial results are discarded, so interruption can never
/// produce a half-populated heap.
fn parallel_initial_gains(
    objective: &SigmaBackend<'_>,
    candidates: &[NodeId],
    sigma_empty: f64,
    threads: usize,
    pool: &ScratchPool<SigmaScratch>,
    meter: &WorkMeter,
) -> Result<Vec<f64>, LcrbError> {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
    .min(candidates.len())
    .max(1);

    if threads == 1 {
        let mut ws = pool.lease();
        return candidates
            .iter()
            .map(|&c| {
                meter
                    .poll()
                    .map_err(|reason| LcrbError::Interrupted { reason })?;
                Ok(objective.sigma_with(&[c], &mut ws)? - sigma_empty)
            })
            .collect();
    }
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                // One scratch lease per worker for the whole sweep:
                // the objective is shared immutably, scratch is
                // private to the lease.
                let mut ws = pool.lease();
                // xtask-allow: hotpath -- one accumulator per worker thread for the whole sweep
                let mut partial = Vec::new();
                let mut i = t;
                while i < candidates.len() {
                    if meter.poll().is_err() {
                        // Re-observed by the coordinator poll below;
                        // both stop conditions are monotone.
                        break;
                    }
                    partial.push((i, objective.sigma_with(&[candidates[i]], &mut ws)));
                    i += threads;
                }
                partial
            }));
        }
        handles
            .into_iter()
            // xtask-allow: panic -- re-raising a worker panic on the coordinating thread is the intended behavior
            .flat_map(|h| h.join().expect("gain worker panicked"))
            .collect::<Vec<_>>()
    });
    meter
        .poll()
        .map_err(|reason| LcrbError::Interrupted { reason })?;

    // xtask-allow: hotpath -- once-per-sweep result buffer sized to the candidate pool
    let mut gains = vec![0.0; candidates.len()];
    for (i, sigma) in results {
        gains[i] = sigma? - sigma_empty;
    }
    Ok(gains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_graph::generators;
    use lcrb_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_instance() -> RumorBlockingInstance {
        let g = generators::path_graph(4);
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    fn community_instance(seed: u64) -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[20, 20, 20], 0.3, 0.03, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap()
    }

    #[test]
    fn rejects_bad_alpha() {
        let inst = chain_instance();
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = GreedyConfig {
                alpha,
                realizations: 4,
                ..GreedyConfig::default()
            };
            assert!(matches!(
                greedy_lcrb_p(&inst, &cfg).unwrap_err(),
                LcrbError::InvalidAlpha { .. }
            ));
        }
    }

    #[test]
    fn rejects_zero_realizations() {
        let inst = chain_instance();
        let cfg = GreedyConfig {
            realizations: 0,
            ..GreedyConfig::default()
        };
        assert!(matches!(
            greedy_lcrb_p(&inst, &cfg).unwrap_err(),
            LcrbError::NoRealizations
        ));
    }

    #[test]
    fn chain_is_fully_protectable_with_one_node() {
        let inst = chain_instance();
        let cfg = GreedyConfig {
            alpha: 1.0,
            realizations: 8,
            ..GreedyConfig::default()
        };
        let sel = greedy_lcrb_p(&inst, &cfg).unwrap();
        assert!(sel.target_met);
        assert_eq!(sel.bridge_ends.nodes, vec![NodeId::new(2)]);
        // Protecting node 1 or node 2 saves the single bridge end.
        assert_eq!(sel.protectors.len(), 1);
        assert!(sel.achieved >= sel.target);
        assert_eq!(sel.sigma_history.len(), 1);
    }

    #[test]
    fn budget_mode_selects_exactly_budget_when_gains_remain() {
        let inst = community_instance(5);
        let cfg = GreedyConfig {
            realizations: 16,
            max_hops: 20,
            ..GreedyConfig::default()
        };
        let sel = greedy_with_budget(&inst, 2, &cfg).unwrap();
        assert!(sel.protectors.len() <= 2);
        assert_eq!(sel.target, f64::INFINITY);
        assert!(!sel.target_met);
        // σ̂ history is nondecreasing.
        for w in sel.sigma_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn lazy_and_plain_greedy_agree_on_achieved_sigma() {
        let inst = community_instance(7);
        let base = GreedyConfig {
            realizations: 12,
            max_hops: 15,
            alpha: 0.6,
            ..GreedyConfig::default()
        };
        let lazy = greedy_lcrb_p(&inst, &base).unwrap();
        let plain = greedy_lcrb_p(
            &inst,
            &GreedyConfig {
                lazy: false,
                ..base
            },
        )
        .unwrap();
        // Both must reach the target (or both fail); the trajectories
        // may differ on exact ties, but the achieved σ̂ of a greedy
        // prefix of the same length is the same function being
        // maximized, so they stay close.
        assert_eq!(lazy.target_met, plain.target_met);
        assert!(
            (lazy.achieved - plain.achieved).abs() <= 1.0 + 1e-9,
            "lazy {} vs plain {}",
            lazy.achieved,
            plain.achieved
        );
        // CELF must not evaluate more than plain greedy.
        assert!(lazy.evaluations <= plain.evaluations);
    }

    #[test]
    fn candidate_pools_are_subsets_of_all_non_rumor() {
        let inst = community_instance(9);
        let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
        let all = candidate_pool(&inst, &bridges, CandidatePool::AllNonRumor);
        let radius = candidate_pool(&inst, &bridges, CandidatePool::BackwardRadius(2));
        let bbst = candidate_pool(&inst, &bridges, CandidatePool::BbstUnion);
        let all_set: std::collections::HashSet<_> = all.iter().collect();
        assert!(radius.iter().all(|v| all_set.contains(v)));
        assert!(bbst.iter().all(|v| all_set.contains(v)));
        // Bridge ends themselves are always candidates in both
        // restricted pools.
        for v in &bridges.nodes {
            assert!(radius.contains(v));
            assert!(bbst.contains(v));
        }
        // No rumor seed anywhere.
        for v in inst.rumor_seeds() {
            assert!(!all.contains(v));
        }
    }

    #[test]
    fn empty_bridge_set_returns_empty_selection() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let sel = greedy_lcrb_p(
            &inst,
            &GreedyConfig {
                realizations: 4,
                ..GreedyConfig::default()
            },
        )
        .unwrap();
        assert!(sel.protectors.is_empty());
        assert!(sel.target_met); // target = α·0 = 0
    }

    #[test]
    fn greedy_works_under_competitive_ic() {
        use lcrb_diffusion::CompetitiveIcModel;
        let inst = community_instance(13);
        let cfg = GreedyConfig {
            realizations: 12,
            model: ObjectiveModel::CompetitiveIc(CompetitiveIcModel::new(0.5).unwrap()),
            alpha: 0.6,
            ..GreedyConfig::default()
        };
        let sel = greedy_lcrb_p(&inst, &cfg).unwrap();
        // σ̂ history is nondecreasing and the selection is valid.
        for w in sel.sigma_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for p in &sel.protectors {
            assert!(!inst.is_rumor_seed(*p));
        }
        if sel.target_met {
            assert!(sel.achieved >= sel.target - 1e-9);
        }
    }

    #[test]
    fn sketch_estimator_solves_the_chain() {
        let inst = chain_instance();
        let cfg = GreedyConfig {
            alpha: 1.0,
            estimator: Estimator::Sketch(SketchParams::default()),
            ..GreedyConfig::default()
        };
        let sel = greedy_lcrb_p(&inst, &cfg).unwrap();
        assert!(sel.target_met);
        assert_eq!(sel.protectors.len(), 1);
        // On the forced chain the only useful picks are 1 and 2.
        assert!(matches!(sel.protectors[0].raw(), 1 | 2));
    }

    #[test]
    fn sketch_estimator_rejects_non_opoao_models() {
        use lcrb_diffusion::CompetitiveIcModel;
        let inst = chain_instance();
        let cfg = GreedyConfig {
            estimator: Estimator::Sketch(SketchParams::default()),
            model: ObjectiveModel::CompetitiveIc(CompetitiveIcModel::new(0.5).unwrap()),
            ..GreedyConfig::default()
        };
        assert!(matches!(
            greedy_lcrb_p(&inst, &cfg).unwrap_err(),
            LcrbError::SketchModelUnsupported
        ));
    }

    #[test]
    fn sketch_estimator_is_deterministic_across_threads() {
        let inst = community_instance(17);
        let base = GreedyConfig {
            estimator: Estimator::Sketch(SketchParams::default()),
            alpha: 0.7,
            threads: 1,
            ..GreedyConfig::default()
        };
        let a = greedy_lcrb_p(&inst, &base).unwrap();
        let b = greedy_lcrb_p(&inst, &GreedyConfig { threads: 4, ..base }).unwrap();
        assert_eq!(a.protectors, b.protectors);
        assert_eq!(a.achieved, b.achieved);
    }

    #[test]
    fn sketch_and_mc_selections_have_comparable_quality() {
        let inst = community_instance(19);
        let mc_cfg = GreedyConfig {
            realizations: 32,
            ..GreedyConfig::default()
        };
        let sk_cfg = GreedyConfig {
            estimator: Estimator::Sketch(SketchParams::default()),
            ..GreedyConfig::default()
        };
        let budget = 3;
        let mc = greedy_with_budget(&inst, budget, &mc_cfg).unwrap();
        let sk = greedy_with_budget(&inst, budget, &sk_cfg).unwrap();
        // Judge both selections with the same MC objective.
        let bridges = find_bridge_ends(&inst, BridgeEndRule::default());
        let judge = ProtectionObjective::new(&inst, bridges.nodes, 64, 123, 31).unwrap();
        let empty = judge.sigma(&[]).unwrap();
        let mc_q = judge.sigma(&mc.protectors).unwrap();
        let sk_q = judge.sigma(&sk.protectors).unwrap();
        assert!(sk_q >= empty, "sketch pick must not hurt");
        // The sketch pick recovers most of the MC pick's improvement.
        assert!(
            sk_q - empty >= 0.5 * (mc_q - empty) - 1e-9,
            "sketch quality {sk_q} too far below MC {mc_q} (empty {empty})"
        );
    }

    #[test]
    fn threads_do_not_change_selection() {
        let inst = community_instance(11);
        let base = GreedyConfig {
            realizations: 12,
            alpha: 0.7,
            threads: 1,
            ..GreedyConfig::default()
        };
        let a = greedy_lcrb_p(&inst, &base).unwrap();
        let b = greedy_lcrb_p(&inst, &GreedyConfig { threads: 4, ..base }).unwrap();
        assert_eq!(a.protectors, b.protectors);
        assert_eq!(a.achieved, b.achieved);
    }
}
