//! The sketch-backed protector-influence estimator (RIS) for LCRB-P.
//!
//! [`crate::ProtectionObjective`] pays `realizations` full forward
//! simulations per `σ̂` query. [`SketchObjective`] instead pays once
//! up front: it samples θ pairs (bridge end `v`, realization φ),
//! inverts each into a reverse-reachable sketch
//! ([`lcrb_diffusion::rr_sketch_into`]), and answers every subsequent
//! query by weighted max-coverage over an inverted node → sketch
//! index — no simulation at query time. This is the estimator of
//! Tong et al. (*An Efficient Randomized Algorithm for Rumor
//! Blocking in Online Social Networks*) adapted to the paper's OPOAO
//! semantics and bridge-end objective.
//!
//! ## Sampling bound
//!
//! With θ sketches, `σ̂(A)/|B|` is the empirical mean of θ i.i.d.
//! Bernoulli variables with mean `σ(A)/|B|`, so Hoeffding gives
//! `|σ̂(A) − σ(A)| ≤ ε·|B|` with probability `1 − δ` once
//! `θ ≥ ln(2/δ) / (2ε²)` — the schedule's floor. Because LCRB-P
//! cares about *relative* quality of the best candidates, the
//! schedule then keeps doubling θ until the empirical-Bernstein
//! condition `θ ≥ (2 + 2ε/3)·ln(2/δ) / (ε²·p̂)` holds for the best
//! observed singleton coverage `p̂` (relative ±ε accuracy at scale
//! `p̂`), or [`SketchParams::max_sketches`] is reached. Coverage is
//! monotone and submodular per sketch, so CELF remains sound on the
//! sketch objective.

use std::sync::Arc;

use lcrb_diffusion::{rr_sketch_batch_into, OpoaoRealization, RrScratch, SketchBatch, WorkMeter};
use lcrb_graph::NodeId;

use crate::{LcrbError, RumorBlockingInstance};

/// Accuracy parameters of the adaptive sketch schedule.
///
/// `epsilon` is the additive accuracy target for coverage
/// probabilities (fraction of bridge ends), `delta` the failure
/// probability of the concentration bound; `min_sketches` and
/// `max_sketches` clamp the schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchParams {
    /// Coverage-probability accuracy target, in `(0, 1)`.
    pub epsilon: f64,
    /// Failure probability of the sampling bound, in `(0, 1)`.
    pub delta: f64,
    /// Lower clamp on the sketch count.
    pub min_sketches: usize,
    /// Upper clamp on the sketch count (the adaptive doubling stops
    /// here at the latest).
    pub max_sketches: usize,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams {
            epsilon: 0.1,
            delta: 0.05,
            min_sketches: 256,
            max_sketches: 1 << 16,
        }
    }
}

impl SketchParams {
    /// Builds a validated parameter set with the default sketch-count
    /// clamps.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::InvalidSketchParams`] unless both
    /// `epsilon` and `delta` are in `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, LcrbError> {
        let params = SketchParams {
            epsilon,
            delta,
            ..SketchParams::default()
        };
        params.validate()?;
        Ok(params)
    }

    /// Checks that both probabilities are in `(0, 1)` and the
    /// sketch-count clamps are a non-empty window.
    ///
    /// Construction-time entry points ([`SketchParams::new`],
    /// [`SketchIndex::build`]) call this themselves; it is public so
    /// request builders can fail fast before any sampling work.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::InvalidSketchParams`] naming the first
    /// violated constraint.
    pub fn validate(self) -> Result<(), LcrbError> {
        let prob = |x: f64| x.is_finite() && x > 0.0 && x < 1.0;
        if !prob(self.epsilon) {
            return Err(LcrbError::InvalidSketchParams {
                reason: "epsilon must be in (0, 1)",
            });
        }
        if !prob(self.delta) {
            return Err(LcrbError::InvalidSketchParams {
                reason: "delta must be in (0, 1)",
            });
        }
        if self.min_sketches == 0 || self.max_sketches < self.min_sketches {
            return Err(LcrbError::InvalidSketchParams {
                reason: "need 1 <= min_sketches <= max_sketches",
            });
        }
        Ok(())
    }

    /// Hoeffding floor `ln(2/δ) / (2ε²)` clamped to the configured
    /// sketch-count window.
    fn floor(self) -> usize {
        let raw = ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil();
        let raw = if raw.is_finite() && raw > 0.0 {
            raw as usize
        } else {
            self.max_sketches
        };
        raw.clamp(self.min_sketches, self.max_sketches)
    }

    /// Empirical-Bernstein requirement for relative ±ε accuracy at
    /// coverage scale `p_hat`.
    fn required_for(self, p_hat: f64) -> f64 {
        (2.0 + 2.0 * self.epsilon / 3.0) * (2.0 / self.delta).ln()
            / (self.epsilon * self.epsilon * p_hat)
    }
}

/// Derives a decorrelated RNG stream — the shared
/// [`lcrb_diffusion::derive_stream`] primitive, re-exposed under the
/// name the engine and estimators historically use.
#[inline]
pub(crate) fn mix(master: u64, stream: u64) -> u64 {
    lcrb_diffusion::derive_stream(master, stream)
}

/// Epoch-versioned scratch for [`SketchObjective::sigma_with`]
/// queries (sketch-id coverage stamps; the
/// [`lcrb_diffusion::SimWorkspace`] pattern).
#[derive(Clone, Debug, Default)]
pub struct CoverageScratch {
    epoch: u32,
    stamp: Vec<u32>,
}

impl CoverageScratch {
    /// Creates an empty scratch; grows on first use.
    #[must_use]
    pub fn new() -> Self {
        CoverageScratch::default()
    }

    fn begin(&mut self, sketch_count: usize) -> u32 {
        if self.stamp.len() < sketch_count {
            self.stamp.resize(sketch_count, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// The owned product of the RR-sketch sampling pass: bridge ends,
/// sketch counts, and the inverted node → sketch coverage index.
///
/// This is the expensive, *reusable* artifact of the sketch
/// estimator. It depends only on the instance, the bridge ends, the
/// `(ε, δ)` schedule, the master seed, and the hop budget — not on
/// any budget or α — so a session engine can build it once and share
/// it (behind an [`Arc`]) across every solve at the same accuracy.
/// [`SketchObjective::from_index`] re-attaches it to the instance for
/// querying.
#[derive(Clone, Debug)]
pub struct SketchIndex {
    bridge_ends: Vec<NodeId>,
    /// θ: total sketches drawn (stored + always-saved).
    total: u64,
    always_saved: u64,
    set_count: usize,
    /// θ* the `(ε, δ)` schedule called for at the point generation
    /// stopped; equals `total` unless the build was truncated by a
    /// sketch budget.
    target: u64,
    /// Whether a sketch budget stopped generation short of the
    /// schedule.
    truncated: bool,
    /// Inverted node → sketch-id index, CSR layout over all nodes.
    index_offsets: Vec<u32>,
    index_ids: Vec<u32>,
}

impl SketchIndex {
    /// The bridge ends the sample was drawn over.
    #[must_use]
    pub fn bridge_ends(&self) -> &[NodeId] {
        &self.bridge_ends
    }

    /// θ: total sketches drawn by the schedule (stored +
    /// always-saved).
    #[must_use]
    pub fn sketch_count(&self) -> u64 {
        self.total
    }

    /// Sketches whose target the rumor never reaches within the hop
    /// budget (saved under every protector set).
    #[must_use]
    pub fn always_saved(&self) -> u64 {
        self.always_saved
    }

    /// θ* the adaptive schedule called for when generation stopped.
    /// Equals [`SketchIndex::sketch_count`] unless the build was
    /// budget-truncated.
    #[must_use]
    pub fn sketch_target(&self) -> u64 {
        self.target
    }

    /// Whether a sketch budget stopped generation short of the
    /// `(ε, δ)` schedule — estimates from a truncated index carry a
    /// widened confidence interval (see
    /// [`SketchIndex::ci_widening`]).
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Multiplicative widening of the estimator's confidence interval
    /// from budget truncation: `sqrt(θ*/θ)` (the sampling error of an
    /// RIS mean scales as `1/sqrt(θ)`). `1.0` for a full build.
    #[must_use]
    pub fn ci_widening(&self) -> f64 {
        if !self.truncated || self.total == 0 {
            return 1.0;
        }
        (self.target as f64 / self.total as f64).sqrt()
    }
}

/// A reusable sketch-backed evaluator of `σ̂` (weighted max-coverage
/// over RR sketches).
///
/// Built once per greedy run via [`SketchObjective::build`] — or
/// re-attached to a cached [`SketchIndex`] via
/// [`SketchObjective::from_index`]; queries through
/// [`SketchObjective::sigma_with`] touch only the inverted index — no
/// diffusion simulation.
///
/// # Examples
///
/// ```
/// use lcrb::{RumorBlockingInstance, SketchObjective, SketchParams};
/// use lcrb_community::Partition;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p = Partition::from_labels(vec![0, 0, 1, 1]);
/// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
/// let obj = SketchObjective::build(&inst, vec![NodeId::new(2)], SketchParams::default(), 0, 31)?;
/// // On a path the walk is forced: unprotected, the bridge end is
/// // always infected; protected directly, always saved.
/// assert_eq!(obj.sigma(&[])?, 0.0);
/// assert_eq!(obj.sigma(&[NodeId::new(2)])?, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SketchObjective<'a> {
    instance: &'a RumorBlockingInstance,
    index: Arc<SketchIndex>,
}

impl SketchIndex {
    /// Samples RR sketches for `bridge_ends` under the adaptive
    /// `(ε, δ)` schedule and builds the inverted coverage index.
    ///
    /// `master_seed` makes the sample fully deterministic; `max_hops`
    /// bounds each sketch's temporal search exactly like the OPOAO
    /// simulation hop budget.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::InvalidSketchParams`] if `params` is out
    /// of range.
    pub fn build(
        instance: &RumorBlockingInstance,
        bridge_ends: Vec<NodeId>,
        params: SketchParams,
        master_seed: u64,
        max_hops: u32,
    ) -> Result<Self, LcrbError> {
        let mut meter = WorkMeter::unlimited();
        SketchIndex::build_metered(
            instance,
            bridge_ends,
            params,
            master_seed,
            max_hops,
            &mut meter,
        )
    }

    /// [`SketchIndex::build`] under a [`WorkMeter`]: each sketch is a
    /// checkpoint.
    ///
    /// Sketch `g`'s `(target, realization)` pair depends only on
    /// `(master_seed, g)`, so a budget stop at any checkpoint yields
    /// the exact prefix an uninterrupted build would have drawn —
    /// truncation is deterministic. A truncated build still inverts
    /// the generated prefix into a usable index
    /// ([`SketchIndex::is_truncated`] is set and
    /// [`SketchIndex::ci_widening`] quantifies the accuracy loss); a
    /// cancellation or deadline stop abandons the build instead.
    ///
    /// # Errors
    ///
    /// [`LcrbError::InvalidSketchParams`] if `params` is out of
    /// range; [`LcrbError::Interrupted`] when a cancellation or
    /// deadline poll fires during generation.
    pub fn build_metered(
        instance: &RumorBlockingInstance,
        bridge_ends: Vec<NodeId>,
        params: SketchParams,
        master_seed: u64,
        max_hops: u32,
        meter: &mut WorkMeter,
    ) -> Result<Self, LcrbError> {
        params.validate()?;
        let n = instance.graph().node_count();
        let csr = instance.snapshot();
        let rumors = instance.rumor_seeds();

        let mut batch = SketchBatch::new();
        let mut scratch = RrScratch::new();
        // xtask-allow: hotpath -- build-phase singleton-coverage counts, one u32 per node
        let mut cover = vec![0u32; n];
        // xtask-allow: hotpath -- build-phase rumor-seed mask for the p̂ scan
        let mut is_rumor = vec![false; n];
        for &r in rumors {
            is_rumor[r.index()] = true;
        }

        let mut truncated = false;
        let mut schedule_target = 0u64;
        if !bridge_ends.is_empty() {
            let mut theta = params.floor();
            let mut generated = 0usize;
            let mut first_stored = 0usize;
            loop {
                schedule_target = theta as u64;
                let drawn = rr_sketch_batch_into(
                    csr,
                    rumors,
                    |g| {
                        let target = bridge_ends
                            [(mix(master_seed, 2 * g) % bridge_ends.len() as u64) as usize];
                        (target, OpoaoRealization::new(mix(master_seed, 2 * g + 1)))
                    },
                    generated as u64,
                    theta as u64,
                    max_hops,
                    &mut scratch,
                    &mut batch,
                    meter,
                )
                .map_err(|reason| LcrbError::Interrupted { reason })?;
                generated += drawn as usize;
                truncated = generated < theta;
                for s in first_stored..batch.set_count() {
                    for &u in batch.members(s) {
                        cover[u.index()] += 1;
                    }
                }
                first_stored = batch.set_count();
                if truncated || theta >= params.max_sketches {
                    break;
                }
                // Best observed placeable singleton coverage p̂ (rumor
                // seeds cannot host protectors).
                let best = cover
                    .iter()
                    .zip(is_rumor.iter())
                    .filter(|&(_, &r)| !r)
                    .map(|(&c, _)| c)
                    .max()
                    .unwrap_or(0);
                let p_hat = ((batch.always_saved() + u64::from(best)).max(1)) as f64 / theta as f64;
                if theta as f64 >= params.required_for(p_hat) {
                    break;
                }
                theta = (theta * 2).min(params.max_sketches);
            }
        }

        // Invert: CSR index node -> ids of stored sketches containing
        // it. `cover` already holds the per-node counts. Runs for
        // truncated builds too: the generated prefix is a valid
        // (smaller) sample.
        // xtask-allow: hotpath -- build-phase index construction, once per objective
        let mut index_offsets = vec![0u32; n + 1];
        for v in 0..n {
            index_offsets[v + 1] = index_offsets[v] + cover[v];
        }
        // xtask-allow: hotpath -- build-phase index construction, once per objective
        let mut index_ids = vec![0u32; index_offsets[n] as usize];
        // Reuse `cover` as per-node write cursors.
        cover.fill(0);
        for s in 0..batch.set_count() {
            for &u in batch.members(s) {
                let slot = index_offsets[u.index()] + cover[u.index()];
                index_ids[slot as usize] = s as u32;
                cover[u.index()] += 1;
            }
        }

        Ok(SketchIndex {
            bridge_ends,
            total: batch.total(),
            always_saved: batch.always_saved(),
            set_count: batch.set_count(),
            target: if truncated {
                schedule_target
            } else {
                batch.total()
            },
            truncated,
            index_offsets,
            index_ids,
        })
    }
}

impl<'a> SketchObjective<'a> {
    /// Samples RR sketches for `bridge_ends` under the adaptive
    /// `(ε, δ)` schedule and builds the inverted coverage index — a
    /// one-shot [`SketchIndex::build`] plus [`SketchObjective::from_index`].
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::InvalidSketchParams`] if `params` is out
    /// of range.
    pub fn build(
        instance: &'a RumorBlockingInstance,
        bridge_ends: Vec<NodeId>,
        params: SketchParams,
        master_seed: u64,
        max_hops: u32,
    ) -> Result<Self, LcrbError> {
        let index = SketchIndex::build(instance, bridge_ends, params, master_seed, max_hops)?;
        Ok(SketchObjective::from_index(instance, Arc::new(index)))
    }

    /// Attaches a previously built (possibly cached) [`SketchIndex`]
    /// to `instance` for querying.
    ///
    /// The caller is responsible for pairing the index with the
    /// instance it was sampled against — the session engine keys its
    /// cache by snapshot epoch for exactly this reason.
    #[must_use]
    pub fn from_index(instance: &'a RumorBlockingInstance, index: Arc<SketchIndex>) -> Self {
        SketchObjective { instance, index }
    }

    /// The shared sampling artifact backing this objective.
    #[must_use]
    pub fn index(&self) -> &Arc<SketchIndex> {
        &self.index
    }

    /// The bridge ends the objective counts over.
    #[must_use]
    pub fn bridge_ends(&self) -> &[NodeId] {
        self.index.bridge_ends()
    }

    /// θ: total sketches drawn by the schedule (stored +
    /// always-saved).
    #[must_use]
    pub fn sketch_count(&self) -> u64 {
        self.index.sketch_count()
    }

    /// Sketches whose target the rumor never reaches within the hop
    /// budget (saved under every protector set).
    #[must_use]
    pub fn always_saved(&self) -> u64 {
        self.index.always_saved()
    }

    /// `σ̂(protectors)` — one-off convenience around
    /// [`SketchObjective::sigma_with`].
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is out of bounds
    /// or overlaps the rumor seeds.
    pub fn sigma(&self, protectors: &[NodeId]) -> Result<f64, LcrbError> {
        let mut scratch = CoverageScratch::new();
        self.sigma_with(protectors, &mut scratch)
    }

    /// `σ̂(protectors)` by weighted max-coverage: `|B| ·
    /// (always_saved + covered) / θ`, where `covered` counts stored
    /// sketches intersecting `protectors`.
    ///
    /// Steady-state queries allocate nothing: coverage marks live in
    /// the caller-owned epoch-versioned `scratch`.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is out of bounds
    /// or overlaps the rumor seeds (mirroring
    /// [`crate::ProtectionObjective::sigma_with`]).
    pub fn sigma_with(
        &self,
        protectors: &[NodeId],
        scratch: &mut CoverageScratch,
    ) -> Result<f64, LcrbError> {
        let n = self.instance.graph().node_count();
        if protectors
            .iter()
            .any(|&p| p.index() >= n || self.instance.is_rumor_seed(p))
        {
            // Delegate to the canonical validator so the error value
            // matches the Monte-Carlo objective exactly.
            // xtask-allow: bufclone -- cold error path only: valid protector sets never reach this copy
            self.instance.seed_sets(protectors.to_vec())?;
        }
        let index = &*self.index;
        if index.total == 0 {
            return Ok(0.0);
        }
        let epoch = scratch.begin(index.set_count);
        let mut covered = 0u64;
        for &p in protectors {
            let lo = index.index_offsets[p.index()] as usize;
            let hi = index.index_offsets[p.index() + 1] as usize;
            for &id in &index.index_ids[lo..hi] {
                if scratch.stamp[id as usize] != epoch {
                    scratch.stamp[id as usize] = epoch;
                    covered += 1;
                }
            }
        }
        Ok(
            index.bridge_ends.len() as f64 * (index.always_saved + covered) as f64
                / index.total as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_graph::{generators, DiGraph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_instance() -> RumorBlockingInstance {
        let g = generators::path_graph(4);
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    fn community_instance(seed: u64) -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[15, 15], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        let inst = chain_instance();
        for params in [
            SketchParams {
                epsilon: 0.0,
                ..SketchParams::default()
            },
            SketchParams {
                epsilon: 1.0,
                ..SketchParams::default()
            },
            SketchParams {
                delta: f64::NAN,
                ..SketchParams::default()
            },
            SketchParams {
                delta: 0.0,
                ..SketchParams::default()
            },
            SketchParams {
                delta: 1.0,
                ..SketchParams::default()
            },
            SketchParams {
                min_sketches: 0,
                ..SketchParams::default()
            },
            SketchParams {
                min_sketches: 100,
                max_sketches: 10,
                ..SketchParams::default()
            },
        ] {
            assert!(matches!(
                SketchObjective::build(&inst, vec![NodeId::new(2)], params, 0, 31).unwrap_err(),
                LcrbError::InvalidSketchParams { .. }
            ));
        }
    }

    #[test]
    fn params_constructor_validates_probability_edges() {
        for (epsilon, delta) in [
            (0.0, 0.05),
            (1.0, 0.05),
            (-0.1, 0.05),
            (f64::NAN, 0.05),
            (0.1, 0.0),
            (0.1, 1.0),
            (0.1, -0.2),
            (0.1, f64::INFINITY),
        ] {
            assert!(
                matches!(
                    SketchParams::new(epsilon, delta).unwrap_err(),
                    LcrbError::InvalidSketchParams { .. }
                ),
                "({epsilon}, {delta}) should be rejected"
            );
        }
        let ok = SketchParams::new(0.2, 0.1).unwrap();
        assert_eq!((ok.epsilon, ok.delta), (0.2, 0.1));
        assert_eq!(ok.min_sketches, SketchParams::default().min_sketches);
        assert_eq!(ok.max_sketches, SketchParams::default().max_sketches);
        ok.validate().unwrap();
    }

    #[test]
    fn shared_index_answers_like_a_fresh_build() {
        let inst = community_instance(21);
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        let index = Arc::new(
            SketchIndex::build(&inst, b.nodes.clone(), SketchParams::default(), 5, 31).unwrap(),
        );
        let fresh =
            SketchObjective::build(&inst, b.nodes.clone(), SketchParams::default(), 5, 31).unwrap();
        let shared = SketchObjective::from_index(&inst, Arc::clone(&index));
        let shared_again = SketchObjective::from_index(&inst, Arc::clone(&index));
        for k in 0..b.nodes.len().min(3) {
            let set = &b.nodes[..k];
            assert_eq!(fresh.sigma(set).unwrap(), shared.sigma(set).unwrap());
            assert_eq!(shared.sigma(set).unwrap(), shared_again.sigma(set).unwrap());
        }
        assert_eq!(fresh.sketch_count(), index.sketch_count());
    }

    #[test]
    fn chain_sigma_is_exact() {
        let inst = chain_instance();
        let obj =
            SketchObjective::build(&inst, vec![NodeId::new(2)], SketchParams::default(), 7, 31)
                .unwrap();
        // Forced walk: rumor always reaches bridge end 2 (no
        // always-saved sketches), and every sketch contains {1, 2}.
        assert_eq!(obj.always_saved(), 0);
        assert_eq!(obj.sigma(&[]).unwrap(), 0.0);
        assert_eq!(obj.sigma(&[NodeId::new(1)]).unwrap(), 1.0);
        assert_eq!(obj.sigma(&[NodeId::new(2)]).unwrap(), 1.0);
        assert_eq!(obj.sigma(&[NodeId::new(3)]).unwrap(), 0.0);
    }

    #[test]
    fn sigma_is_deterministic_and_monotone() {
        let inst = community_instance(3);
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        if b.nodes.is_empty() {
            return;
        }
        let o1 =
            SketchObjective::build(&inst, b.nodes.clone(), SketchParams::default(), 5, 31).unwrap();
        let o2 =
            SketchObjective::build(&inst, b.nodes.clone(), SketchParams::default(), 5, 31).unwrap();
        let set = [b.nodes[0]];
        assert_eq!(o1.sigma(&set).unwrap(), o2.sigma(&set).unwrap());
        // Monotone: supersets never decrease coverage.
        let base = o1.sigma(&[]).unwrap();
        let one = o1.sigma(&set).unwrap();
        assert!(one >= base);
        if b.nodes.len() > 1 {
            let two = o1.sigma(&[b.nodes[0], b.nodes[1]]).unwrap();
            assert!(two >= one);
        }
    }

    #[test]
    fn invalid_protectors_mirror_mc_errors() {
        let inst = chain_instance();
        let obj =
            SketchObjective::build(&inst, vec![NodeId::new(2)], SketchParams::default(), 0, 31)
                .unwrap();
        assert!(matches!(
            obj.sigma(&[NodeId::new(0)]).unwrap_err(),
            LcrbError::Seeds(_)
        ));
        assert!(obj.sigma(&[NodeId::new(99)]).is_err());
    }

    #[test]
    fn empty_bridge_ends_give_zero_sigma() {
        let inst = chain_instance();
        let obj =
            SketchObjective::build(&inst, Vec::new(), SketchParams::default(), 0, 31).unwrap();
        assert_eq!(obj.sketch_count(), 0);
        assert_eq!(obj.sigma(&[NodeId::new(2)]).unwrap(), 0.0);
    }

    #[test]
    fn unreachable_targets_are_always_saved() {
        // Rumor in {0,1}, bridge end 3 unreachable (edge 2->3 only).
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let obj =
            SketchObjective::build(&inst, vec![NodeId::new(3)], SketchParams::default(), 1, 31)
                .unwrap();
        assert_eq!(obj.always_saved(), obj.sketch_count());
        assert_eq!(obj.sigma(&[]).unwrap(), 1.0);
    }

    #[test]
    fn schedule_respects_clamps() {
        let inst = chain_instance();
        let params = SketchParams {
            epsilon: 0.3,
            delta: 0.2,
            min_sketches: 16,
            max_sketches: 64,
        };
        let obj = SketchObjective::build(&inst, vec![NodeId::new(2)], params, 0, 31).unwrap();
        assert!(obj.sketch_count() >= 16);
        assert!(obj.sketch_count() <= 64);
        // A generous epsilon keeps the floor small; a tight one on the
        // same instance draws strictly more sketches.
        let tight = SketchParams {
            epsilon: 0.05,
            delta: 0.01,
            min_sketches: 16,
            max_sketches: 1 << 14,
        };
        let obj2 = SketchObjective::build(&inst, vec![NodeId::new(2)], tight, 0, 31).unwrap();
        assert!(obj2.sketch_count() > obj.sketch_count());
    }

    #[test]
    fn sigma_with_reused_scratch_matches_sigma() {
        let inst = community_instance(9);
        let b = crate::find_bridge_ends(&inst, crate::BridgeEndRule::WithinCommunity);
        let obj =
            SketchObjective::build(&inst, b.nodes.clone(), SketchParams::default(), 2, 31).unwrap();
        let mut scratch = CoverageScratch::new();
        for k in 0..b.nodes.len().min(4) {
            let protectors = &b.nodes[..k];
            assert_eq!(
                obj.sigma_with(protectors, &mut scratch).unwrap(),
                obj.sigma(protectors).unwrap()
            );
        }
    }
}
