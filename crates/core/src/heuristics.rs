//! The comparison heuristics of §VI-B1 — MaxDegree, Proximity,
//! Random, NoBlocking — behind a common [`ProtectorSelector`] trait,
//! plus the coverage-mode runners used for Table I.

// xtask-allow-file: index -- score/degree arrays are node_count-sized and candidates come from the same graph's node iterator
use rand::seq::SliceRandom;
use rand::RngCore;

use lcrb_graph::traversal::{CsrBfsScratch, Direction};
use lcrb_graph::NodeId;

use crate::{find_bridge_ends, BridgeEndRule, RumorBlockingInstance};

/// A strategy that picks protector originators given a budget.
///
/// Implementations must never return rumor originators and must
/// return at most `budget` distinct nodes. Deterministic strategies
/// simply ignore the RNG.
pub trait ProtectorSelector {
    /// Selects up to `budget` protector originators for `instance`.
    fn select(
        &self,
        instance: &RumorBlockingInstance,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId>;

    /// Short stable name for reports ("max-degree", "proximity", ...).
    fn name(&self) -> &'static str;
}

/// "A basic algorithm, which simply chooses the nodes according to
/// the decreasing order of node degree as the protectors" (§VI-B1).
/// Out-degree is used (influence flows along out-edges); ties break
/// toward smaller node ids for determinism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxDegreeSelector;

impl MaxDegreeSelector {
    /// All non-rumor nodes in decreasing out-degree order (the full
    /// candidate ordering behind [`ProtectorSelector::select`]).
    #[must_use]
    pub fn ordering(&self, instance: &RumorBlockingInstance) -> Vec<NodeId> {
        let g = instance.graph();
        let mut nodes: Vec<NodeId> = g.nodes().filter(|&v| !instance.is_rumor_seed(v)).collect();
        nodes.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
        nodes
    }
}

impl ProtectorSelector for MaxDegreeSelector {
    fn select(
        &self,
        instance: &RumorBlockingInstance,
        budget: usize,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut nodes = self.ordering(instance);
        nodes.truncate(budget);
        nodes
    }

    fn name(&self) -> &'static str {
        "max-degree"
    }
}

/// "A simple heuristic algorithm, in which the direct out-neighbors
/// of rumors are chosen as the protectors" (§VI-B1); when the budget
/// is smaller than the neighborhood, protectors are sampled randomly
/// from it, as in the paper's experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProximitySelector;

impl ProximitySelector {
    /// The candidate pool: distinct direct out-neighbors of the rumor
    /// originators, excluding the originators themselves, in
    /// ascending id order.
    #[must_use]
    pub fn pool(&self, instance: &RumorBlockingInstance) -> Vec<NodeId> {
        let g = instance.graph();
        let mut seen = vec![false; g.node_count()];
        let mut pool = Vec::new();
        for &r in instance.rumor_seeds() {
            for &w in g.out_neighbors(r) {
                if !seen[w.index()] && !instance.is_rumor_seed(w) {
                    seen[w.index()] = true;
                    pool.push(w);
                }
            }
        }
        pool.sort_unstable();
        pool
    }
}

impl ProtectorSelector for ProximitySelector {
    fn select(
        &self,
        instance: &RumorBlockingInstance,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut pool = self.pool(instance);
        pool.shuffle(rng);
        pool.truncate(budget);
        pool
    }

    fn name(&self) -> &'static str {
        "proximity"
    }
}

/// Uniform random non-rumor nodes (the baseline the paper excludes
/// from its plots "due to its poor performance"; included here for
/// completeness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomSelector;

impl ProtectorSelector for RandomSelector {
    fn select(
        &self,
        instance: &RumorBlockingInstance,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = instance
            .graph()
            .nodes()
            .filter(|&v| !instance.is_rumor_seed(v))
            .collect();
        nodes.shuffle(rng);
        nodes.truncate(budget);
        nodes
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// PageRank-ranked protector selection — an extension baseline
/// beyond the paper's heuristics: like MaxDegree but ranking by
/// PageRank score on the full graph, which rewards globally central
/// relays instead of raw out-degree. Deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankSelector {
    damping: f64,
}

impl Default for PageRankSelector {
    /// The conventional damping factor 0.85.
    fn default() -> Self {
        PageRankSelector { damping: 0.85 }
    }
}

impl PageRankSelector {
    /// Creates a selector with a custom damping factor.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is not in `[0, 1)` (checked when
    /// selecting).
    #[must_use]
    pub fn new(damping: f64) -> Self {
        PageRankSelector { damping }
    }

    /// All non-rumor nodes in decreasing PageRank order (ties toward
    /// smaller ids).
    #[must_use]
    pub fn ordering(&self, instance: &RumorBlockingInstance) -> Vec<NodeId> {
        let pr = lcrb_graph::pagerank::pagerank(
            instance.graph(),
            &lcrb_graph::pagerank::PageRankConfig {
                damping: self.damping,
                ..Default::default()
            },
        );
        let mut nodes: Vec<NodeId> = instance
            .graph()
            .nodes()
            .filter(|&v| !instance.is_rumor_seed(v))
            .collect();
        nodes.sort_by(|&a, &b| {
            pr.scores[b.index()]
                .partial_cmp(&pr.scores[a.index()])
                // xtask-allow: panic -- pagerank scores are finite by construction (damped convex sums of finite values)
                .expect("pagerank scores are finite")
                .then(a.cmp(&b))
        });
        nodes
    }
}

impl ProtectorSelector for PageRankSelector {
    fn select(
        &self,
        instance: &RumorBlockingInstance,
        budget: usize,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut nodes = self.ordering(instance);
        nodes.truncate(budget);
        nodes
    }

    fn name(&self) -> &'static str {
        "pagerank"
    }
}

/// No protectors at all — the paper's "NoBlocking" reference line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoBlockingSelector;

impl ProtectorSelector for NoBlockingSelector {
    fn select(
        &self,
        _instance: &RumorBlockingInstance,
        _budget: usize,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "no-blocking"
    }
}

/// Coverage mode for Table I: walk `ordering` front to back, adding
/// protectors until every bridge end is protected under the DOAM
/// timing oracle (`d_P(v) <= d_R(v)`, protector priority on ties).
/// Both distance maps live in reusable CSR scratches over the
/// instance's snapshot: `d_R` is one forward BFS, and `d_P` grows by
/// improve-only relaxation per added protector, so the whole sweep
/// costs little more than one BFS per added protector and allocates
/// only the two scratches.
///
/// Returns the protectors actually needed, or `None` if the ordering
/// is exhausted before full coverage (e.g. a pool too small to reach
/// some bridge end in time).
#[must_use]
pub fn protectors_to_cover_all(
    instance: &RumorBlockingInstance,
    rule: BridgeEndRule,
    ordering: &[NodeId],
) -> Option<Vec<NodeId>> {
    let csr = instance.snapshot();
    let bridge_ends = find_bridge_ends(instance, rule);
    let mut d_r = CsrBfsScratch::new();
    d_r.run(csr, instance.rumor_seeds(), Direction::Forward, u32::MAX);
    let mut d_p = CsrBfsScratch::new();
    d_p.begin(csr.node_count());

    let uncovered = |d_p: &CsrBfsScratch| {
        bridge_ends.nodes.iter().any(|&v| {
            match (d_p.distance(v), d_r.distance(v)) {
                (_, None) => false, // unreachable: safe
                (Some(p), Some(r)) => p > r,
                (None, Some(_)) => true,
            }
        })
    };

    if !uncovered(&d_p) {
        return Some(Vec::new());
    }
    let mut chosen = Vec::new();
    for &u in ordering {
        debug_assert!(!instance.is_rumor_seed(u), "ordering contains a rumor seed");
        d_p.relax_forward(csr, u);
        chosen.push(u);
        if !uncovered(&d_p) {
            return Some(chosen);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> RumorBlockingInstance {
        // Rumor community {0,1,2}, neighbors {3,4,5}.
        // 0 -> 1 -> 3, 0 -> 2 -> 4, 4 -> 5, 3 -> 5, 5 -> 3 (extra
        // degree for node 5).
        let g = DiGraph::from_edges(6, [(0, 1), (1, 3), (0, 2), (2, 4), (4, 5), (3, 5), (5, 3)])
            .unwrap();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    #[test]
    fn max_degree_orders_by_out_degree() {
        let inst = fixture();
        let sel = MaxDegreeSelector;
        let order = sel.ordering(&inst);
        // Out-degrees: 1:1, 2:1, 3:1, 4:1, 5:1 — all ties except no
        // node 0 (rumor). Check rumor exclusion and determinism.
        assert!(!order.contains(&NodeId::new(0)));
        assert_eq!(order.len(), 5);
        let mut rng = SmallRng::seed_from_u64(0);
        let picked = sel.select(&inst, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        assert_eq!(sel.name(), "max-degree");
    }

    #[test]
    fn max_degree_prefers_hubs() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (1, 3), (1, 4), (2, 3)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let picked = MaxDegreeSelector.select(&inst, 1, &mut rng);
        assert_eq!(picked, vec![NodeId::new(1)]); // out-degree 3 hub
    }

    #[test]
    fn proximity_pool_is_rumor_out_neighbors() {
        let inst = fixture();
        let sel = ProximitySelector;
        assert_eq!(sel.pool(&inst), vec![NodeId::new(1), NodeId::new(2)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let picked = sel.select(&inst, 5, &mut rng);
        assert_eq!(picked.len(), 2); // pool smaller than budget
        assert_eq!(sel.name(), "proximity");
    }

    #[test]
    fn proximity_excludes_rumor_seeds_from_pool() {
        // Both 0 and 1 are rumor seeds; 1's out-neighbors are 0
        // (excluded: a seed) and 2 (kept).
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1]);
        let inst =
            RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0), NodeId::new(1)]).unwrap();
        assert_eq!(ProximitySelector.pool(&inst), vec![NodeId::new(2)]);
    }

    #[test]
    fn random_selector_respects_budget_and_exclusion() {
        let inst = fixture();
        let mut rng = SmallRng::seed_from_u64(2);
        let picked = RandomSelector.select(&inst, 3, &mut rng);
        assert_eq!(picked.len(), 3);
        assert!(!picked.contains(&NodeId::new(0)));
        // Distinct.
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 3);
        assert_eq!(RandomSelector.name(), "random");
    }

    #[test]
    fn pagerank_selector_prefers_central_nodes() {
        // A hub that everything points to dominates PageRank.
        let g = DiGraph::from_edges(5, [(0, 1), (2, 1), (3, 1), (4, 1), (1, 2), (2, 3)]).unwrap();
        let p = Partition::from_labels(vec![0, 1, 1, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let sel = PageRankSelector::default();
        let order = sel.ordering(&inst);
        assert_eq!(order[0], NodeId::new(1));
        assert!(!order.contains(&NodeId::new(0)));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sel.select(&inst, 1, &mut rng), vec![NodeId::new(1)]);
        assert_eq!(sel.name(), "pagerank");
        // Custom damping still works.
        let order2 = PageRankSelector::new(0.5).ordering(&inst);
        assert_eq!(order2.len(), 4);
    }

    #[test]
    fn no_blocking_returns_empty() {
        let inst = fixture();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(NoBlockingSelector.select(&inst, 10, &mut rng).is_empty());
        assert_eq!(NoBlockingSelector.name(), "no-blocking");
    }

    #[test]
    fn coverage_mode_stops_as_soon_as_covered() {
        let inst = fixture();
        // Bridge ends are 3 (d_R = 2) and 4 (d_R = 2). Feeding the
        // ordering [1, 2]: protecting 1 covers 3 (d_P = 1) but not 4;
        // adding 2 covers 4.
        let chosen = protectors_to_cover_all(
            &inst,
            BridgeEndRule::WithinCommunity,
            &[NodeId::new(1), NodeId::new(2), NodeId::new(5)],
        )
        .unwrap();
        assert_eq!(chosen, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn coverage_mode_detects_insufficient_pool() {
        let inst = fixture();
        // Node 5 alone cannot protect bridge end 4 in time
        // (d_P(4) = inf) nor 3 (d_P(3) = 1 <= 2 works)... so coverage
        // fails overall.
        let result =
            protectors_to_cover_all(&inst, BridgeEndRule::WithinCommunity, &[NodeId::new(5)]);
        assert!(result.is_none());
    }

    #[test]
    fn coverage_mode_with_no_bridge_ends_is_empty() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let chosen =
            protectors_to_cover_all(&inst, BridgeEndRule::WithinCommunity, &[NodeId::new(2)])
                .unwrap();
        assert!(chosen.is_empty());
    }

    #[test]
    fn coverage_mode_agrees_with_doam_simulation() {
        use lcrb_diffusion::DoamModel;
        let inst = fixture();
        let ordering = MaxDegreeSelector.ordering(&inst);
        let chosen =
            protectors_to_cover_all(&inst, BridgeEndRule::WithinCommunity, &ordering).unwrap();
        let seeds = inst.seed_sets(chosen).unwrap();
        let outcome = DoamModel::default().run_deterministic(inst.graph(), &seeds);
        let bridges = find_bridge_ends(&inst, BridgeEndRule::WithinCommunity);
        for &v in &bridges.nodes {
            assert!(!outcome.status(v).is_infected(), "bridge end {v} infected");
        }
    }
}
