//! The experiment harness behind the paper's figures: run several
//! protector-selection strategies on one instance, simulate the
//! chosen model with Monte Carlo, and collect per-hop infected
//! series.

use lcrb_diffusion::{monte_carlo_csr, AveragedOutcome, MonteCarloConfig, TwoCascadeModel};
use lcrb_graph::NodeId;

use crate::{LcrbError, RumorBlockingInstance};

/// One algorithm's evaluation: its protector set and the averaged
/// diffusion it produced.
#[derive(Clone, Debug)]
pub struct AlgorithmRun {
    /// Display name of the strategy.
    pub name: String,
    /// The protector originators it chose.
    pub protectors: Vec<NodeId>,
    /// Monte-Carlo-averaged hop series.
    pub averaged: AveragedOutcome,
}

/// A hop-by-hop comparison of several strategies on one instance —
/// the data behind one of the paper's figures.
#[derive(Clone, Debug)]
pub struct HopSeriesReport {
    /// One entry per strategy, in evaluation order.
    pub runs: Vec<AlgorithmRun>,
}

impl HopSeriesReport {
    /// The longest hop series across all runs.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.averaged.mean_infected_by_hop.len())
            .max()
            .unwrap_or(0)
    }

    /// Renders a fixed-width text table: one row per hop, one column
    /// per strategy, cells = mean infected count (the paper plots the
    /// same series on a log-time chart).
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>4}", "hop");
        for run in &self.runs {
            let _ = write!(out, " {:>14}", run.name);
        }
        out.push('\n');
        for hop in 0..self.max_hops() {
            let _ = write!(out, "{hop:>4}");
            for run in &self.runs {
                let _ = write!(
                    out,
                    " {:>14.2}",
                    run.averaged.mean_infected_at_hop(hop as u32)
                );
            }
            out.push('\n');
        }
        out
    }

    /// Renders the same data as CSV (`hop,<name>,...`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("hop");
        for run in &self.runs {
            let _ = write!(out, ",{}", run.name);
        }
        out.push('\n');
        for hop in 0..self.max_hops() {
            let _ = write!(out, "{hop}");
            for run in &self.runs {
                let _ = write!(out, ",{}", run.averaged.mean_infected_at_hop(hop as u32));
            }
            out.push('\n');
        }
        out
    }
}

/// Evaluates pre-computed protector sets under `model`, Monte-Carlo
/// averaged with `mc`.
///
/// # Errors
///
/// Returns [`LcrbError::Seeds`] if any protector set is invalid for
/// the instance.
pub fn evaluate_protector_sets<M>(
    instance: &RumorBlockingInstance,
    model: &M,
    sets: &[(String, Vec<NodeId>)],
    mc: &MonteCarloConfig,
) -> Result<HopSeriesReport, LcrbError>
where
    M: TwoCascadeModel + Sync,
{
    let mut runs = Vec::with_capacity(sets.len());
    for (name, protectors) in sets {
        let seeds = instance.seed_sets(protectors.clone())?;
        let averaged = monte_carlo_csr(model, instance.snapshot(), &seeds, mc);
        runs.push(AlgorithmRun {
            name: name.clone(),
            protectors: protectors.clone(),
            averaged,
        });
    }
    Ok(HopSeriesReport { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budgeted, Selector, Solver, SolverConfig};
    use crate::{MaxDegreeSelector, NoBlockingSelector, ProtectorSelector, ProximitySelector};
    use lcrb_community::Partition;
    use lcrb_diffusion::{DoamModel, OpoaoModel};
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn instance() -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(8);
        let (g, labels) =
            generators::planted_partition(&[25, 25], 0.3, 0.04, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap()
    }

    #[test]
    fn evaluate_reports_one_run_per_set() {
        let inst = instance();
        let sets = vec![
            ("empty".to_owned(), vec![]),
            ("one".to_owned(), vec![NodeId::new(30)]),
        ];
        let report = evaluate_protector_sets(
            &inst,
            &DoamModel::default(),
            &sets,
            &MonteCarloConfig {
                runs: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].name, "empty");
        // Protection can only reduce infections.
        assert!(
            report.runs[1].averaged.mean_final_infected()
                <= report.runs[0].averaged.mean_final_infected()
        );
    }

    #[test]
    fn invalid_protector_set_errors() {
        let inst = instance();
        let bad = inst.rumor_seeds()[0];
        let sets = vec![("bad".to_owned(), vec![bad])];
        assert!(evaluate_protector_sets(
            &inst,
            &DoamModel::default(),
            &sets,
            &MonteCarloConfig::default()
        )
        .is_err());
    }

    /// Runs each selector through a one-shot [`Solver`] session via
    /// the [`Budgeted`] adapter and evaluates the selections — the
    /// migration target for the removed `compare_selectors` shim.
    fn run_selectors<M: TwoCascadeModel + Sync>(
        inst: &RumorBlockingInstance,
        model: &M,
        selectors: &[&dyn ProtectorSelector],
        budget: usize,
        selection_seed: u64,
        mc: &MonteCarloConfig,
    ) -> HopSeriesReport {
        let solver = Solver::with_config(
            inst.clone(),
            SolverConfig {
                master_seed: selection_seed,
            },
        );
        let mut sets = Vec::with_capacity(selectors.len());
        for &selector in selectors {
            let report = Budgeted { selector, budget }.select(&solver).unwrap();
            sets.push((report.algorithm, report.protectors));
        }
        evaluate_protector_sets(inst, model, &sets, mc).unwrap()
    }

    #[test]
    fn budgeted_session_runs_all_strategies() {
        let inst = instance();
        let selectors: Vec<&dyn ProtectorSelector> =
            vec![&NoBlockingSelector, &MaxDegreeSelector, &ProximitySelector];
        let report = run_selectors(
            &inst,
            &OpoaoModel::new(10),
            &selectors,
            2,
            7,
            &MonteCarloConfig {
                runs: 5,
                ..Default::default()
            },
        );
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].name, "no-blocking");
        assert!(report.runs[0].protectors.is_empty());
        assert_eq!(report.runs[1].protectors.len(), 2);
    }

    #[test]
    fn table_and_csv_rendering() {
        let inst = instance();
        let selectors: Vec<&dyn ProtectorSelector> = vec![&NoBlockingSelector];
        let report = run_selectors(
            &inst,
            &DoamModel::default(),
            &selectors,
            0,
            0,
            &MonteCarloConfig {
                runs: 1,
                ..Default::default()
            },
        );
        let table = report.render_table();
        assert!(table.contains("no-blocking"));
        assert!(table.lines().count() >= 2);
        let csv = report.to_csv();
        assert!(csv.starts_with("hop,no-blocking"));
        assert_eq!(csv.lines().count(), report.max_hops() + 1);
    }

    #[test]
    fn empty_report() {
        let report = HopSeriesReport { runs: vec![] };
        assert_eq!(report.max_hops(), 0);
        assert_eq!(report.to_csv(), "hop\n");
    }
}
