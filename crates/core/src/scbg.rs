//! The Set Cover Based Greedy (SCBG) algorithm for LCRB-D
//! (Algorithm 3 of the paper).
//!
//! Pipeline:
//!
//! 1. find the bridge ends `B` via RFSTs (step 3);
//! 2. for each bridge end `v`, build its Bridge-end Backward Search
//!    Tree (BBST) `Q_v`: a backward BFS from `v` whose depth is the
//!    hop distance from the nearest rumor originator to `v` —
//!    everything in `Q_v` except the rumor seeds can protect `v`
//!    under DOAM, because seeding a protector at `u ∈ Q_v` gives
//!    `d_P(v) ≤ d_R(v)` and ties favor P (step 4);
//! 3. invert the trees into the 1-hop star sets `SW_u = {v : u ∈
//!    Q_v}` (step 5);
//! 4. run greedy set cover (Algorithm 2) over the `SW_u` to cover `B`
//!    (step 6).
//!
//! Because the DOAM oracle is exact (see `lcrb-diffusion::doam`),
//! every SCBG cover is a *certified* solution: all bridge ends are
//! provably protected. The approximation factor is `H(|B|) = O(ln
//! |B|)` by the set-cover reduction (Theorems 2–3).

use std::collections::BTreeMap;

use lcrb_diffusion::{StopReason, WorkMeter};
use lcrb_graph::traversal::{CsrBfsScratch, Direction};
use lcrb_graph::NodeId;

use crate::setcover::greedy_set_cover_metered;
use crate::{find_bridge_ends, BridgeEndRule, BridgeEnds, RumorBlockingInstance};

/// Tuning knobs for [`scbg`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScbgConfig {
    /// How bridge ends are detected.
    pub rule: BridgeEndRule,
    /// Optional cap on BBST depth (ablation knob): `Some(d)` truncates
    /// every backward search at depth `d`, shrinking the candidate
    /// pool at the risk of a larger cover. `None` uses the paper's
    /// full depth (the distance to the nearest rumor).
    pub max_bbst_depth: Option<u32>,
}

/// The result of an SCBG run.
#[derive(Clone, Debug)]
pub struct ScbgSolution {
    /// The selected protector originators, in selection order.
    pub protectors: Vec<NodeId>,
    /// The bridge ends the cover was computed against.
    pub bridge_ends: BridgeEnds,
    /// How many bridge ends the selection covers. Equal to
    /// `bridge_ends.len()` unless a depth cap made some bridge end
    /// uncoverable.
    pub covered: usize,
    /// Size of the candidate pool `|⋃ Q_v \ S_R|` the set cover chose
    /// from.
    pub candidate_count: usize,
}

impl ScbgSolution {
    /// `true` when every bridge end is covered (always the case
    /// without a depth cap: `v ∈ Q_v`, so protecting `v` itself is
    /// always available).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.covered == self.bridge_ends.len()
    }
}

/// Runs SCBG on `instance` and returns the selected protector seed
/// set (Algorithm 3).
///
/// # Examples
///
/// ```
/// use lcrb::{scbg, RumorBlockingInstance, ScbgConfig};
/// use lcrb_community::Partition;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Rumor community {0, 1}; escapes via 2 and 3, both one hop from
/// // the shared gateway 1 — protecting either bridge end... or
/// // better, nothing upstream exists, so SCBG protects both.
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)])?;
/// let p = Partition::from_labels(vec![0, 0, 1, 1]);
/// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
/// let sol = scbg(&inst, &ScbgConfig::default());
/// assert!(sol.is_complete());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn scbg(instance: &RumorBlockingInstance, config: &ScbgConfig) -> ScbgSolution {
    let (solution, _) = scbg_metered(instance, config, &WorkMeter::unlimited())
        // xtask-allow: panic -- an unlimited meter's poll never stops SCBG
        .expect("unlimited meter cannot stop SCBG");
    solution
}

/// [`scbg`] under a [`WorkMeter`]: the star-set build polls once per
/// bridge end and the cover loop once per pick.
///
/// A deadline stop during the *cover* keeps the selection prefix (a
/// valid partial cover, reported via `Some(reason)` and a `covered`
/// count below `bridge_ends.len()`); a stop during the *star-set
/// build* has no salvageable prefix and surfaces as an error.
/// Work-unit caps never stop SCBG — it runs no simulations and no
/// sketches, matching the deterministic-checkpoint discipline.
///
/// # Errors
///
/// The observed [`StopReason`] on cancellation anywhere, or on any
/// stop before the star sets are complete.
pub(crate) fn scbg_metered(
    instance: &RumorBlockingInstance,
    config: &ScbgConfig,
    meter: &WorkMeter,
) -> Result<(ScbgSolution, Option<StopReason>), StopReason> {
    let bridge_ends = find_bridge_ends(instance, config.rule);
    let (candidates, sets) = build_star_sets(instance, &bridge_ends, config.max_bbst_depth, meter)?;
    let (solution, stop) = greedy_set_cover_metered(bridge_ends.len(), &sets, meter)?;
    let protectors = solution.selected.iter().map(|&i| candidates[i]).collect();
    Ok((
        ScbgSolution {
            protectors,
            covered: solution.covered,
            candidate_count: candidates.len(),
            bridge_ends,
        },
        stop,
    ))
}

/// Steps 4–5 of Algorithm 3 on the instance's CSR snapshot: one
/// backward BFS per bridge end `v` (depth `d_R(v)`, optionally
/// capped) through a single reused [`CsrBfsScratch`], inverted on the
/// fly into the star sets `SW_u = {v : u ∈ Q_v}`. Returns the
/// candidate nodes in ascending id order (for reproducible covers)
/// and their sets. Polls `meter` once per bridge end; any stop
/// surfaces as an error because a partial star-set collection cannot
/// seed a meaningful cover.
fn build_star_sets(
    instance: &RumorBlockingInstance,
    bridge_ends: &BridgeEnds,
    max_bbst_depth: Option<u32>,
    meter: &WorkMeter,
) -> Result<(Vec<NodeId>, Vec<Vec<u32>>), StopReason> {
    let csr = instance.snapshot();
    // Infection times: hop distance from the nearest rumor originator
    // in the full graph.
    let mut d_r = CsrBfsScratch::new();
    d_r.run(csr, instance.rumor_seeds(), Direction::Forward, u32::MAX);

    // xtask-allow: hotpath -- one-time setup per SCBG run, sized to the snapshot
    let mut is_rumor = vec![false; csr.node_count()];
    for &r in instance.rumor_seeds() {
        is_rumor[r.index()] = true;
    }

    // A BTreeMap keyed by NodeId makes the candidate order (and thus
    // the cover tie-breaks) deterministic by construction.
    // xtask-allow: hotpath -- one star-set map per SCBG run, built outside the cover loop
    let mut sw: BTreeMap<NodeId, Vec<u32>> = BTreeMap::new();
    let mut back = CsrBfsScratch::new();
    for (b_idx, &v) in bridge_ends.nodes.iter().enumerate() {
        meter.poll()?;
        let depth = d_r
            .distance(v)
            // xtask-allow: panic -- bridge ends are discovered by forward BFS from the rumor seeds, so a distance exists
            .expect("bridge ends are reachable from the rumor originators by definition");
        let depth = max_bbst_depth.map_or(depth, |cap| depth.min(cap));
        back.run(csr, &[v], Direction::Backward, depth);
        for &u in back.order() {
            if !is_rumor[u.index()] {
                sw.entry(u).or_default().push(b_idx as u32);
            }
        }
    }

    // BTreeMap iteration is already in ascending NodeId order.
    Ok(sw.into_iter().unzip())
}

/// Cost-aware SCBG — an extension beyond the paper: protectors have
/// per-node recruitment costs and the cover minimizes total cost via
/// the weighted greedy (ratio rule), still within the classic
/// logarithmic factor of the optimal weighted cover.
///
/// `cost(v)` must be strictly positive and finite for every node the
/// BBSTs propose as a candidate.
///
/// # Panics
///
/// Panics (inside the set-cover layer) if `cost` produces a
/// non-positive or non-finite value for a candidate.
///
/// # Examples
///
/// ```
/// use lcrb::{scbg_weighted, RumorBlockingInstance, ScbgConfig};
/// use lcrb_community::Partition;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)])?;
/// let p = Partition::from_labels(vec![0, 0, 1, 1]);
/// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
/// // Uniform costs reduce to plain SCBG.
/// let sol = scbg_weighted(&inst, &ScbgConfig::default(), |_| 1.0);
/// assert!(sol.is_complete());
/// # Ok(())
/// # }
/// ```
pub fn scbg_weighted<F>(
    instance: &RumorBlockingInstance,
    config: &ScbgConfig,
    cost: F,
) -> ScbgSolution
where
    F: Fn(NodeId) -> f64,
{
    let bridge_ends = find_bridge_ends(instance, config.rule);
    let (candidates, sets) = build_star_sets(
        instance,
        &bridge_ends,
        config.max_bbst_depth,
        &WorkMeter::unlimited(),
    )
    // xtask-allow: panic -- an unlimited meter's poll never stops the build
    .expect("unlimited meter cannot stop the star-set build");
    let costs: Vec<f64> = candidates.iter().map(|&u| cost(u)).collect();
    let solution = crate::setcover::greedy_weighted_set_cover(bridge_ends.len(), &sets, &costs);
    ScbgSolution {
        protectors: solution.selected.iter().map(|&i| candidates[i]).collect(),
        covered: solution.covered,
        candidate_count: candidates.len(),
        bridge_ends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_diffusion::{doam_analytic, DoamModel};
    use lcrb_graph::generators;
    use lcrb_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn instance(g: DiGraph, labels: Vec<usize>, seeds: Vec<usize>) -> RumorBlockingInstance {
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::new(g, p, 0, seeds.into_iter().map(NodeId::new).collect()).unwrap()
    }

    /// Protection check shared by the tests: simulate DOAM with the
    /// chosen protectors and assert every bridge end survives.
    fn assert_all_bridge_ends_protected(inst: &RumorBlockingInstance, sol: &ScbgSolution) {
        let seeds = inst.seed_sets(sol.protectors.clone()).unwrap();
        let outcome = DoamModel::default().run_deterministic(inst.graph(), &seeds);
        for &v in &sol.bridge_ends.nodes {
            assert!(
                !outcome.status(v).is_infected(),
                "bridge end {v} was infected"
            );
        }
    }

    #[test]
    fn single_gateway_is_covered_by_one_protector() {
        // Rumor community {0,1}: 0 -> 1; gateway 1 -> 2; 2 -> {3, 4}
        // inside the neighbor community... wait, bridge ends are
        // first-outside nodes: only node 2. One protector suffices.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
        let inst = instance(g, vec![0, 0, 1, 1, 1], vec![0]);
        let sol = scbg(&inst, &ScbgConfig::default());
        assert_eq!(sol.bridge_ends.nodes, vec![NodeId::new(2)]);
        assert!(sol.is_complete());
        assert_eq!(sol.protectors.len(), 1);
        assert_all_bridge_ends_protected(&inst, &sol);
    }

    #[test]
    fn shared_upstream_node_covers_multiple_bridge_ends() {
        // Two bridge ends 3, 4 both fed by gateway 1 at distance 2
        // from the rumor; protecting node 1 covers both (d_P = 1 <=
        // d_R for each).
        let g = DiGraph::from_edges(5, [(0, 1), (1, 3), (1, 4)]).unwrap();
        let inst = instance(g, vec![0, 0, 0, 1, 1], vec![0]);
        let sol = scbg(&inst, &ScbgConfig::default());
        assert_eq!(sol.bridge_ends.len(), 2);
        assert!(sol.is_complete());
        assert_eq!(sol.protectors, vec![NodeId::new(1)]);
        assert_all_bridge_ends_protected(&inst, &sol);
    }

    #[test]
    fn rumor_seeds_are_never_selected() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let inst = instance(g, vec![0, 0, 1, 1], vec![0, 1]);
        let sol = scbg(&inst, &ScbgConfig::default());
        assert!(sol.is_complete());
        for p in &sol.protectors {
            assert!(!inst.is_rumor_seed(*p), "selected rumor seed {p}");
        }
        assert_all_bridge_ends_protected(&inst, &sol);
    }

    #[test]
    fn empty_bridge_set_needs_no_protectors() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0)]).unwrap();
        let inst = instance(g, vec![0, 0, 1, 1], vec![0]);
        let sol = scbg(&inst, &ScbgConfig::default());
        assert!(sol.protectors.is_empty());
        assert!(sol.is_complete());
        assert_eq!(sol.candidate_count, 0);
    }

    #[test]
    fn depth_cap_still_covers_via_self_protection() {
        // Even with depth 0, Q_v = {v} and SCBG protects the bridge
        // ends directly.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 3), (1, 4)]).unwrap();
        let inst = instance(g, vec![0, 0, 0, 1, 1], vec![0]);
        let sol = scbg(
            &inst,
            &ScbgConfig {
                max_bbst_depth: Some(0),
                ..ScbgConfig::default()
            },
        );
        assert!(sol.is_complete());
        let mut got = sol.protectors.clone();
        got.sort_unstable();
        assert_eq!(got, vec![NodeId::new(3), NodeId::new(4)]);
        assert_all_bridge_ends_protected(&inst, &sol);
    }

    #[test]
    fn depth_cap_increases_or_keeps_cover_size() {
        let mut rng = SmallRng::seed_from_u64(13);
        let (g, labels) =
            generators::planted_partition(&[30, 30, 30], 0.25, 0.02, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 3, &mut rng).unwrap();
        let full = scbg(&inst, &ScbgConfig::default());
        let capped = scbg(
            &inst,
            &ScbgConfig {
                max_bbst_depth: Some(1),
                ..ScbgConfig::default()
            },
        );
        assert!(full.is_complete());
        assert!(capped.is_complete());
        assert!(capped.protectors.len() >= full.protectors.len());
    }

    #[test]
    fn scbg_certifies_protection_on_random_community_graphs() {
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let (g, labels) =
                generators::planted_partition(&[25, 25, 25], 0.3, 0.03, false, &mut rng).unwrap();
            let p = Partition::from_labels(labels);
            let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
            let sol = scbg(&inst, &ScbgConfig::default());
            assert!(sol.is_complete(), "seed {seed}: incomplete cover");
            assert_all_bridge_ends_protected(&inst, &sol);
            // The analytic oracle agrees.
            let seeds = inst.seed_sets(sol.protectors.clone()).unwrap();
            let outcome = doam_analytic(inst.graph(), &seeds);
            for &v in &sol.bridge_ends.nodes {
                assert!(!outcome.status(v).is_infected());
            }
        }
    }

    #[test]
    fn weighted_scbg_avoids_expensive_nodes() {
        // Gateway 1 covers both bridge ends but costs a fortune;
        // protecting the two bridge ends directly is cheaper.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 3), (1, 4)]).unwrap();
        let inst = instance(g, vec![0, 0, 0, 1, 1], vec![0]);
        let cheap = scbg_weighted(&inst, &ScbgConfig::default(), |v| {
            if v == NodeId::new(1) {
                100.0
            } else {
                1.0
            }
        });
        assert!(cheap.is_complete());
        let mut got = cheap.protectors.clone();
        got.sort_unstable();
        assert_eq!(got, vec![NodeId::new(3), NodeId::new(4)]);
        // With uniform costs, the shared gateway wins again.
        let uniform = scbg_weighted(&inst, &ScbgConfig::default(), |_| 1.0);
        assert_eq!(uniform.protectors, vec![NodeId::new(1)]);
        assert_all_bridge_ends_protected(&inst, &cheap);
        assert_all_bridge_ends_protected(&inst, &uniform);
    }

    #[test]
    fn weighted_scbg_with_uniform_costs_matches_plain_size() {
        let mut rng = SmallRng::seed_from_u64(40);
        let (g, labels) =
            generators::planted_partition(&[25, 25], 0.3, 0.03, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let plain = scbg(&inst, &ScbgConfig::default());
        let weighted = scbg_weighted(&inst, &ScbgConfig::default(), |_| 1.0);
        assert!(weighted.is_complete());
        assert_eq!(plain.protectors.len(), weighted.protectors.len());
    }

    #[test]
    fn deterministic_output() {
        let mut rng = SmallRng::seed_from_u64(21);
        let (g, labels) =
            generators::planted_partition(&[20, 20], 0.3, 0.05, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap();
        let a = scbg(&inst, &ScbgConfig::default());
        let b = scbg(&inst, &ScbgConfig::default());
        assert_eq!(a.protectors, b.protectors);
    }
}
