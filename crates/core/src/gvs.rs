//! A Greedy Viral Stopper (GVS) style baseline, after Nguyen et al.'s
//! β-node-protector work — the third related-work approach the paper
//! discusses at length (§II, reference \[26\]).
//!
//! Where the LCRB greedy maximizes *bridge-end protection* and SCBG
//! covers bridge ends exactly, GVS greedily adds the node whose
//! recruitment most reduces the *expected total infected count*,
//! estimated by Monte-Carlo simulation — "greedily adds nodes with
//! the best influence gain". It ignores the community structure
//! entirely, which makes it a useful foil: comparing it against the
//! paper's algorithms isolates how much the bridge-end insight buys.

use lcrb_diffusion::{
    monte_carlo_csr_budgeted, MonteCarloConfig, StopReason, TwoCascadeModel, WorkMeter,
};
use lcrb_graph::NodeId;

use crate::{find_bridge_ends, BridgeEndRule, CandidatePool, LcrbError, RumorBlockingInstance};

/// Configuration for [`greedy_viral_stopper`].
#[derive(Clone, Copy, Debug)]
pub struct GvsConfig {
    /// Monte-Carlo runs per candidate evaluation (GVS re-simulates,
    /// so keep this modest).
    pub mc_runs: usize,
    /// Base seed for the Monte-Carlo estimates.
    pub seed: u64,
    /// Candidate pool (defaults to the bridge-end backward
    /// neighborhood, same as the LCRB greedy, to keep runtimes
    /// comparable).
    pub candidates: CandidatePool,
    /// Bridge-end rule used only to build restricted pools.
    pub rule: BridgeEndRule,
}

impl Default for GvsConfig {
    fn default() -> Self {
        GvsConfig {
            mc_runs: 16,
            seed: 0,
            candidates: CandidatePool::BackwardRadius(1),
            rule: BridgeEndRule::WithinCommunity,
        }
    }
}

/// The result of a GVS run.
#[derive(Clone, Debug)]
pub struct GvsSelection {
    /// Selected protectors, in selection order.
    pub protectors: Vec<NodeId>,
    /// Expected infected count after each selection (index 0 = after
    /// the first pick); prepended by the no-protector baseline at
    /// index 0 of `baseline`.
    pub infected_history: Vec<f64>,
    /// Expected infected count with no protectors.
    pub baseline: f64,
}

/// Greedily selects `budget` protectors minimizing the Monte-Carlo
/// expected infected count under `model` (GVS-style).
///
/// Each round evaluates every remaining candidate with `mc_runs`
/// simulations, so the cost is `budget × |candidates| × mc_runs`
/// simulations — the brute-force flavor of the original GVS. Prefer
/// the LCRB greedy or SCBG for real deployments; this exists as the
/// related-work baseline.
///
/// # Errors
///
/// Returns [`LcrbError::Seeds`] only if the instance is internally
/// inconsistent (cannot happen through the public constructors).
pub fn greedy_viral_stopper<M>(
    instance: &RumorBlockingInstance,
    model: &M,
    budget: usize,
    config: &GvsConfig,
) -> Result<GvsSelection, LcrbError>
where
    M: TwoCascadeModel + Sync,
{
    let mut meter = WorkMeter::unlimited();
    let (selection, _) = greedy_viral_stopper_metered(instance, model, budget, config, &mut meter)?;
    Ok(selection)
}

/// [`greedy_viral_stopper`] under a [`WorkMeter`]: each candidate
/// evaluation charges its `mc_runs` simulations (all-or-nothing) and
/// polls for cancellation.
///
/// Checkpoints sit at *round* boundaries: a stop mid-round discards
/// that round's partial scan, so the returned prefix is exactly the
/// completed-rounds prefix an uninterrupted run would have — and
/// work-budget stops land at the same round on every run. Returns the
/// (possibly partial) selection plus `Some(reason)` when a budget or
/// deadline stopped the loop early.
///
/// # Errors
///
/// [`LcrbError::Interrupted`] on cancellation anywhere, or on any
/// stop during the no-protector baseline (there is no prefix to
/// salvage before it completes); estimator errors as in
/// [`greedy_viral_stopper`].
pub(crate) fn greedy_viral_stopper_metered<M>(
    instance: &RumorBlockingInstance,
    model: &M,
    budget: usize,
    config: &GvsConfig,
    meter: &mut WorkMeter,
) -> Result<(GvsSelection, Option<StopReason>), LcrbError>
where
    M: TwoCascadeModel + Sync,
{
    let mc = MonteCarloConfig {
        runs: config.mc_runs.max(1),
        base_seed: config.seed,
        threads: 0,
    };

    let bridge_ends = find_bridge_ends(instance, config.rule);
    let candidates = crate::greedy::candidate_pool_for(instance, &bridge_ends, config.candidates);
    let seeds = instance.seed_sets(Vec::new())?;
    let baseline = monte_carlo_csr_budgeted(model, instance.snapshot(), &seeds, &mc, meter)
        .map_err(|reason| LcrbError::Interrupted { reason })?
        .mean_final_infected();

    let mut selected: Vec<NodeId> = Vec::new();
    let mut infected_history = Vec::new();
    let mut current = baseline;
    let mut remaining = candidates;
    let mut stop = None;

    'rounds: for _ in 0..budget {
        let mut best: Option<(f64, usize)> = None;
        for (i, &c) in remaining.iter().enumerate() {
            let mut trial = selected.clone();
            trial.push(c);
            let seeds = instance.seed_sets(trial)?;
            let v = match monte_carlo_csr_budgeted(model, instance.snapshot(), &seeds, &mc, meter) {
                Ok(avg) => avg.mean_final_infected(),
                Err(StopReason::Cancelled) => {
                    return Err(LcrbError::Interrupted {
                        reason: StopReason::Cancelled,
                    })
                }
                Err(reason) => {
                    // Budget/deadline stop mid-round: discard the
                    // partial round, keep the completed-rounds prefix.
                    stop = Some(reason);
                    break 'rounds;
                }
            };
            if best.is_none_or(|(bv, _)| v < bv) {
                best = Some((v, i));
            }
        }
        let Some((value, idx)) = best else { break };
        if value >= current {
            break; // no candidate reduces expected infections
        }
        selected.push(remaining.swap_remove(idx));
        current = value;
        infected_history.push(value);
    }
    Ok((
        GvsSelection {
            protectors: selected,
            infected_history,
            baseline,
        },
        stop,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrb_community::Partition;
    use lcrb_diffusion::{DoamModel, OpoaoModel};
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn instance(seed: u64) -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[20, 20], 0.3, 0.03, false, &mut rng).unwrap();
        RumorBlockingInstance::with_random_seeds(g, Partition::from_labels(labels), 0, 2, &mut rng)
            .unwrap()
    }

    #[test]
    fn gvs_reduces_expected_infections_monotonically() {
        let inst = instance(3);
        let sel = greedy_viral_stopper(
            &inst,
            &OpoaoModel::new(15),
            3,
            &GvsConfig {
                mc_runs: 8,
                ..GvsConfig::default()
            },
        )
        .unwrap();
        assert!(sel.protectors.len() <= 3);
        let mut prev = sel.baseline;
        for &v in &sel.infected_history {
            assert!(v < prev, "history not strictly improving: {v} vs {prev}");
            prev = v;
        }
    }

    #[test]
    fn gvs_never_selects_rumor_seeds() {
        let inst = instance(5);
        let sel =
            greedy_viral_stopper(&inst, &DoamModel::default(), 4, &GvsConfig::default()).unwrap();
        for p in &sel.protectors {
            assert!(!inst.is_rumor_seed(*p));
        }
    }

    #[test]
    fn gvs_on_deterministic_model_is_deterministic() {
        let inst = instance(7);
        let a =
            greedy_viral_stopper(&inst, &DoamModel::default(), 2, &GvsConfig::default()).unwrap();
        let b =
            greedy_viral_stopper(&inst, &DoamModel::default(), 2, &GvsConfig::default()).unwrap();
        assert_eq!(a.protectors, b.protectors);
        assert_eq!(a.baseline, b.baseline);
    }

    #[test]
    fn zero_budget_returns_baseline_only() {
        let inst = instance(9);
        let sel =
            greedy_viral_stopper(&inst, &DoamModel::default(), 0, &GvsConfig::default()).unwrap();
        assert!(sel.protectors.is_empty());
        assert!(sel.infected_history.is_empty());
        assert!(sel.baseline >= inst.rumor_seeds().len() as f64);
    }

    #[test]
    fn gvs_stops_when_nothing_helps() {
        // Rumor community is a closed 2-cycle: no protector can
        // reduce the (already minimal) infected count.
        let g = lcrb_graph::DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let inst = RumorBlockingInstance::new(g, p, 0, vec![lcrb_graph::NodeId::new(0)]).unwrap();
        let sel =
            greedy_viral_stopper(&inst, &DoamModel::default(), 3, &GvsConfig::default()).unwrap();
        assert!(sel.protectors.is_empty());
    }
}
