//! # lcrb
//!
//! A from-scratch Rust implementation of *Least Cost Rumor Blocking
//! in Social Networks* (Fan, Lu, Wu, Thuraisingham, Ma, Bi — ICDCS
//! 2013).
//!
//! The paper asks: given a social network with community structure
//! and a set of rumor originators inside one community, what is the
//! cheapest set of *protector* originators that keeps the rumor from
//! escaping? Its key observation is that only the **bridge ends** —
//! boundary nodes of the neighboring communities — need protecting.
//! Two variants are studied:
//!
//! - **LCRB-P** (under the stochastic OPOAO model): protect an `α`
//!   fraction of bridge ends in expectation. The objective is
//!   monotone submodular (Theorem 1), so [`greedy_lcrb_p`] — the
//!   paper's Algorithm 1, here with CELF lazy evaluation — is a
//!   `(1 − 1/e)`-approximation.
//! - **LCRB-D** (under the deterministic DOAM model): protect *all*
//!   bridge ends. This is equivalent to Set Cover (Theorems 2–3), so
//!   [`scbg`] — the Set Cover Based Greedy, Algorithm 3 — achieves
//!   the optimal `O(ln |B|)` factor.
//!
//! The crate also ships the paper's comparison heuristics
//! ([`MaxDegreeSelector`], [`ProximitySelector`], plus
//! [`RandomSelector`] and [`NoBlockingSelector`]) and the evaluation
//! harness behind its figures ([`engine::Solver::compare`] with
//! [`evaluate::evaluate_protector_sets`]).
//!
//! ## Quickstart
//!
//! ```
//! use lcrb::{find_bridge_ends, scbg, BridgeEndRule, RumorBlockingInstance, ScbgConfig};
//! use lcrb_community::{louvain, LouvainConfig};
//! use lcrb_graph::generators::planted_partition;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small community-structured network...
//! let mut rng = SmallRng::seed_from_u64(1);
//! let (graph, _) = planted_partition(&[30, 30, 30], 0.3, 0.02, false, &mut rng)?;
//! // ...its detected communities...
//! let partition = louvain(&graph, &LouvainConfig::default()).partition;
//! // ...a rumor starting in community 0...
//! let instance = RumorBlockingInstance::with_random_seeds(graph, partition, 0, 3, &mut rng)?;
//! // ...and the least-cost protector set that blocks every escape.
//! let solution = scbg(&instance, &ScbgConfig::default());
//! assert!(solution.is_complete());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bridge;
pub mod engine;
mod error;
pub mod evaluate;
mod greedy;
mod gvs;
mod heuristics;
mod instance;
mod objective;
mod scbg;
pub mod setcover;
mod sketch_objective;
pub mod source;

pub use bridge::{find_bridge_ends, BridgeEndRule, BridgeEnds};
pub use engine::{
    Algorithm, Budgeted, CacheCounters, CacheStats, Completion, Selector, SolveDetail, SolveReport,
    SolveRequest, Solver, SolverConfig, StageTiming, StopRule,
};
// The budget/cancellation vocabulary rides on every `SolveRequest`,
// so re-export it from the problem layer too.
pub use error::LcrbError;
pub use greedy::{
    greedy_lcrb_p, greedy_with_budget, CandidatePool, Estimator, GreedyConfig, GreedySelection,
};
pub use gvs::{greedy_viral_stopper, GvsConfig, GvsSelection};
pub use heuristics::{
    protectors_to_cover_all, MaxDegreeSelector, NoBlockingSelector, PageRankSelector,
    ProtectorSelector, ProximitySelector, RandomSelector,
};
pub use instance::RumorBlockingInstance;
pub use lcrb_diffusion::{CancelToken, RunBudget, StopReason, WorkMeter};
pub use objective::{ObjectiveModel, ProtectionObjective};
pub use scbg::{scbg, scbg_weighted, ScbgConfig, ScbgSolution};
pub use sketch_objective::{CoverageScratch, SketchIndex, SketchObjective, SketchParams};
