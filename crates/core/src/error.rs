//! Error types for the LCRB problem layer.

use core::fmt;

use lcrb_community::PartitionSizeError;
use lcrb_diffusion::{SeedError, StopReason};
use lcrb_graph::NodeId;

/// Errors produced when constructing or solving an LCRB instance.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LcrbError {
    /// The community partition does not cover the graph's node set.
    PartitionMismatch(PartitionSizeError),
    /// The designated rumor community id does not exist.
    UnknownCommunity {
        /// The requested community id.
        community: usize,
        /// How many communities the partition has.
        community_count: usize,
    },
    /// A rumor seed lies outside the designated rumor community
    /// (Definition 2 requires `S_R ⊆ V(C_k)`).
    SeedOutsideCommunity {
        /// The offending seed.
        node: NodeId,
        /// The community the seed actually belongs to.
        actual_community: usize,
        /// The designated rumor community.
        rumor_community: usize,
    },
    /// No rumor seeds were supplied; the problem is vacuous.
    NoRumorSeeds,
    /// Seed validation failed at the diffusion layer.
    Seeds(SeedError),
    /// The protection level `α` is outside the LCRB-P range
    /// `0 < α <= 1`.
    InvalidAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// The greedy configuration requested zero Monte-Carlo
    /// realizations.
    NoRealizations,
    /// The sketch estimator's accuracy parameters are out of range.
    InvalidSketchParams {
        /// What was wrong with the parameters.
        reason: &'static str,
    },
    /// The sketch estimator only supports the OPOAO objective model
    /// (RR sketches invert OPOAO live-edge semantics).
    SketchModelUnsupported,
    /// A [`crate::engine::SolveRequest`] combined options that no
    /// algorithm implements (e.g. an α stopping rule on a pure-budget
    /// baseline).
    UnsupportedRequest {
        /// Which combination is unsupported.
        reason: &'static str,
    },
    /// The solve was stopped at a checkpoint — by a
    /// [`lcrb_diffusion::CancelToken`], a deadline, or a work-unit
    /// budget — before any usable partial result existed. (When a
    /// prefix *is* salvageable the engine returns a degraded
    /// [`crate::engine::SolveReport`] instead; see
    /// [`crate::engine::Completion`].)
    Interrupted {
        /// What stopped the solve.
        reason: StopReason,
    },
}

impl fmt::Display for LcrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcrbError::PartitionMismatch(e) => write!(f, "{e}"),
            LcrbError::UnknownCommunity {
                community,
                community_count,
            } => write!(
                f,
                "community {community} does not exist (partition has {community_count} communities)"
            ),
            LcrbError::SeedOutsideCommunity {
                node,
                actual_community,
                rumor_community,
            } => write!(
                f,
                "rumor seed {node} is in community {actual_community}, not the rumor community {rumor_community}"
            ),
            LcrbError::NoRumorSeeds => f.write_str("at least one rumor seed is required"),
            LcrbError::Seeds(e) => write!(f, "{e}"),
            LcrbError::InvalidAlpha { alpha } => {
                write!(f, "protection level alpha {alpha} is not in (0, 1]")
            }
            LcrbError::NoRealizations => {
                f.write_str("the greedy objective needs at least one realization")
            }
            LcrbError::InvalidSketchParams { reason } => {
                write!(f, "invalid sketch estimator parameters: {reason}")
            }
            LcrbError::SketchModelUnsupported => {
                f.write_str("the sketch estimator supports only the OPOAO objective model")
            }
            LcrbError::UnsupportedRequest { reason } => {
                write!(f, "unsupported solve request: {reason}")
            }
            LcrbError::Interrupted { reason } => {
                write!(f, "solve interrupted: {reason}")
            }
        }
    }
}

impl std::error::Error for LcrbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LcrbError::PartitionMismatch(e) => Some(e),
            LcrbError::Seeds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionSizeError> for LcrbError {
    fn from(e: PartitionSizeError) -> Self {
        LcrbError::PartitionMismatch(e)
    }
}

impl From<SeedError> for LcrbError {
    fn from(e: SeedError) -> Self {
        LcrbError::Seeds(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LcrbError::UnknownCommunity {
            community: 7,
            community_count: 3,
        };
        assert!(e.to_string().contains("community 7"));
        let e = LcrbError::InvalidAlpha { alpha: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(LcrbError::NoRumorSeeds.to_string().contains("rumor seed"));
        let e = LcrbError::UnsupportedRequest {
            reason: "alpha stop on a heuristic",
        };
        assert!(e.to_string().contains("alpha stop on a heuristic"));
        let e = LcrbError::Interrupted {
            reason: StopReason::Cancelled,
        };
        assert_eq!(e.to_string(), "solve interrupted: cancelled");
    }

    #[test]
    fn source_chains() {
        let e = LcrbError::from(PartitionSizeError {
            labels: 2,
            nodes: 3,
        });
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&LcrbError::NoRumorSeeds).is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LcrbError>();
    }
}
