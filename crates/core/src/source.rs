//! Rumor source detection — the paper's closing future-work item
//! ("another direction is looking into the problem of locating rumor
//! originators", §VII), implemented as a distance-centrality
//! estimator.
//!
//! Given a snapshot of who is infected, each candidate originator is
//! scored by how well it explains the snapshot under hop-time
//! spreading: a true originator should reach every infected node, in
//! few hops, uniformly. Candidates are ranked lexicographically by
//!
//! 1. how many infected nodes they *cannot* reach (fewer is better),
//! 2. the maximum hop distance to an infected node (the Jordan-center
//!    criterion; smaller is better),
//! 3. the total hop distance (closeness tie-break),
//!
//! which is exact on trees under deterministic spreading and a strong
//! heuristic on general graphs.

// xtask-allow-file: index -- distance arrays are node_count-sized and indexed by NodeIds of the same graph
use lcrb_graph::traversal::bfs_distances;
use lcrb_graph::{DiGraph, NodeId};

/// One scored source candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceScore {
    /// The candidate node.
    pub candidate: NodeId,
    /// Number of infected nodes unreachable from the candidate.
    pub unreachable: usize,
    /// Maximum hop distance from the candidate to a reachable
    /// infected node (0 when none are reachable).
    pub eccentricity: u32,
    /// Sum of hop distances to all reachable infected nodes.
    pub total_distance: u64,
}

impl SourceScore {
    /// The lexicographic sort key (lower is a better explanation).
    #[must_use]
    pub fn key(&self) -> (usize, u32, u64) {
        (self.unreachable, self.eccentricity, self.total_distance)
    }
}

/// A ranking of source candidates, best explanation first.
#[derive(Clone, Debug)]
pub struct SourceRanking {
    /// Scores sorted best-first (ties broken toward smaller node id).
    pub ranked: Vec<SourceScore>,
}

impl SourceRanking {
    /// The best candidate, if any were supplied.
    #[must_use]
    pub fn best(&self) -> Option<NodeId> {
        self.ranked.first().map(|s| s.candidate)
    }

    /// 0-based rank of `node` in the ranking, or `None` if it was not
    /// a candidate.
    #[must_use]
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.ranked.iter().position(|s| s.candidate == node)
    }

    /// The top `k` candidates.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<NodeId> {
        self.ranked.iter().take(k).map(|s| s.candidate).collect()
    }
}

/// Ranks `candidates` as explanations for the `infected` snapshot
/// (see the module docs for the criterion). Runs one BFS per
/// candidate; restrict the candidate set (e.g. to a suspected
/// community) for large graphs.
///
/// Candidates that are themselves outside the infected set are
/// allowed — observers may only have partial snapshots — but an
/// infected candidate at distance 0 naturally scores well.
///
/// # Panics
///
/// Panics if any candidate or infected id is out of bounds for `g`.
///
/// # Examples
///
/// ```
/// use lcrb::source::rank_sources;
/// use lcrb_graph::generators::path_graph;
/// use lcrb_graph::NodeId;
///
/// // Rumor walked 0 -> 1 -> 2 on a path: node 0 explains it best.
/// let g = path_graph(4);
/// let infected: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// let candidates: Vec<NodeId> = (0..4).map(NodeId::new).collect();
/// let ranking = rank_sources(&g, &infected, &candidates);
/// assert_eq!(ranking.best(), Some(NodeId::new(0)));
/// ```
#[must_use]
pub fn rank_sources(g: &DiGraph, infected: &[NodeId], candidates: &[NodeId]) -> SourceRanking {
    let mut ranked: Vec<SourceScore> = candidates
        .iter()
        .map(|&c| {
            let dist = bfs_distances(g, &[c]);
            let mut unreachable = 0usize;
            let mut eccentricity = 0u32;
            let mut total_distance = 0u64;
            for &v in infected {
                match dist[v.index()] {
                    Some(d) => {
                        eccentricity = eccentricity.max(d);
                        total_distance += u64::from(d);
                    }
                    None => unreachable += 1,
                }
            }
            SourceScore {
                candidate: c,
                unreachable,
                eccentricity,
                total_distance,
            }
        })
        .collect();
    ranked.sort_by_key(|s| (s.key(), s.candidate));
    SourceRanking { ranked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RumorBlockingInstance;
    use lcrb_community::Partition;
    use lcrb_diffusion::{DoamModel, OpoaoModel, TwoCascadeModel};
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_source_is_identified_exactly() {
        let g = generators::path_graph(6);
        let infected: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let ranking = rank_sources(&g, &infected, &candidates);
        assert_eq!(ranking.best(), Some(NodeId::new(0)));
        assert_eq!(ranking.rank_of(NodeId::new(0)), Some(0));
        // Nodes past the infection front cannot reach it at all.
        let last = ranking.ranked.last().unwrap();
        assert!(last.unreachable > 0);
    }

    #[test]
    fn star_center_explains_leaf_infections() {
        let g = generators::star_graph(7);
        let infected: Vec<NodeId> = (0..7).map(NodeId::new).collect();
        let candidates: Vec<NodeId> = (0..7).map(NodeId::new).collect();
        let ranking = rank_sources(&g, &infected, &candidates);
        // The hub reaches everything in 1 hop; leaves need 2.
        assert_eq!(ranking.best(), Some(NodeId::new(0)));
        let hub = &ranking.ranked[0];
        assert_eq!(hub.eccentricity, 1);
        assert_eq!(hub.unreachable, 0);
    }

    #[test]
    fn empty_inputs() {
        let g = generators::path_graph(3);
        let ranking = rank_sources(&g, &[], &[]);
        assert!(ranking.best().is_none());
        assert!(ranking.top(3).is_empty());
        // No infected nodes: every candidate is a perfect (vacuous)
        // explanation, ranked by id.
        let all: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let ranking = rank_sources(&g, &[], &all);
        assert_eq!(ranking.best(), Some(NodeId::new(0)));
        assert_eq!(ranking.ranked[2].key(), (0, 0, 0));
    }

    #[test]
    fn doam_outbreak_source_is_recovered_on_random_graphs() {
        let mut hits = 0;
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = generators::gnm_directed(120, 480, &mut rng).unwrap();
            let true_source = NodeId::new((seed as usize * 13) % 120);
            let seeds = lcrb_diffusion::SeedSets::rumors_only(&g, vec![true_source]).unwrap();
            // Truncate the broadcast to 3 hops so the snapshot still
            // carries locality information.
            let outcome = DoamModel::new(3).run_deterministic(&g, &seeds);
            let infected = outcome.infected_nodes();
            if infected.len() < 5 {
                continue;
            }
            let candidates: Vec<NodeId> = g.nodes().collect();
            let ranking = rank_sources(&g, &infected, &candidates);
            let rank = ranking.rank_of(true_source).unwrap();
            if rank < 12 {
                hits += 1; // top 10%
            }
        }
        assert!(hits >= 7, "true source in top-10% only {hits}/10 times");
    }

    #[test]
    fn community_restricted_candidates_work_with_instances() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (g, labels) =
            generators::planted_partition(&[40, 40], 0.25, 0.02, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 1, &mut rng).unwrap();
        let true_source = inst.rumor_seeds()[0];
        let seeds = inst.seed_sets(vec![]).unwrap();
        // The responder suspects the right community and ranks only
        // its members.
        let candidates = inst.rumor_community_members();

        // Deterministic 2-hop broadcast snapshot: sharp localization.
        let outcome = DoamModel::new(2).run_deterministic(inst.graph(), &seeds);
        let ranking = rank_sources(inst.graph(), &outcome.infected_nodes(), &candidates);
        let rank = ranking.rank_of(true_source).expect("source is a candidate");
        assert!(
            rank < candidates.len() / 4,
            "doam snapshot: true source ranked {rank} of {}",
            candidates.len()
        );

        // Stochastic OPOAO snapshot: noisier, so only demand better
        // than the median candidate.
        let outcome = OpoaoModel::new(8).run(inst.graph(), &seeds, &mut rng);
        let ranking = rank_sources(inst.graph(), &outcome.infected_nodes(), &candidates);
        let rank = ranking.rank_of(true_source).expect("source is a candidate");
        assert!(
            rank < candidates.len() / 2,
            "opoao snapshot: true source ranked {rank} of {}",
            candidates.len()
        );
    }
}
