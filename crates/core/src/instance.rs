//! The LCRB problem instance (Definition 2 of the paper).

use rand::seq::SliceRandom;
use rand::Rng;

use lcrb_community::Partition;
use lcrb_diffusion::SeedSets;
use lcrb_graph::{CsrGraph, DiGraph, NodeId};

use crate::LcrbError;

/// One Least Cost Rumor Blocking instance: a social graph with its
/// community structure, a designated rumor community `C_k`, and the
/// rumor originators `S_R ⊆ V(C_k)` (Definition 2).
///
/// The instance owns the graph and partition, and freezes a
/// [`CsrGraph`] snapshot once at construction; every solver in this
/// crate simulates against that snapshot (snapshot once, simulate
/// many).
///
/// # Examples
///
/// ```
/// use lcrb::RumorBlockingInstance;
/// use lcrb_community::Partition;
/// use lcrb_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Community 0 = {0, 1}, community 1 = {2, 3}; the rumor starts at 0.
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p = Partition::from_labels(vec![0, 0, 1, 1]);
/// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
/// assert_eq!(inst.rumor_seeds(), &[NodeId::new(0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RumorBlockingInstance {
    graph: DiGraph,
    snapshot: CsrGraph,
    partition: Partition,
    rumor_community: usize,
    rumor_seeds: Vec<NodeId>,
}

impl RumorBlockingInstance {
    /// Validates and builds an instance.
    ///
    /// # Errors
    ///
    /// - [`LcrbError::PartitionMismatch`] if the partition does not
    ///   cover the graph;
    /// - [`LcrbError::UnknownCommunity`] for a bad community id;
    /// - [`LcrbError::NoRumorSeeds`] for an empty seed list;
    /// - [`LcrbError::SeedOutsideCommunity`] if a seed is not in the
    ///   rumor community;
    /// - [`LcrbError::Seeds`] for out-of-bounds or duplicate-set
    ///   violations at the diffusion layer.
    pub fn new(
        graph: DiGraph,
        partition: Partition,
        rumor_community: usize,
        rumor_seeds: Vec<NodeId>,
    ) -> Result<Self, LcrbError> {
        partition.check_node_count(graph.node_count())?;
        if rumor_community >= partition.community_count() {
            return Err(LcrbError::UnknownCommunity {
                community: rumor_community,
                community_count: partition.community_count(),
            });
        }
        if rumor_seeds.is_empty() {
            return Err(LcrbError::NoRumorSeeds);
        }
        // Validate bounds + dedup via the diffusion layer.
        let seeds = SeedSets::rumors_only(&graph, rumor_seeds)?;
        let rumor_seeds = seeds.rumors().to_vec();
        for &s in &rumor_seeds {
            let c = partition.community_of(s);
            if c != rumor_community {
                return Err(LcrbError::SeedOutsideCommunity {
                    node: s,
                    actual_community: c,
                    rumor_community,
                });
            }
        }
        let snapshot = CsrGraph::from(&graph);
        Ok(RumorBlockingInstance {
            graph,
            snapshot,
            partition,
            rumor_community,
            rumor_seeds,
        })
    }

    /// Builds an instance by sampling `count` rumor seeds uniformly
    /// from the community's members (the experimental setup of §VI,
    /// where `|R|` is a percentage of `|C|`).
    ///
    /// # Errors
    ///
    /// Same as [`RumorBlockingInstance::new`]; additionally
    /// [`LcrbError::NoRumorSeeds`] if `count == 0` or the community
    /// is empty.
    pub fn with_random_seeds<R: Rng + ?Sized>(
        graph: DiGraph,
        partition: Partition,
        rumor_community: usize,
        count: usize,
        rng: &mut R,
    ) -> Result<Self, LcrbError> {
        partition.check_node_count(graph.node_count())?;
        if rumor_community >= partition.community_count() {
            return Err(LcrbError::UnknownCommunity {
                community: rumor_community,
                community_count: partition.community_count(),
            });
        }
        let mut members = partition.members(rumor_community);
        members.shuffle(rng);
        members.truncate(count);
        RumorBlockingInstance::new(graph, partition, rumor_community, members)
    }

    /// The social graph.
    #[inline]
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The frozen CSR snapshot of the graph, built once at
    /// construction — the substrate every simulation in this crate
    /// runs against.
    #[inline]
    #[must_use]
    pub fn snapshot(&self) -> &CsrGraph {
        &self.snapshot
    }

    /// The community structure.
    #[inline]
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Id of the rumor community `C_k`.
    #[inline]
    #[must_use]
    pub fn rumor_community(&self) -> usize {
        self.rumor_community
    }

    /// The rumor originators `S_R` (deduplicated, order preserved).
    #[inline]
    #[must_use]
    pub fn rumor_seeds(&self) -> &[NodeId] {
        &self.rumor_seeds
    }

    /// Members of the rumor community.
    #[must_use]
    pub fn rumor_community_members(&self) -> Vec<NodeId> {
        self.partition.members(self.rumor_community)
    }

    /// `true` if `node` belongs to the rumor community.
    #[inline]
    #[must_use]
    pub fn in_rumor_community(&self, node: NodeId) -> bool {
        self.partition.community_of(node) == self.rumor_community
    }

    /// `true` if `node` is a rumor originator.
    #[inline]
    #[must_use]
    pub fn is_rumor_seed(&self, node: NodeId) -> bool {
        self.rumor_seeds.contains(&node)
    }

    /// Rebuilds the instance with a different rumor seed set,
    /// reusing the already-frozen CSR snapshot (the graph does not
    /// change, so there is nothing to re-freeze).
    ///
    /// This is the re-seeding hook behind
    /// [`crate::engine::Solver::set_rumor_seeds`]; the engine bumps
    /// its cache epoch when it swaps instances.
    ///
    /// # Errors
    ///
    /// Same seed-validation errors as [`RumorBlockingInstance::new`].
    pub fn with_rumor_seeds(&self, rumor_seeds: Vec<NodeId>) -> Result<Self, LcrbError> {
        if rumor_seeds.is_empty() {
            return Err(LcrbError::NoRumorSeeds);
        }
        let seeds = SeedSets::rumors_only(&self.graph, rumor_seeds)?;
        let rumor_seeds = seeds.rumors().to_vec();
        for &s in &rumor_seeds {
            let c = self.partition.community_of(s);
            if c != self.rumor_community {
                return Err(LcrbError::SeedOutsideCommunity {
                    node: s,
                    actual_community: c,
                    rumor_community: self.rumor_community,
                });
            }
        }
        Ok(RumorBlockingInstance {
            graph: self.graph.clone(),
            snapshot: self.snapshot.clone(),
            partition: self.partition.clone(),
            rumor_community: self.rumor_community,
            rumor_seeds,
        })
    }

    /// Builds the seed pair `(S_R, protectors)` for simulation.
    ///
    /// # Errors
    ///
    /// Returns [`LcrbError::Seeds`] if `protectors` is invalid (out
    /// of bounds or overlapping `S_R`).
    pub fn seed_sets(&self, protectors: Vec<NodeId>) -> Result<SeedSets, LcrbError> {
        Ok(SeedSets::new(
            &self.graph,
            // xtask-allow: hotreach -- one-time lazy seed-pair construction; the CELF loop refills the cached pair in place
            self.rumor_seeds.clone(),
            protectors,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> (DiGraph, Partition) {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        (g, p)
    }

    #[test]
    fn valid_instance() {
        let (g, p) = fixture();
        let inst =
            RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0), NodeId::new(1)]).unwrap();
        assert_eq!(inst.rumor_community(), 0);
        assert_eq!(inst.rumor_seeds().len(), 2);
        assert!(inst.in_rumor_community(NodeId::new(2)));
        assert!(!inst.in_rumor_community(NodeId::new(3)));
        assert!(inst.is_rumor_seed(NodeId::new(1)));
        assert!(!inst.is_rumor_seed(NodeId::new(2)));
        assert_eq!(inst.rumor_community_members().len(), 3);
    }

    #[test]
    fn rejects_seed_outside_community() {
        let (g, p) = fixture();
        let err = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(4)]).unwrap_err();
        assert!(matches!(
            err,
            LcrbError::SeedOutsideCommunity {
                actual_community: 1,
                rumor_community: 0,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknown_community_and_empty_seeds() {
        let (g, p) = fixture();
        let err =
            RumorBlockingInstance::new(g.clone(), p.clone(), 5, vec![NodeId::new(0)]).unwrap_err();
        assert!(matches!(err, LcrbError::UnknownCommunity { .. }));
        let err = RumorBlockingInstance::new(g, p, 0, vec![]).unwrap_err();
        assert_eq!(err, LcrbError::NoRumorSeeds);
    }

    #[test]
    fn rejects_partition_mismatch() {
        let (g, _) = fixture();
        let p = Partition::from_labels(vec![0, 0, 1]);
        let err = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap_err();
        assert!(matches!(err, LcrbError::PartitionMismatch(_)));
    }

    #[test]
    fn random_seeds_land_in_community() {
        let (g, p) = fixture();
        let mut rng = SmallRng::seed_from_u64(1);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 1, 2, &mut rng).unwrap();
        assert_eq!(inst.rumor_seeds().len(), 2);
        for &s in inst.rumor_seeds() {
            assert!(inst.in_rumor_community(s));
        }
    }

    #[test]
    fn random_seeds_truncate_to_community_size() {
        let (g, p) = fixture();
        let mut rng = SmallRng::seed_from_u64(2);
        let inst = RumorBlockingInstance::with_random_seeds(g, p, 0, 100, &mut rng).unwrap();
        assert_eq!(inst.rumor_seeds().len(), 3);
    }

    #[test]
    fn seed_sets_reject_overlapping_protectors() {
        let (g, p) = fixture();
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        assert!(inst.seed_sets(vec![NodeId::new(3)]).is_ok());
        assert!(matches!(
            inst.seed_sets(vec![NodeId::new(0)]).unwrap_err(),
            LcrbError::Seeds(_)
        ));
    }

    #[test]
    fn with_rumor_seeds_revalidates_and_keeps_structure() {
        let (g, p) = fixture();
        let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap();
        let reseeded = inst
            .with_rumor_seeds(vec![NodeId::new(1), NodeId::new(2)])
            .unwrap();
        assert_eq!(reseeded.rumor_seeds(), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(reseeded.rumor_community(), inst.rumor_community());
        assert_eq!(reseeded.graph().node_count(), inst.graph().node_count());
        assert!(matches!(
            inst.with_rumor_seeds(vec![]).unwrap_err(),
            LcrbError::NoRumorSeeds
        ));
        assert!(matches!(
            inst.with_rumor_seeds(vec![NodeId::new(4)]).unwrap_err(),
            LcrbError::SeedOutsideCommunity { .. }
        ));
    }

    #[test]
    fn duplicate_seeds_are_collapsed() {
        let (g, p) = fixture();
        let inst =
            RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0), NodeId::new(0)]).unwrap();
        assert_eq!(inst.rumor_seeds(), &[NodeId::new(0)]);
    }
}
