//! Solver sessions: one engine in front of every selection
//! algorithm, with epoch-keyed artifact caching shared across
//! threads.
//!
//! The free functions ([`crate::greedy_lcrb_p`], [`crate::scbg`], the
//! heuristic selectors) rebuild every expensive artifact per call:
//! the bridge-end set, the RR-sketch sample, the CELF priority state,
//! degree/PageRank orderings. A [`Solver`] owns the
//! [`RumorBlockingInstance`] plus an [`ArtifactCache`] and reuses
//! those artifacts across queries, so a budget sweep or an α sweep
//! pays the construction cost once.
//!
//! Reuse is sound because each artifact depends only on what its
//! cache key names — never on the stopping rule:
//!
//! - the bridge-end set depends only on the instance and the
//!   [`BridgeEndRule`];
//! - a [`SketchIndex`] depends on the instance, the bridge ends, the
//!   `(ε, δ)` schedule, the master seed, and the hop budget — not on
//!   any budget or α;
//! - a CELF trajectory is *prefix-consistent*: the stopping rule only
//!   decides where the pick sequence stops, never which node is
//!   picked next (see [`crate::greedy`]'s trajectory invariant), so a
//!   smaller budget reads a prefix and a larger one resumes the
//!   stored heap, bitwise identical to a cold run.
//!
//! Every cache entry is stamped with the solver's **epoch**; mutating
//! the instance ([`Solver::set_rumor_seeds`]) or calling
//! [`Solver::invalidate`] bumps the epoch, so stale artifacts can
//! never serve a changed problem.
//!
//! # Concurrency
//!
//! [`Solver::solve`] takes `&self`: one solver can be shared across
//! threads (it is `Sync`) and answer requests concurrently, either
//! hand-rolled over `std::thread::scope` or through the batched
//! [`Solver::solve_many`]. The state is split three ways:
//!
//! - **request-immutable**: the frozen instance, the master seed, and
//!   the epoch — read-only during any `&self` solve (the epoch is a
//!   plain integer precisely because the only writers,
//!   [`Solver::invalidate`] and [`Solver::set_rumor_seeds`], take
//!   `&mut self`, which statically excludes racing in-flight solves);
//! - **shared mutable**: the [`ArtifactCache`] (internally
//!   synchronized, per-family locking with single-builder/waiters
//!   discipline — concurrent same-key solves build an artifact once)
//!   and the scratch pool (`lcrb_diffusion::ScratchPool`, leasing
//!   workspaces behind RAII guards);
//! - **per-request**: stage timers, derived RNG streams, scratch
//!   leases — created inside each solve, never shared.
//!
//! Determinism survives concurrency because every randomness stream
//! is derived from `(master seed, request content)` via
//! [`lcrb_diffusion::derive_stream`] — never from worker identity or
//! arrival order — and because a CELF trajectory is leased to exactly
//! one solve at a time: same-key requests serialize on the trajectory
//! and each resumes a bitwise-identical prefix.
//!
//! # Examples
//!
//! ```
//! use lcrb::engine::{Solver, SolveRequest};
//! use lcrb::RumorBlockingInstance;
//! use lcrb_community::Partition;
//! use lcrb_graph::{DiGraph, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! let p = Partition::from_labels(vec![0, 0, 1, 1]);
//! let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
//! let solver = Solver::new(inst);
//! let report = solver.solve(&SolveRequest::greedy_budget(1))?;
//! assert_eq!(report.protectors.len(), 1);
//! // A batch fans out across worker threads; results come back in
//! // request order and reuse the cached artifacts.
//! let batch = [SolveRequest::greedy_budget(2), SolveRequest::scbg()];
//! let reports = solver.solve_many(&batch);
//! assert_eq!(reports.len(), 2);
//! assert!(solver.cache_stats().hits() > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

// All blocking primitives come through the `lcrb-sync` facade: the
// default backend is a zero-cost `std::sync` passthrough, while test
// builds with the `sched` feature can run the whole cache protocol
// under a deterministic scheduler (see `tests/concurrency_model.rs`).
use lcrb_sync::{Condvar, Mutex, MutexGuard};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lcrb_diffusion::{
    CancelToken, MonteCarloConfig, RunBudget, ScratchPool, StopReason, TwoCascadeModel, WorkMeter,
};
use lcrb_graph::NodeId;

use crate::evaluate::{evaluate_protector_sets, HopSeriesReport};
use crate::greedy::{
    advance_trajectory, candidate_pool_for, normalized_model, selection_from_trajectory,
    GreedyTrajectory, SigmaBackend, SigmaScratch,
};
use crate::gvs::greedy_viral_stopper_metered;
use crate::scbg::scbg_metered;
use crate::sketch_objective::mix;
use crate::{
    find_bridge_ends, greedy_viral_stopper, scbg, BridgeEndRule, BridgeEnds, CandidatePool,
    Estimator, GreedyConfig, GreedySelection, GvsConfig, GvsSelection, LcrbError,
    MaxDegreeSelector, ObjectiveModel, PageRankSelector, ProtectionObjective, ProtectorSelector,
    ProximitySelector, RumorBlockingInstance, ScbgConfig, ScbgSolution, SketchIndex,
    SketchObjective,
};

/// Which selection algorithm a [`SolveRequest`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Algorithm {
    /// Algorithm 1 (CELF greedy) for LCRB-P — the only algorithm that
    /// honors [`StopRule::Alpha`].
    Greedy,
    /// Set Cover Based Greedy (Algorithm 3) for LCRB-D; ignores the
    /// stopping rule (it always covers every bridge end it can).
    Scbg,
    /// The Greedy Viral Stopper related-work baseline.
    Gvs,
    /// Highest out-degree first.
    MaxDegree,
    /// Random direct out-neighbors of the rumor originators.
    Proximity,
    /// Uniformly random non-rumor nodes.
    Random,
    /// Highest PageRank first.
    PageRank,
    /// No protectors — the reference line.
    NoBlocking,
}

impl Algorithm {
    /// The canonical display name (matches the paper-figure labels
    /// and the legacy [`ProtectorSelector::name`] strings).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::Scbg => "scbg",
            Algorithm::Gvs => "gvs",
            Algorithm::MaxDegree => "max-degree",
            Algorithm::Proximity => "proximity",
            Algorithm::Random => "random",
            Algorithm::PageRank => "pagerank",
            Algorithm::NoBlocking => "no-blocking",
        }
    }
}

/// When a solve stops adding protectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Select at most this many protectors.
    Budget(usize),
    /// Select until `σ̂ ≥ α·|B|` (greedy only; `α ∈ (0, 1]`).
    Alpha(f64),
}

/// One query against a [`Solver`]: which algorithm, when to stop, and
/// every knob the algorithms share. Construct via the named builders
/// ([`SolveRequest::greedy_budget`], [`SolveRequest::greedy_alpha`],
/// [`SolveRequest::scbg`], [`SolveRequest::gvs`],
/// [`SolveRequest::heuristic`]) and adjust fields with struct-update
/// syntax.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// The selection algorithm to run.
    pub algorithm: Algorithm,
    /// The stopping rule ([`StopRule::Alpha`] is greedy-only).
    pub stop: StopRule,
    /// σ̂ estimator for the greedy (Monte Carlo or RR sketches).
    pub estimator: Estimator,
    /// Bridge-end detection rule.
    pub rule: BridgeEndRule,
    /// Diffusion model the greedy/GVS objective estimates under.
    pub model: ObjectiveModel,
    /// Realizations for the Monte-Carlo greedy estimator.
    pub realizations: usize,
    /// Hop budget applied to the OPOAO objective model.
    pub max_hops: u32,
    /// Candidate pool for greedy and GVS.
    pub candidates: CandidatePool,
    /// CELF lazy evaluation (greedy only).
    pub lazy: bool,
    /// Worker threads for the greedy's initial gain sweep.
    pub threads: usize,
    /// Hard protector cap for α-mode greedy solves.
    pub max_protectors: usize,
    /// Monte-Carlo runs per GVS candidate evaluation.
    pub mc_runs: usize,
    /// Damping factor for [`Algorithm::PageRank`], in `[0, 1)`.
    pub pagerank_damping: f64,
    /// BBST depth cap for [`Algorithm::Scbg`].
    pub max_bbst_depth: Option<u32>,
    /// Work-unit caps and optional wall-clock deadline, checked only
    /// at deterministic checkpoint boundaries (see [`Completion`]).
    /// Defaults to [`RunBudget::unlimited`].
    pub budget: RunBudget,
    /// Cooperative cancellation token polled at the same checkpoints;
    /// observing it aborts the solve with [`LcrbError::Interrupted`].
    pub cancel: Option<CancelToken>,
}

impl SolveRequest {
    fn base(algorithm: Algorithm, stop: StopRule) -> Self {
        let defaults = GreedyConfig::default();
        SolveRequest {
            algorithm,
            stop,
            estimator: defaults.estimator,
            rule: defaults.rule,
            model: defaults.model,
            realizations: defaults.realizations,
            max_hops: defaults.max_hops,
            candidates: defaults.candidates,
            lazy: defaults.lazy,
            threads: defaults.threads,
            max_protectors: defaults.max_protectors,
            mc_runs: 16,
            pagerank_damping: 0.85,
            max_bbst_depth: None,
            budget: RunBudget::unlimited(),
            cancel: None,
        }
    }

    /// Budget-mode greedy: select exactly `budget` protectors (fewer
    /// only if gains hit zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, SolveRequest, StopRule};
    ///
    /// let req = SolveRequest::greedy_budget(3);
    /// assert_eq!(req.algorithm, Algorithm::Greedy);
    /// assert_eq!(req.stop, StopRule::Budget(3));
    /// ```
    #[must_use]
    pub fn greedy_budget(budget: usize) -> Self {
        SolveRequest::base(Algorithm::Greedy, StopRule::Budget(budget))
    }

    /// α-mode greedy: select until `σ̂ ≥ α·|B|`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, SolveRequest, StopRule};
    ///
    /// let req = SolveRequest::greedy_alpha(0.8);
    /// assert_eq!(req.algorithm, Algorithm::Greedy);
    /// assert_eq!(req.stop, StopRule::Alpha(0.8));
    /// ```
    #[must_use]
    pub fn greedy_alpha(alpha: f64) -> Self {
        SolveRequest::base(Algorithm::Greedy, StopRule::Alpha(alpha))
    }

    /// Set Cover Based Greedy for LCRB-D (the stopping rule is
    /// ignored; SCBG always covers everything it can).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, SolveRequest};
    ///
    /// let req = SolveRequest::scbg();
    /// assert_eq!(req.algorithm, Algorithm::Scbg);
    /// ```
    #[must_use]
    pub fn scbg() -> Self {
        SolveRequest::base(Algorithm::Scbg, StopRule::Budget(usize::MAX))
    }

    /// The GVS related-work baseline at a fixed budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, SolveRequest, StopRule};
    ///
    /// let req = SolveRequest::gvs(2);
    /// assert_eq!(req.algorithm, Algorithm::Gvs);
    /// assert_eq!(req.stop, StopRule::Budget(2));
    /// ```
    #[must_use]
    pub fn gvs(budget: usize) -> Self {
        SolveRequest::base(Algorithm::Gvs, StopRule::Budget(budget))
    }

    /// A budgeted heuristic baseline ([`Algorithm::MaxDegree`],
    /// [`Algorithm::Proximity`], [`Algorithm::Random`],
    /// [`Algorithm::PageRank`], or [`Algorithm::NoBlocking`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, SolveRequest, StopRule};
    ///
    /// let req = SolveRequest::heuristic(Algorithm::MaxDegree, 4);
    /// assert_eq!(req.algorithm, Algorithm::MaxDegree);
    /// assert_eq!(req.stop, StopRule::Budget(4));
    /// ```
    #[must_use]
    pub fn heuristic(algorithm: Algorithm, budget: usize) -> Self {
        SolveRequest::base(algorithm, StopRule::Budget(budget))
    }

    /// Replaces the σ̂ estimator (builder style).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::SolveRequest;
    /// use lcrb::{Estimator, SketchParams};
    ///
    /// let req = SolveRequest::greedy_budget(2)
    ///     .with_estimator(Estimator::Sketch(SketchParams::default()));
    /// assert!(matches!(req.estimator, Estimator::Sketch(_)));
    /// ```
    #[must_use]
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Replaces the stopping rule (builder style).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{SolveRequest, StopRule};
    ///
    /// let req = SolveRequest::greedy_budget(2).with_stop(StopRule::Alpha(0.9));
    /// assert_eq!(req.stop, StopRule::Alpha(0.9));
    /// ```
    #[must_use]
    pub fn with_stop(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// Attaches a work-unit/deadline budget (builder style). The
    /// solve stops at the first checkpoint where a cap is exhausted
    /// and returns a [`Completion::Degraded`] report carrying the
    /// best-so-far selection.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::SolveRequest;
    /// use lcrb::RunBudget;
    ///
    /// let req = SolveRequest::greedy_budget(3)
    ///     .with_budget(RunBudget::unlimited().with_max_advances(1));
    /// assert!(!req.budget.is_unlimited());
    /// ```
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cooperative cancellation token (builder style).
    /// Cancelling the token makes the solve abort with
    /// [`LcrbError::Interrupted`] at its next checkpoint.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::SolveRequest;
    /// use lcrb::CancelToken;
    ///
    /// let token = CancelToken::new();
    /// let req = SolveRequest::scbg().with_cancel(token.clone());
    /// assert_eq!(req.cancel, Some(token));
    /// ```
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The equivalent legacy [`GreedyConfig`] (α is a placeholder in
    /// budget mode; the engine passes the target separately).
    fn greedy_config(&self, master_seed: u64) -> GreedyConfig {
        GreedyConfig {
            alpha: match self.stop {
                StopRule::Alpha(a) => a,
                StopRule::Budget(_) => 1.0,
            },
            realizations: self.realizations,
            master_seed,
            max_hops: self.max_hops,
            model: self.model,
            max_protectors: self.max_protectors,
            candidates: self.candidates,
            lazy: self.lazy,
            rule: self.rule,
            threads: self.threads,
            estimator: self.estimator,
        }
    }
}

/// Hit/miss counters for one artifact kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to (re)build the artifact.
    pub misses: u64,
}

impl CacheCounters {
    fn delta_since(self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Per-artifact-kind cache counters. Cumulative over the session's
/// life; read a point-in-time snapshot with [`Solver::cache_stats`]
/// and charge a window of work by diffing two snapshots with
/// [`CacheStats::delta_since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bridge-end set lookups.
    pub bridge: CacheCounters,
    /// RR-sketch index lookups.
    pub sketch: CacheCounters,
    /// CELF trajectory lookups.
    pub celf: CacheCounters,
    /// SCBG solution lookups.
    pub scbg: CacheCounters,
    /// Heuristic ordering/pool lookups (degree, PageRank, proximity).
    pub ordering: CacheCounters,
    /// GVS selection lookups.
    pub gvs: CacheCounters,
}

impl CacheStats {
    /// Total hits across every artifact kind.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.bridge.hits
            + self.sketch.hits
            + self.celf.hits
            + self.scbg.hits
            + self.ordering.hits
            + self.gvs.hits
    }

    /// Total misses across every artifact kind.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.bridge.misses
            + self.sketch.misses
            + self.celf.misses
            + self.scbg.misses
            + self.ordering.misses
            + self.gvs.misses
    }

    /// The counter increments between `earlier` and `self` (both
    /// snapshots of the same solver's cumulative stats).
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            bridge: self.bridge.delta_since(earlier.bridge),
            sketch: self.sketch.delta_since(earlier.sketch),
            celf: self.celf.delta_since(earlier.celf),
            scbg: self.scbg.delta_since(earlier.scbg),
            ordering: self.ordering.delta_since(earlier.ordering),
            gvs: self.gvs.delta_since(earlier.gvs),
        }
    }
}

/// Wall-clock duration of one named stage of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (`"bridge"`, `"estimator"`, `"select"`, ...).
    pub stage: &'static str,
    /// Elapsed nanoseconds.
    pub nanos: u128,
}

/// How much of the requested work a [`SolveReport`] reflects.
///
/// A solve whose [`RunBudget`] expires at a deterministic checkpoint
/// does not fail: it degrades, returning the best-so-far selection
/// (always a prefix of the uninterrupted run — see the trajectory
/// invariant in [`crate::greedy`]). Cancellation never degrades; it
/// aborts the solve with [`LcrbError::Interrupted`] instead, because
/// a cancelled caller has no use for a partial answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Completion {
    /// The algorithm ran to its own stopping rule; the report is its
    /// exact output.
    Exact,
    /// A work-unit cap or deadline stopped the solve at a checkpoint;
    /// the report carries the best-so-far selection.
    Degraded {
        /// Checkpoints completed before the stop, in the stage's own
        /// units: CELF picks made, GVS rounds finished, RR sketches
        /// generated, or bridge ends covered.
        checkpoints_done: u64,
        /// The checkpoint total an uninterrupted run would reach: the
        /// pick cap (or candidate-pool size in α mode), the GVS
        /// budget, the scheduled sketch count, or the bridge-end
        /// count.
        checkpoints_total: u64,
        /// Which budget dimension stopped the solve.
        reason: StopReason,
    },
}

impl Completion {
    /// `true` for [`Completion::Exact`].
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(self, Completion::Exact)
    }
}

/// Algorithm-specific detail attached to a [`SolveReport`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SolveDetail {
    /// The full greedy selection (σ̂ history, target, evaluations).
    Greedy(GreedySelection),
    /// The full SCBG solution (coverage accounting).
    Scbg(ScbgSolution),
    /// The full GVS selection (infected-count history).
    Gvs(GvsSelection),
    /// Heuristic baselines carry no extra detail.
    Heuristic,
}

/// The outcome of one [`Solver::solve`]: the selection plus
/// observability metadata (per-stage timings, a cache-counter
/// snapshot).
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Canonical algorithm name ([`Algorithm::name`]).
    pub algorithm: String,
    /// Selected protector originators, in selection order.
    pub protectors: Vec<NodeId>,
    /// The solver epoch this solve ran at.
    pub epoch: u64,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// The session's **cumulative** cache counters, snapshotted when
    /// this solve completed. Under concurrent solves the increments
    /// of overlapping requests interleave, so a snapshot cannot be
    /// attributed to one request; charge a window of work by diffing
    /// [`Solver::cache_stats`] snapshots taken around it instead.
    pub cache_snapshot: CacheStats,
    /// Whether the solve ran to completion or degraded at a budget
    /// checkpoint.
    pub completion: Completion,
    /// Algorithm-specific detail.
    pub detail: SolveDetail,
}

impl SolveReport {
    /// Nanoseconds spent in `stage`, if it ran.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let report = solver.solve(&SolveRequest::greedy_budget(1))?;
    /// assert!(report.stage_nanos("select").is_some());
    /// assert!(report.stage_nanos("nope").is_none());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn stage_nanos(&self, stage: &str) -> Option<u128> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.nanos)
    }

    /// Total nanoseconds across all recorded stages.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let report = solver.solve(&SolveRequest::greedy_budget(1))?;
    /// let sum: u128 = report.stages.iter().map(|s| s.nanos).sum();
    /// assert_eq!(report.total_nanos(), sum);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn total_nanos(&self) -> u128 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// `true` when a work-unit cap or deadline stopped this solve at a
    /// checkpoint, making the selection a best-so-far prefix.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::{RumorBlockingInstance, RunBudget};
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let starved = solver.solve(
    ///     &SolveRequest::greedy_budget(1)
    ///         .with_budget(RunBudget::unlimited().with_max_advances(0)),
    /// )?;
    /// assert!(starved.is_degraded());
    /// assert!(starved.protectors.is_empty());
    /// // Budgets meter work performed: the unbudgeted re-ask resumes
    /// // the parked trajectory and completes exactly.
    /// let exact = solver.solve(&SolveRequest::greedy_budget(1))?;
    /// assert!(!exact.is_degraded());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.completion.is_exact()
    }
}

/// Construction options for a [`Solver`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverConfig {
    /// Master seed every derived randomness stream mixes from
    /// (realization batches, sketch sampling, heuristic shuffles).
    pub master_seed: u64,
}

/// A unified selection strategy a [`Solver`] can run — implemented by
/// [`SolveRequest`] (the native path) and by [`Budgeted`] (the
/// adapter over legacy [`ProtectorSelector`]s).
pub trait Selector {
    /// Display name for reports and figures.
    fn name(&self) -> String;
    /// Runs the strategy against the solver (using its cache and
    /// derived randomness streams).
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from the underlying algorithm.
    fn select(&self, solver: &Solver) -> Result<SolveReport, LcrbError>;
}

impl Selector for SolveRequest {
    fn name(&self) -> String {
        self.algorithm.name().to_owned()
    }

    fn select(&self, solver: &Solver) -> Result<SolveReport, LcrbError> {
        solver.solve(self)
    }
}

/// Adapter running a legacy [`ProtectorSelector`] at a fixed budget
/// through the [`Selector`] interface (randomness comes from the
/// solver's derived stream for the selector's name and budget).
#[derive(Clone, Copy)]
pub struct Budgeted<'a> {
    /// The legacy selector to run.
    pub selector: &'a dyn ProtectorSelector,
    /// How many protectors it may pick.
    pub budget: usize,
}

impl std::fmt::Debug for Budgeted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budgeted")
            .field("selector", &self.selector.name())
            .field("budget", &self.budget)
            .finish()
    }
}

impl Selector for Budgeted<'_> {
    fn name(&self) -> String {
        self.selector.name().to_owned()
    }

    fn select(&self, solver: &Solver) -> Result<SolveReport, LcrbError> {
        let mut clock = StageClock::start();
        let mut rng = solver.named_rng(self.selector.name(), self.budget);
        let protectors = self
            .selector
            .select(&solver.instance, self.budget, &mut rng);
        clock.lap("select");
        Ok(SolveReport {
            algorithm: self.selector.name().to_owned(),
            protectors,
            epoch: solver.epoch,
            stages: clock.stages,
            cache_snapshot: solver.cache.stats(),
            completion: Completion::Exact,
            detail: SolveDetail::Heuristic,
        })
    }
}

/// A clock read for stage timings. Observability metadata only: the
/// solver's *selections* never read the clock, so determinism of the
/// outputs is preserved.
#[allow(clippy::disallowed_methods)]
fn now() -> std::time::Instant {
    // xtask-allow: determinism -- stage timings are observability metadata; selections never read the clock
    std::time::Instant::now()
}

struct StageClock {
    last: std::time::Instant,
    stages: Vec<StageTiming>,
}

impl StageClock {
    fn start() -> Self {
        StageClock {
            last: now(),
            stages: Vec::new(),
        }
    }

    fn lap(&mut self, stage: &'static str) {
        let t = now();
        self.stages.push(StageTiming {
            stage,
            nanos: t.duration_since(self.last).as_nanos(),
        });
        self.last = t;
    }
}

/// Locks a mutex, tolerating poison: every value stored behind an
/// engine mutex stays valid across a panic (maps hold fully built
/// entries or removable `Building` markers; gate booleans are
/// monotone), so inheriting a poisoned guard is always safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A one-shot broadcast latch: waiters block until the first
/// [`Gate::open`].
///
/// This is the wakeup primitive behind every "single builder, many
/// waiters" protocol in the engine ([`FamilyCache`] build markers and
/// the CELF trajectory leases). It is `pub` so the schedule-exploration
/// tests (`tests/concurrency_model.rs`) can model-check the primitive
/// itself; production code has no reason to construct one.
#[derive(Debug, Default)]
pub struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// Opens the gate and wakes every current and future waiter.
    /// Idempotent: the flag is monotone.
    pub fn open(&self) {
        *lock(&self.done) = true;
        self.cv.notify_all();
    }

    /// Blocks until the gate is open; returns immediately if it
    /// already is.
    pub fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Lock-free hit/miss tallies for one artifact family. Relaxed
/// ordering suffices: the counters are monotone statistics, never
/// used for synchronization.
#[derive(Debug, Default)]
struct FamilyCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FamilyCounters {
    fn hit(&self) {
        self.hits.fetch_add(1, AtomicOrdering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
    }

    fn snapshot(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }
}

/// One slot of a [`FamilyCache`]: either a finished artifact or a
/// marker that some thread is building it (waiters park on the gate).
#[derive(Debug)]
enum Slot<V> {
    Building(Arc<Gate>),
    Ready(V),
}

/// An internally synchronized, epoch-stamped artifact family with
/// single-builder/waiters discipline: concurrent same-key lookups
/// build the artifact exactly once, everyone else blocks on the
/// builder's gate and then clones the shared result.
///
/// The family mutex is held only for map bookkeeping — never across a
/// build, a wait, or any simulation call.
///
/// `pub` for the same reason as [`Gate`]: the deterministic-schedule
/// tests drive the probe-or-publish race on the real type. The engine
/// itself only uses it through [`ArtifactCache`].
#[derive(Debug)]
pub struct FamilyCache<K, V> {
    map: Mutex<BTreeMap<K, (u64, Slot<V>)>>,
    counters: FamilyCounters,
}

// Manual impl: the derive would demand `K: Default + V: Default`,
// but an empty map needs neither.
impl<K, V> Default for FamilyCache<K, V> {
    fn default() -> Self {
        FamilyCache {
            map: Mutex::new(BTreeMap::new()),
            counters: FamilyCounters::default(),
        }
    }
}

/// Removes the `Building` marker a failed builder left behind and
/// wakes its waiters, so they retry the build instead of deadlocking;
/// `finish` disarms the removal once the `Ready` value is in place
/// (the gate still opens on drop).
struct BuildGuard<'a, K: Copy + Ord, V> {
    cache: &'a FamilyCache<K, V>,
    key: K,
    gate: Arc<Gate>,
    armed: bool,
}

impl<K: Copy + Ord, V> BuildGuard<'_, K, V> {
    fn finish(mut self) {
        self.armed = false;
        // Drop still opens the gate for the waiters.
    }
}

impl<K: Copy + Ord, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = lock(&self.cache.map);
            // Only remove *our* marker: a concurrent epoch change may
            // have replaced the slot already.
            if let Some((_, Slot::Building(g))) = map.get(&self.key) {
                if Arc::ptr_eq(g, &self.gate) {
                    map.remove(&self.key);
                }
            }
        }
        self.gate.open();
    }
}

enum Probe {
    Wait(Arc<Gate>),
    Build,
}

impl<K: Copy + Ord, V: Clone> FamilyCache<K, V> {
    /// Returns the current-epoch artifact for `key`, building it with
    /// `build` on a miss. Concurrent same-key callers build exactly
    /// once: one claims the slot, the rest park on its [`Gate`] and
    /// clone the published value. A failed (or panicked) build vacates
    /// the slot and frees the waiters to retry.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; the cache keeps no trace of the
    /// failed attempt beyond the charged miss.
    pub fn get_or_try_build<E>(
        &self,
        key: K,
        epoch: u64,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        loop {
            let mut map = lock(&self.map);
            let probe = match map.get(&key) {
                Some(&(e, Slot::Ready(ref v))) if e == epoch => {
                    self.counters.hit();
                    return Ok(v.clone());
                }
                Some(&(e, Slot::Building(ref g))) if e == epoch => Probe::Wait(Arc::clone(g)),
                // Vacant, or stamped with a stale epoch (including a
                // stale Building marker): claim the slot and rebuild.
                Some(_) | None => Probe::Build,
            };
            match probe {
                Probe::Wait(gate) => {
                    drop(map);
                    gate.wait();
                    // Re-probe: the builder either parked a Ready
                    // value or failed and vacated the slot.
                }
                Probe::Build => {
                    let gate = Arc::new(Gate::default());
                    map.insert(key, (epoch, Slot::Building(Arc::clone(&gate))));
                    drop(map);
                    self.counters.miss();
                    let guard = BuildGuard {
                        cache: self,
                        key,
                        gate,
                        armed: true,
                    };
                    // Injectable failure between claiming the slot and
                    // running the builder: the guard must vacate the
                    // marker and open the gate during unwind.
                    lcrb_sync::fault::point("family.build");
                    // The build runs outside every lock; on error the
                    // guard vacates the slot and frees the waiters.
                    let value = build()?;
                    lock(&self.map).insert(key, (epoch, Slot::Ready(value.clone())));
                    guard.finish();
                    return Ok(value);
                }
            }
        }
    }

    /// [`FamilyCache::get_or_try_build`] for infallible builders.
    pub fn get_or_build(&self, key: K, epoch: u64, build: impl FnOnce() -> V) -> V {
        match self.get_or_try_build(key, epoch, || Ok::<_, std::convert::Infallible>(build())) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Drops every slot (values and in-progress markers alike).
    pub fn clear(&self) {
        lock(&self.map).clear();
    }

    /// Snapshot of the family's cumulative hit/miss counters.
    #[must_use]
    pub fn counter_snapshot(&self) -> CacheCounters {
        self.counters.snapshot()
    }
}

/// One slot of the [`CelfCache`]: a trajectory is either leased to
/// exactly one in-flight solve (`InUse`) or parked between solves
/// (`Parked`, stamped with its build epoch).
#[derive(Debug)]
enum CelfSlot {
    InUse(Arc<Gate>),
    Parked(u64, GreedyTrajectory),
}

/// The CELF trajectory store. Unlike [`FamilyCache`] values,
/// trajectories are mutable resumable state that must never be
/// cloned-and-diverged: `take` hands the trajectory (if any) to
/// exactly one solve and marks the key `InUse`; concurrent same-key
/// requests block until the lease returns it, then resume the
/// extended heap — preserving the prefix-resume semantics and the
/// "build once" guarantee under contention.
#[derive(Debug, Default)]
struct CelfCache {
    map: Mutex<BTreeMap<CelfKey, CelfSlot>>,
    counters: FamilyCounters,
}

impl CelfCache {
    /// Claims `key` for one solve: returns the parked trajectory on a
    /// current-epoch hit (`None` on a cold or stale key) plus the
    /// lease that must either [`CelfLease::store`] the advanced
    /// trajectory or, on drop, vacate the slot so the next request
    /// cold-builds instead of inheriting a poisoned prefix.
    fn take(&self, key: CelfKey, epoch: u64) -> (Option<GreedyTrajectory>, CelfLease<'_>) {
        loop {
            let mut map = lock(&self.map);
            let wait_gate = match map.get(&key) {
                Some(CelfSlot::InUse(g)) => Some(Arc::clone(g)),
                _ => None,
            };
            if let Some(gate) = wait_gate {
                drop(map);
                gate.wait();
                continue;
            }
            let cached = match map.remove(&key) {
                Some(CelfSlot::Parked(e, traj)) if e == epoch => {
                    self.counters.hit();
                    Some(traj)
                }
                // Vacant or epoch-stale: drop the stale trajectory
                // (if any) and cold-build.
                _ => {
                    self.counters.miss();
                    None
                }
            };
            let gate = Arc::new(Gate::default());
            map.insert(key, CelfSlot::InUse(Arc::clone(&gate)));
            return (
                cached,
                CelfLease {
                    cache: self,
                    key,
                    epoch,
                    gate,
                    stored: false,
                },
            );
        }
    }

    fn clear(&self) {
        lock(&self.map).clear();
    }
}

/// Exclusive claim on one CELF cache key while a solve advances its
/// trajectory. Dropping without [`CelfLease::store`] (the error path)
/// vacates the slot; either way the gate opens and same-key waiters
/// proceed.
struct CelfLease<'a> {
    cache: &'a CelfCache,
    key: CelfKey,
    epoch: u64,
    gate: Arc<Gate>,
    stored: bool,
}

impl CelfLease<'_> {
    /// Parks the advanced trajectory for the next same-key solve.
    fn store(mut self, traj: GreedyTrajectory) {
        lock(&self.cache.map).insert(self.key, CelfSlot::Parked(self.epoch, traj));
        self.stored = true;
        // Drop opens the gate.
    }
}

impl Drop for CelfLease<'_> {
    fn drop(&mut self) {
        if !self.stored {
            let mut map = lock(&self.cache.map);
            // Only vacate *our* InUse marker (an epoch change may
            // have cleared the map and a new lease claimed the key).
            if let Some(CelfSlot::InUse(g)) = map.get(&self.key) {
                if Arc::ptr_eq(g, &self.gate) {
                    map.remove(&self.key);
                }
            }
        }
        self.gate.open();
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ModelKey {
    tag: u8,
    probability_bits: u64,
    max_hops: u32,
}

fn model_key(model: &ObjectiveModel) -> ModelKey {
    match model {
        ObjectiveModel::Opoao(m) => ModelKey {
            tag: 0,
            probability_bits: 0,
            max_hops: m.max_hops,
        },
        ObjectiveModel::CompetitiveIc(m) => ModelKey {
            tag: 1,
            probability_bits: m.probability().to_bits(),
            max_hops: m.max_hops,
        },
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EstimatorKey {
    tag: u8,
    realizations: usize,
    epsilon_bits: u64,
    delta_bits: u64,
    min_sketches: usize,
    max_sketches: usize,
}

fn estimator_key(estimator: &Estimator, realizations: usize) -> EstimatorKey {
    match estimator {
        Estimator::MonteCarlo => EstimatorKey {
            tag: 0,
            realizations,
            epsilon_bits: 0,
            delta_bits: 0,
            min_sketches: 0,
            max_sketches: 0,
        },
        Estimator::Sketch(p) => EstimatorKey {
            tag: 1,
            realizations: 0,
            epsilon_bits: p.epsilon.to_bits(),
            delta_bits: p.delta.to_bits(),
            min_sketches: p.min_sketches,
            max_sketches: p.max_sketches,
        },
    }
}

fn rule_tag(rule: BridgeEndRule) -> u8 {
    match rule {
        BridgeEndRule::WithinCommunity => 0,
        BridgeEndRule::AnyPath => 1,
    }
}

fn candidates_key(pool: CandidatePool) -> (u8, u32) {
    match pool {
        CandidatePool::AllNonRumor => (0, 0),
        CandidatePool::BackwardRadius(r) => (1, r),
        CandidatePool::BbstUnion => (2, 0),
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SketchKey {
    rule: u8,
    max_hops: u32,
    epsilon_bits: u64,
    delta_bits: u64,
    min_sketches: usize,
    max_sketches: usize,
}

/// A CELF trajectory is keyed by everything the pick sequence depends
/// on — estimator, model, candidate pool, rule, laziness — and by
/// nothing it does not (the stopping rule and thread count never
/// change which node is picked next).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CelfKey {
    rule: u8,
    estimator: EstimatorKey,
    model: ModelKey,
    candidates: (u8, u32),
    lazy: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ScbgKey {
    rule: u8,
    depth: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct OrderingKey {
    tag: u8,
    damping_bits: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct GvsKey {
    rule: u8,
    candidates: (u8, u32),
    model: ModelKey,
    mc_runs: usize,
    budget: usize,
}

/// The solver's epoch-keyed artifact store: one internally
/// synchronized [`FamilyCache`] per artifact family, plus the
/// [`CelfCache`] lease protocol for resumable trajectories. Private
/// to the engine; inspect it through [`Solver::cache_stats`].
#[derive(Debug, Default)]
struct ArtifactCache {
    bridge: FamilyCache<u8, Arc<BridgeEnds>>,
    sketch: FamilyCache<SketchKey, Arc<SketchIndex>>,
    celf: CelfCache,
    scbg: FamilyCache<ScbgKey, ScbgSolution>,
    ordering: FamilyCache<OrderingKey, Arc<Vec<NodeId>>>,
    gvs: FamilyCache<GvsKey, GvsSelection>,
}

impl ArtifactCache {
    fn clear(&self) {
        self.bridge.clear();
        self.sketch.clear();
        self.celf.clear();
        self.scbg.clear();
        self.ordering.clear();
        self.gvs.clear();
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            bridge: self.bridge.counters.snapshot(),
            sketch: self.sketch.counters.snapshot(),
            celf: self.celf.counters.snapshot(),
            scbg: self.scbg.counters.snapshot(),
            ordering: self.ordering.counters.snapshot(),
            gvs: self.gvs.counters.snapshot(),
        }
    }
}

/// A solver session: owns the instance, a deterministic derived-seed
/// policy, and the artifact cache; answers [`SolveRequest`]s from
/// `&self`, so one session can serve many threads concurrently.
///
/// See the [module docs](self) for the caching model, the soundness
/// argument, and the concurrency invariants.
#[derive(Debug)]
pub struct Solver {
    instance: RumorBlockingInstance,
    master_seed: u64,
    /// Plain (non-atomic) by design: `&self` solves only read it, and
    /// the only writers ([`Solver::invalidate`],
    /// [`Solver::set_rumor_seeds`]) take `&mut self`, which statically
    /// excludes concurrent solves — an in-flight solve always
    /// completes against the epoch it started with.
    epoch: u64,
    cache: ArtifactCache,
    scratch: ScratchPool<SigmaScratch>,
}

impl Solver {
    /// Creates a session with the default configuration
    /// (`master_seed = 0`).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::Solver;
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// assert_eq!(solver.master_seed(), 0);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(instance: RumorBlockingInstance) -> Self {
        Solver::with_config(instance, SolverConfig::default())
    }

    /// Creates a session with an explicit configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolverConfig};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::with_config(inst, SolverConfig { master_seed: 9 });
    /// assert_eq!(solver.master_seed(), 9);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_config(instance: RumorBlockingInstance, config: SolverConfig) -> Self {
        Solver {
            instance,
            master_seed: config.master_seed,
            epoch: 0,
            cache: ArtifactCache::default(),
            scratch: ScratchPool::new(),
        }
    }

    /// The problem instance this session solves.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::Solver;
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// assert_eq!(solver.instance().rumor_seeds(), &[NodeId::new(0)]);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn instance(&self) -> &RumorBlockingInstance {
        &self.instance
    }

    /// The master seed derived randomness streams mix from.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolverConfig};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::with_config(inst, SolverConfig { master_seed: 7 });
    /// assert_eq!(solver.master_seed(), 7);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The current cache epoch (bumped by every invalidation).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::Solver;
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let mut solver = Solver::new(inst);
    /// assert_eq!(solver.epoch(), 0);
    /// solver.invalidate();
    /// assert_eq!(solver.epoch(), 1);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A point-in-time snapshot of the session's cumulative cache
    /// hit/miss counters. Charge a window of work (one solve, one
    /// batch) by snapshotting before and after and diffing with
    /// [`CacheStats::delta_since`].
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let before = solver.cache_stats();
    /// solver.solve(&SolveRequest::greedy_budget(1))?;
    /// let delta = solver.cache_stats().delta_since(&before);
    /// assert!(delta.misses() >= 2); // cold: bridge + CELF trajectory
    /// assert_eq!(delta.hits(), 0);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached artifact and bumps the epoch. Called
    /// automatically when the instance changes
    /// ([`Solver::set_rumor_seeds`]); call it manually only to
    /// reclaim memory or to force cold re-solves.
    ///
    /// Takes `&mut self` deliberately: the exclusive borrow waits out
    /// every in-flight `&self` solve, so invalidation never races a
    /// running request — in-flight solves complete against their
    /// epoch's artifacts, and anything they store afterwards carries
    /// the old epoch stamp and is lazily evicted, never served.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let mut solver = Solver::new(inst);
    /// solver.solve(&SolveRequest::greedy_budget(1))?;
    /// solver.invalidate();
    /// let before = solver.cache_stats();
    /// solver.solve(&SolveRequest::greedy_budget(1))?;
    /// // Everything rebuilt from scratch after the invalidation.
    /// assert_eq!(solver.cache_stats().delta_since(&before).hits(), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn invalidate(&mut self) {
        self.epoch += 1;
        self.cache.clear();
        // Pooled scratches cache seed pairs built from the old rumor
        // set; they must not survive an instance change.
        self.scratch.clear();
    }

    /// Replaces the rumor originators (revalidating them against the
    /// rumor community) and invalidates every cached artifact.
    ///
    /// Like [`Solver::invalidate`], the `&mut self` receiver is the
    /// epoch story: no solve can be in flight while the instance
    /// swaps, and stale artifacts are never served afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`RumorBlockingInstance::with_rumor_seeds`] errors;
    /// on error the session is unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::Solver;
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let mut solver = Solver::new(inst);
    /// solver.set_rumor_seeds(vec![NodeId::new(1)])?;
    /// assert_eq!(solver.instance().rumor_seeds(), &[NodeId::new(1)]);
    /// assert_eq!(solver.epoch(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn set_rumor_seeds(&mut self, rumor_seeds: Vec<NodeId>) -> Result<(), LcrbError> {
        self.instance = self.instance.with_rumor_seeds(rumor_seeds)?;
        self.invalidate();
        Ok(())
    }

    /// A deterministic RNG stream derived from the master seed, the
    /// stream name, and the budget — so identical requests draw
    /// identical randomness regardless of solve order or which worker
    /// thread runs them.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::Solver;
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    /// use rand::RngCore;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let a = solver.named_rng("random", 3).next_u64();
    /// let b = solver.named_rng("random", 3).next_u64();
    /// assert_eq!(a, b); // pure function of (master seed, name, budget)
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn named_rng(&self, name: &str, budget: usize) -> SmallRng {
        let mut s = mix(self.master_seed, 0x6c63_7262); // "lcrb"
        for &b in name.as_bytes() {
            s = mix(s, u64::from(b));
        }
        SmallRng::seed_from_u64(mix(s, budget as u64))
    }

    /// Runs one [`Selector`] (a [`SolveRequest`] or a [`Budgeted`]
    /// legacy adapter) against this session.
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from the strategy.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Budgeted, Solver};
    /// use lcrb::{RandomSelector, RumorBlockingInstance};
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let adapter = Budgeted { selector: &RandomSelector, budget: 2 };
    /// let report = solver.run(&adapter)?;
    /// assert_eq!(report.algorithm, "random");
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(&self, selector: &dyn Selector) -> Result<SolveReport, LcrbError> {
        selector.select(self)
    }

    /// Answers one [`SolveRequest`], reusing every cached artifact
    /// the request's key matches. Takes `&self`: solves may run
    /// concurrently from many threads against one session.
    ///
    /// # Errors
    ///
    /// - [`LcrbError::InvalidAlpha`] for an out-of-range
    ///   [`StopRule::Alpha`];
    /// - [`LcrbError::UnsupportedRequest`] for combinations no
    ///   algorithm implements (α stop on a baseline, PageRank damping
    ///   outside `[0, 1)`);
    /// - [`LcrbError::Interrupted`] when the request's
    ///   [`CancelToken`] is observed at a checkpoint, or when a stop
    ///   lands where no usable partial result exists (work-unit and
    ///   deadline stops otherwise degrade the report instead — see
    ///   [`Completion`]);
    /// - plus whatever the underlying algorithm returns
    ///   ([`LcrbError::NoRealizations`],
    ///   [`LcrbError::InvalidSketchParams`],
    ///   [`LcrbError::SketchModelUnsupported`], ...).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let report = solver.solve(&SolveRequest::greedy_budget(1))?;
    /// assert_eq!(report.protectors.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve(&self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        self.solve_with_batch_cancel(request, None)
    }

    /// One solve under an optional batch-wide cancel token (the
    /// request's own budget and token always apply on top).
    fn solve_with_batch_cancel(
        &self,
        request: &SolveRequest,
        batch_cancel: Option<CancelToken>,
    ) -> Result<SolveReport, LcrbError> {
        let mut meter = WorkMeter::new(request.budget, request.cancel.clone(), batch_cancel);
        // Entry checkpoint: an already-cancelled or already-expired
        // request fails fast before touching any shared state.
        meter
            .poll()
            .map_err(|reason| LcrbError::Interrupted { reason })?;
        match request.algorithm {
            Algorithm::Greedy => self.solve_greedy(request, &mut meter),
            Algorithm::Scbg => self.solve_scbg(request, &mut meter),
            Algorithm::Gvs => self.solve_gvs(request, &mut meter),
            // Heuristics run no simulation kernels; the entry poll
            // above is their only checkpoint and they always complete
            // exactly.
            Algorithm::MaxDegree
            | Algorithm::Proximity
            | Algorithm::Random
            | Algorithm::PageRank
            | Algorithm::NoBlocking => self.solve_heuristic(request),
        }
    }

    /// Answers a batch of requests, fanning out across worker threads
    /// (one per available core, capped at the batch size). Results
    /// come back in request order; each element is that request's own
    /// `Result`, so one failing request never poisons the batch.
    ///
    /// Outputs are bitwise identical to solving the same requests
    /// serially in any order: randomness streams derive from request
    /// content, and shared artifacts (CELF trajectories above all)
    /// are built once and resumed under a single-builder lease.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Algorithm, Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let batch = [
    ///     SolveRequest::greedy_budget(1),
    ///     SolveRequest::heuristic(Algorithm::MaxDegree, 1),
    /// ];
    /// let reports = solver.solve_many(&batch);
    /// assert_eq!(reports.len(), 2);
    /// assert_eq!(reports[0].as_ref().unwrap().algorithm, "greedy");
    /// assert_eq!(reports[1].as_ref().unwrap().algorithm, "max-degree");
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn solve_many(&self, requests: &[SolveRequest]) -> Vec<Result<SolveReport, LcrbError>> {
        self.solve_many_threaded(requests, 0)
    }

    /// [`Solver::solve_many`] with an explicit worker count
    /// (`0` means one worker per available core). `threads == 1`
    /// degenerates to a serial in-order loop; any other count
    /// produces bitwise-identical reports in the same order.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let batch = [SolveRequest::greedy_budget(1), SolveRequest::greedy_budget(2)];
    /// let serial = solver.solve_many_threaded(&batch, 1);
    /// let parallel = solver.solve_many_threaded(&batch, 2);
    /// let picks = |r: &Result<lcrb::SolveReport, lcrb::LcrbError>| {
    ///     r.as_ref().unwrap().protectors.clone()
    /// };
    /// assert_eq!(picks(&serial[1]), picks(&parallel[1]));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn solve_many_threaded(
        &self,
        requests: &[SolveRequest],
        threads: usize,
    ) -> Vec<Result<SolveReport, LcrbError>> {
        self.solve_many_inner(requests, threads, None)
    }

    /// [`Solver::solve_many_threaded`] with a batch-wide kill switch:
    /// cancelling `cancel` aborts every in-flight request at its next
    /// checkpoint and fails every still-queued request fast, each as
    /// its own [`LcrbError::Interrupted`] slot — failure isolation is
    /// preserved, the batch itself never panics or hangs.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Solver, SolveRequest};
    /// use lcrb::{CancelToken, RumorBlockingInstance};
    /// use lcrb_community::Partition;
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let batch = [SolveRequest::greedy_budget(1), SolveRequest::scbg()];
    /// let token = CancelToken::new();
    /// let reports = solver.solve_many_with_cancel(&batch, 2, &token);
    /// assert!(reports.iter().all(Result::is_ok));
    /// // A cancelled batch fails fast, slot by slot.
    /// token.cancel();
    /// let reports = solver.solve_many_with_cancel(&batch, 2, &token);
    /// assert!(reports.iter().all(Result::is_err));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn solve_many_with_cancel(
        &self,
        requests: &[SolveRequest],
        threads: usize,
        cancel: &CancelToken,
    ) -> Vec<Result<SolveReport, LcrbError>> {
        self.solve_many_inner(requests, threads, Some(cancel))
    }

    fn solve_many_inner(
        &self,
        requests: &[SolveRequest],
        threads: usize,
        batch_cancel: Option<&CancelToken>,
    ) -> Vec<Result<SolveReport, LcrbError>> {
        let threads = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
        .min(requests.len())
        .max(1);
        if threads == 1 {
            return requests
                .iter()
                .map(|r| self.solve_with_batch_cancel(r, batch_cancel.cloned()))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed = lcrb_sync::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let next = &next;
                handles.push(scope.spawn(move || {
                    // Work-queue scheduling: workers pull the next
                    // unclaimed request index. Which worker runs a
                    // request never affects its output — streams and
                    // artifacts are keyed by request content.
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                        let Some(request) = requests.get(i) else {
                            break;
                        };
                        out.push((
                            i,
                            self.solve_with_batch_cancel(request, batch_cancel.cloned()),
                        ));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                // xtask-allow: panic -- re-raising a worker panic on the coordinating thread is the intended behavior
                .flat_map(|h| h.join().expect("solve worker panicked"))
                .collect::<Vec<_>>()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, report)| report).collect()
    }

    /// Runs several selectors and Monte-Carlo evaluates their
    /// selections under `model`, collecting the hop-series report
    /// the paper's figures are built from
    /// ([`crate::evaluate::HopSeriesReport`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from a selector or the
    /// evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrb::engine::{Selector, Solver, SolveRequest};
    /// use lcrb::RumorBlockingInstance;
    /// use lcrb_community::Partition;
    /// use lcrb_diffusion::{MonteCarloConfig, OpoaoModel};
    /// use lcrb_graph::{DiGraph, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let p = Partition::from_labels(vec![0, 0, 1, 1]);
    /// let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
    /// let solver = Solver::new(inst);
    /// let greedy = SolveRequest::greedy_budget(1);
    /// let selectors: [&dyn Selector; 1] = [&greedy];
    /// let report = solver.compare(
    ///     &OpoaoModel::new(8),
    ///     &selectors,
    ///     &MonteCarloConfig { runs: 2, ..Default::default() },
    /// )?;
    /// assert_eq!(report.runs.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compare<M>(
        &self,
        model: &M,
        selectors: &[&dyn Selector],
        mc: &MonteCarloConfig,
    ) -> Result<HopSeriesReport, LcrbError>
    where
        M: TwoCascadeModel + Sync,
    {
        let mut sets = Vec::with_capacity(selectors.len());
        for s in selectors {
            let report = s.select(self)?;
            sets.push((report.algorithm, report.protectors));
        }
        evaluate_protector_sets(&self.instance, model, &sets, mc)
    }

    fn solve_greedy(
        &self,
        request: &SolveRequest,
        meter: &mut WorkMeter,
    ) -> Result<SolveReport, LcrbError> {
        let config = request.greedy_config(self.master_seed);
        let (target_alpha, budget) = match request.stop {
            StopRule::Alpha(a) => {
                if a.is_nan() || a <= 0.0 || a > 1.0 {
                    return Err(LcrbError::InvalidAlpha { alpha: a });
                }
                (Some(a), None)
            }
            StopRule::Budget(k) => (None, Some(k)),
        };
        if let Estimator::Sketch(params) = config.estimator {
            params.validate()?;
        }
        let mut clock = StageClock::start();
        let epoch = self.epoch;

        let bridge = self
            .cache
            .bridge
            .get_or_build(rule_tag(config.rule), epoch, || {
                Arc::new(find_bridge_ends(&self.instance, config.rule))
            });
        clock.lap("bridge");

        let model = normalized_model(&config);
        // `(generated, scheduled)` when a sketch cap truncated the
        // sample below its accuracy schedule.
        let mut sketch_truncation: Option<(u64, u64)> = None;
        let backend = match config.estimator {
            Estimator::MonteCarlo => SigmaBackend::Mc(ProtectionObjective::with_model(
                &self.instance,
                bridge.nodes.clone(),
                model,
                config.realizations,
                self.master_seed,
            )?),
            Estimator::Sketch(params) => {
                if !matches!(model, ObjectiveModel::Opoao(_)) {
                    return Err(LcrbError::SketchModelUnsupported);
                }
                let index = if meter.limits_sketches() {
                    // A sketch-capped request may truncate the sample,
                    // and a truncated index must never be published as
                    // the exact artifact — build privately, bypassing
                    // the cache on both the read and the write side.
                    Arc::new(SketchIndex::build_metered(
                        &self.instance,
                        bridge.nodes.clone(),
                        params,
                        self.master_seed,
                        config.max_hops,
                        meter,
                    )?)
                } else {
                    let key = SketchKey {
                        rule: rule_tag(config.rule),
                        max_hops: config.max_hops,
                        epsilon_bits: params.epsilon.to_bits(),
                        delta_bits: params.delta.to_bits(),
                        min_sketches: params.min_sketches,
                        max_sketches: params.max_sketches,
                    };
                    // Cancel/deadline stops inside the builder surface
                    // as errors; the BuildGuard then vacates the
                    // Building slot and frees same-key waiters —
                    // cancellation is a recovery window exactly like a
                    // failed build.
                    self.cache.sketch.get_or_try_build(key, epoch, || {
                        SketchIndex::build_metered(
                            &self.instance,
                            bridge.nodes.clone(),
                            params,
                            self.master_seed,
                            config.max_hops,
                            meter,
                        )
                        .map(Arc::new)
                    })?
                };
                if index.is_truncated() {
                    sketch_truncation = Some((index.sketch_count(), index.sketch_target()));
                }
                SigmaBackend::Sketch(SketchObjective::from_index(&self.instance, index))
            }
        };
        clock.lap("estimator");

        let target = match target_alpha {
            Some(a) => a * bridge.len() as f64,
            None => f64::INFINITY,
        };
        let cap = match budget {
            Some(k) => k.min(config.max_protectors),
            None => config.max_protectors,
        };

        let celf_key = CelfKey {
            rule: rule_tag(config.rule),
            estimator: estimator_key(&config.estimator, config.realizations),
            model: model_key(&model),
            candidates: candidates_key(config.candidates),
            lazy: config.lazy,
        };
        // A sketch-capped request ran on a privately built (possibly
        // truncated) index, so its trajectory is not comparable to the
        // shared one: it must neither resume nor park it. Bypass the
        // CELF cache on both ends for those requests.
        let (cached, lease) = if meter.limits_sketches() {
            (None, None)
        } else {
            // The lease claims this key exclusively: concurrent
            // same-key solves wait here and then resume the
            // trajectory we store.
            let (cached, lease) = self.cache.celf.take(celf_key, epoch);
            (cached, Some(lease))
        };
        let mut traj = cached.unwrap_or_else(|| {
            GreedyTrajectory::new(candidate_pool_for(
                &self.instance,
                &bridge,
                config.candidates,
            ))
        });
        let evals_before = traj.evaluations();
        // Injectable failure while the lease holds the trajectory: the
        // lease drop must vacate the slot so the next same-key solve
        // cold-builds instead of resuming a half-advanced prefix.
        lcrb_sync::fault::point("celf.advance");
        // On error (σ̂ failure or an observed cancellation) the lease
        // drops without storing: the slot is vacated and the next
        // same-key solve cold-builds, never inheriting a partially
        // extended trajectory. Budget/deadline stops return
        // `Ok(Some(reason))` with the trajectory parked at a pick
        // boundary — prefix-consistent, so parking it is sound.
        let advance_stop = advance_trajectory(
            &backend,
            &mut traj,
            target,
            cap,
            config.lazy,
            config.threads,
            &self.scratch,
            meter,
        )?;
        clock.lap("select");

        let evaluations = traj.evaluations() - evals_before;
        let selection =
            selection_from_trajectory(&traj, target, cap, evaluations, (*bridge).clone());
        let candidate_count = traj.candidate_count();
        if let Some(lease) = lease {
            lease.store(traj);
        }

        let completion = if let Some((generated, scheduled)) = sketch_truncation {
            // Sketch truncation outranks any later advance stop: the
            // whole σ̂ surface is coarser than requested, not just the
            // pick sequence shorter.
            Completion::Degraded {
                checkpoints_done: generated,
                checkpoints_total: scheduled,
                reason: StopReason::SketchBudget,
            }
        } else if let Some(reason) = advance_stop {
            Completion::Degraded {
                checkpoints_done: selection.protectors.len() as u64,
                checkpoints_total: if cap == usize::MAX {
                    candidate_count as u64
                } else {
                    cap as u64
                },
                reason,
            }
        } else {
            Completion::Exact
        };

        Ok(SolveReport {
            algorithm: Algorithm::Greedy.name().to_owned(),
            protectors: selection.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache_snapshot: self.cache.stats(),
            completion,
            detail: SolveDetail::Greedy(selection),
        })
    }

    fn solve_scbg(
        &self,
        request: &SolveRequest,
        meter: &mut WorkMeter,
    ) -> Result<SolveReport, LcrbError> {
        let mut clock = StageClock::start();
        let epoch = self.epoch;
        let scbg_config = ScbgConfig {
            rule: request.rule,
            max_bbst_depth: request.max_bbst_depth,
        };
        // SCBG runs no simulations or sketches, so work-unit caps
        // never stop it; only cancel- or deadline-carrying requests
        // need checkpoints, and those bypass the cache because a
        // deadline-truncated partial cover must never be published as
        // the exact artifact.
        let (solution, stop) = if meter.polls_needed() {
            scbg_metered(&self.instance, &scbg_config, meter)
                .map_err(|reason| LcrbError::Interrupted { reason })?
        } else {
            let key = ScbgKey {
                rule: rule_tag(request.rule),
                depth: request.max_bbst_depth.map_or(u64::MAX, u64::from),
            };
            let solution = self
                .cache
                .scbg
                .get_or_build(key, epoch, || scbg(&self.instance, &scbg_config));
            (solution, None)
        };
        clock.lap("select");
        let completion = match stop {
            Some(reason) => Completion::Degraded {
                checkpoints_done: solution.covered as u64,
                checkpoints_total: solution.bridge_ends.len() as u64,
                reason,
            },
            None => Completion::Exact,
        };
        Ok(SolveReport {
            algorithm: Algorithm::Scbg.name().to_owned(),
            protectors: solution.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache_snapshot: self.cache.stats(),
            completion,
            detail: SolveDetail::Scbg(solution),
        })
    }

    fn solve_gvs(
        &self,
        request: &SolveRequest,
        meter: &mut WorkMeter,
    ) -> Result<SolveReport, LcrbError> {
        let StopRule::Budget(budget) = request.stop else {
            return Err(LcrbError::UnsupportedRequest {
                reason:
                    "the GVS baseline selects by budget; alpha targets apply only to the greedy",
            });
        };
        let mut clock = StageClock::start();
        let config = request.greedy_config(self.master_seed);
        let model = normalized_model(&config);
        let epoch = self.epoch;
        let gvs_config = GvsConfig {
            mc_runs: request.mc_runs,
            seed: self.master_seed,
            candidates: request.candidates,
            rule: request.rule,
        };
        // A sim-capped or cancellable/deadlined run may stop short of
        // the full selection; a partial GVS prefix must never be
        // published as the exact budget-`k` artifact, so those
        // requests bypass the cache entirely.
        let (selection, stop) = if meter.polls_needed() || meter.limits_sims() {
            match model {
                ObjectiveModel::Opoao(m) => {
                    greedy_viral_stopper_metered(&self.instance, &m, budget, &gvs_config, meter)?
                }
                ObjectiveModel::CompetitiveIc(m) => {
                    greedy_viral_stopper_metered(&self.instance, &m, budget, &gvs_config, meter)?
                }
            }
        } else {
            let key = GvsKey {
                rule: rule_tag(request.rule),
                candidates: candidates_key(request.candidates),
                model: model_key(&model),
                mc_runs: request.mc_runs,
                budget,
            };
            let selection = self
                .cache
                .gvs
                .get_or_try_build(key, epoch, || match model {
                    ObjectiveModel::Opoao(m) => {
                        greedy_viral_stopper(&self.instance, &m, budget, &gvs_config)
                    }
                    ObjectiveModel::CompetitiveIc(m) => {
                        greedy_viral_stopper(&self.instance, &m, budget, &gvs_config)
                    }
                })?;
            (selection, None)
        };
        clock.lap("select");
        let completion = match stop {
            Some(reason) => Completion::Degraded {
                checkpoints_done: selection.protectors.len() as u64,
                checkpoints_total: budget as u64,
                reason,
            },
            None => Completion::Exact,
        };
        Ok(SolveReport {
            algorithm: Algorithm::Gvs.name().to_owned(),
            protectors: selection.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache_snapshot: self.cache.stats(),
            completion,
            detail: SolveDetail::Gvs(selection),
        })
    }

    fn solve_heuristic(&self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        let StopRule::Budget(budget) = request.stop else {
            return Err(LcrbError::UnsupportedRequest {
                reason:
                    "heuristic baselines select by budget; alpha targets apply only to the greedy",
            });
        };
        let mut clock = StageClock::start();
        let protectors = match request.algorithm {
            Algorithm::MaxDegree => {
                let ordering = self.cached_ordering(
                    OrderingKey {
                        tag: 0,
                        damping_bits: 0,
                    },
                    |inst| MaxDegreeSelector.ordering(inst),
                );
                clock.lap("ordering");
                let mut nodes = ordering.to_vec();
                nodes.truncate(budget);
                nodes
            }
            Algorithm::PageRank => {
                let damping = request.pagerank_damping;
                if !(damping.is_finite() && (0.0..1.0).contains(&damping)) {
                    return Err(LcrbError::UnsupportedRequest {
                        reason: "pagerank damping must be in [0, 1)",
                    });
                }
                let key = OrderingKey {
                    tag: 1,
                    damping_bits: damping.to_bits(),
                };
                let ordering =
                    self.cached_ordering(key, |inst| PageRankSelector::new(damping).ordering(inst));
                clock.lap("ordering");
                let mut nodes = ordering.to_vec();
                nodes.truncate(budget);
                nodes
            }
            Algorithm::Proximity => {
                let pool = self.cached_ordering(
                    OrderingKey {
                        tag: 2,
                        damping_bits: 0,
                    },
                    |inst| ProximitySelector.pool(inst),
                );
                clock.lap("ordering");
                let mut rng = self.named_rng(Algorithm::Proximity.name(), budget);
                let mut nodes = pool.to_vec();
                nodes.shuffle(&mut rng);
                nodes.truncate(budget);
                nodes
            }
            Algorithm::Random => {
                let mut rng = self.named_rng(Algorithm::Random.name(), budget);
                let mut nodes: Vec<NodeId> = self
                    .instance
                    .graph()
                    .nodes()
                    .filter(|&v| !self.instance.is_rumor_seed(v))
                    .collect();
                nodes.shuffle(&mut rng);
                nodes.truncate(budget);
                nodes
            }
            Algorithm::NoBlocking => Vec::new(),
            Algorithm::Greedy | Algorithm::Scbg | Algorithm::Gvs => {
                unreachable!("non-heuristic algorithms are dispatched by solve()")
            }
        };
        clock.lap("select");
        Ok(SolveReport {
            algorithm: request.algorithm.name().to_owned(),
            protectors,
            epoch: self.epoch,
            stages: clock.stages,
            cache_snapshot: self.cache.stats(),
            completion: Completion::Exact,
            detail: SolveDetail::Heuristic,
        })
    }

    fn cached_ordering(
        &self,
        key: OrderingKey,
        build: impl FnOnce(&RumorBlockingInstance) -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        self.cache
            .ordering
            .get_or_build(key, self.epoch, || Arc::new(build(&self.instance)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_lcrb_p, greedy_with_budget, NoBlockingSelector, RandomSelector};
    use lcrb_community::Partition;
    use lcrb_diffusion::OpoaoModel;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_instance() -> RumorBlockingInstance {
        let g = generators::path_graph(4);
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    fn community_instance(seed: u64) -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[20, 20, 20], 0.3, 0.03, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap()
    }

    fn sketch_request(budget: usize) -> SolveRequest {
        SolveRequest::greedy_budget(budget)
            .with_estimator(Estimator::Sketch(crate::SketchParams::default()))
    }

    /// The cache-counter increments charged by `work`.
    fn charged<R>(solver: &Solver, work: impl FnOnce() -> R) -> (R, CacheStats) {
        let before = solver.cache_stats();
        let out = work();
        (out, solver.cache_stats().delta_since(&before))
    }

    #[test]
    fn solver_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Solver>();
        assert_send_sync::<SolveRequest>();
        assert_send_sync::<SolveReport>();
    }

    #[test]
    fn greedy_solve_matches_free_function_cold() {
        let inst = community_instance(5);
        let config = GreedyConfig {
            realizations: 16,
            max_hops: 20,
            ..GreedyConfig::default()
        };
        let free = greedy_with_budget(&inst, 2, &config).unwrap();
        let solver = Solver::new(inst);
        let (report, delta) = charged(&solver, || {
            solver
                .solve(&SolveRequest {
                    realizations: 16,
                    max_hops: 20,
                    ..SolveRequest::greedy_budget(2)
                })
                .unwrap()
        });
        assert_eq!(report.protectors, free.protectors);
        let SolveDetail::Greedy(sel) = &report.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(sel.sigma_history, free.sigma_history);
        assert_eq!(sel.achieved, free.achieved);
        assert_eq!(sel.evaluations, free.evaluations);
        // A cold solve misses everything it looks up.
        assert_eq!(delta.hits(), 0);
        assert!(delta.misses() >= 2); // bridge + celf
        assert_eq!(report.cache_snapshot, solver.cache_stats());
    }

    #[test]
    fn greedy_alpha_solve_matches_free_function() {
        let inst = community_instance(7);
        let config = GreedyConfig {
            realizations: 12,
            alpha: 0.6,
            max_hops: 15,
            ..GreedyConfig::default()
        };
        let free = greedy_lcrb_p(&inst, &config).unwrap();
        let solver = Solver::new(inst);
        let report = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        assert_eq!(report.protectors, free.protectors);
        let SolveDetail::Greedy(sel) = &report.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(sel.target, free.target);
        assert_eq!(sel.target_met, free.target_met);
        assert_eq!(sel.achieved, free.achieved);
    }

    #[test]
    fn warm_resolve_is_bitwise_identical_and_hits_cache() {
        let inst = community_instance(9);
        let solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 12,
            max_hops: 15,
            ..SolveRequest::greedy_budget(2)
        };
        let cold = solver.solve(&req).unwrap();
        let (warm, delta) = charged(&solver, || solver.solve(&req).unwrap());
        assert_eq!(warm.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&cold.detail, &warm.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
        assert_eq!(a.achieved, b.achieved);
        // The warm solve re-evaluates nothing and hits every artifact.
        assert_eq!(b.evaluations, 0);
        assert_eq!(delta.misses(), 0);
        assert!(delta.hits() >= 2);
    }

    #[test]
    fn budget_change_resumes_the_cached_trajectory() {
        let inst = community_instance(11);
        let solver = Solver::new(inst.clone());
        let small = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        let (grown, delta) = charged(&solver, || {
            solver
                .solve(&SolveRequest {
                    realizations: 12,
                    max_hops: 15,
                    ..SolveRequest::greedy_budget(3)
                })
                .unwrap()
        });
        // Prefix consistency: the grown solve extends the small one.
        assert_eq!(
            &grown.protectors[..small.protectors.len()],
            &small.protectors[..]
        );
        assert!(delta.hits() > 0);
        // And matches a cold solver asked for the large budget directly.
        let fresh = Solver::new(inst);
        let cold = fresh
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(3)
            })
            .unwrap();
        assert_eq!(grown.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&grown.detail, &cold.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
        assert_eq!(a.achieved, b.achieved);
        // Shrinking back reads a prefix without any new evaluations.
        let shrunk = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        assert_eq!(shrunk.protectors, small.protectors);
        let SolveDetail::Greedy(s) = &shrunk.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(s.evaluations, 0);
    }

    #[test]
    fn sketch_index_is_shared_across_budgets() {
        let inst = community_instance(13);
        let solver = Solver::new(inst.clone());
        let (cold, cold_delta) = charged(&solver, || solver.solve(&sketch_request(1)).unwrap());
        assert_eq!(cold_delta.sketch.misses, 1);
        let (warm, warm_delta) = charged(&solver, || solver.solve(&sketch_request(3)).unwrap());
        assert_eq!(warm_delta.sketch.hits, 1);
        assert_eq!(warm_delta.sketch.misses, 0);
        assert_eq!(warm_delta.bridge.hits, 1);
        let _ = cold;
        // Bitwise identical to a cold budget-3 sketch solve.
        let fresh = Solver::new(inst);
        let direct = fresh.solve(&sketch_request(3)).unwrap();
        assert_eq!(warm.protectors, direct.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&warm.detail, &direct.detail)
        else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
    }

    #[test]
    fn alpha_after_budget_reuses_the_trajectory() {
        let inst = community_instance(15);
        let solver = Solver::new(inst.clone());
        solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(4)
            })
            .unwrap();
        let warm = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        let fresh = Solver::new(inst);
        let cold = fresh
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        assert_eq!(warm.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&warm.detail, &cold.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.target, b.target);
        assert_eq!(a.target_met, b.target_met);
    }

    #[test]
    fn invalidate_forces_cold_resolve() {
        let inst = community_instance(17);
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        let cold = solver.solve(&req).unwrap();
        assert_eq!(solver.epoch(), 0);
        solver.invalidate();
        assert_eq!(solver.epoch(), 1);
        let before = solver.cache_stats();
        let after = solver.solve(&req).unwrap();
        let delta = solver.cache_stats().delta_since(&before);
        assert_eq!(after.epoch, 1);
        assert_eq!(delta.hits(), 0);
        assert_eq!(after.protectors, cold.protectors);
    }

    #[test]
    fn set_rumor_seeds_revalidates_and_invalidates() {
        let inst = community_instance(19);
        let members = inst.rumor_community_members();
        let fresh_seed = members
            .iter()
            .copied()
            .find(|&v| !inst.is_rumor_seed(v))
            .unwrap();
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        solver.solve(&req).unwrap();
        let epoch_before = solver.epoch();
        solver.set_rumor_seeds(vec![fresh_seed]).unwrap();
        assert_eq!(solver.epoch(), epoch_before + 1);
        assert_eq!(solver.instance().rumor_seeds(), &[fresh_seed]);
        let before = solver.cache_stats();
        solver.solve(&req).unwrap();
        assert_eq!(solver.cache_stats().delta_since(&before).hits(), 0);
        // An invalid update leaves the session untouched.
        let err = solver.set_rumor_seeds(vec![]).unwrap_err();
        assert!(matches!(err, LcrbError::NoRumorSeeds));
        assert_eq!(solver.instance().rumor_seeds(), &[fresh_seed]);
    }

    #[test]
    fn scbg_solve_matches_free_function_and_caches() {
        let inst = community_instance(21);
        let free = scbg(&inst, &ScbgConfig::default());
        let solver = Solver::new(inst);
        let cold = solver.solve(&SolveRequest::scbg()).unwrap();
        assert_eq!(cold.protectors, free.protectors);
        let SolveDetail::Scbg(sol) = &cold.detail else {
            panic!("expected scbg detail");
        };
        assert_eq!(sol.covered, free.covered);
        let (warm, delta) = charged(&solver, || solver.solve(&SolveRequest::scbg()).unwrap());
        assert_eq!(delta.scbg.hits, 1);
        assert_eq!(warm.protectors, free.protectors);
    }

    #[test]
    fn gvs_solve_matches_free_function_and_caches() {
        let inst = community_instance(23);
        let config = GvsConfig {
            mc_runs: 4,
            seed: 0,
            ..GvsConfig::default()
        };
        let free = greedy_viral_stopper(&inst, &OpoaoModel::new(10), 2, &config).unwrap();
        let solver = Solver::new(inst);
        let req = SolveRequest {
            mc_runs: 4,
            max_hops: 10,
            ..SolveRequest::gvs(2)
        };
        let cold = solver.solve(&req).unwrap();
        assert_eq!(cold.protectors, free.protectors);
        let (warm, delta) = charged(&solver, || solver.solve(&req).unwrap());
        assert_eq!(delta.gvs.hits, 1);
        assert_eq!(warm.protectors, free.protectors);
        // α stops are not a GVS concept.
        let err = solver
            .solve(&SolveRequest {
                stop: StopRule::Alpha(0.5),
                ..req
            })
            .unwrap_err();
        assert!(matches!(err, LcrbError::UnsupportedRequest { .. }));
    }

    #[test]
    fn heuristics_match_legacy_selectors_and_cache_orderings() {
        let inst = community_instance(25);
        let solver = Solver::new(inst.clone());
        // Deterministic orderings agree with the legacy selectors.
        let md = solver
            .solve(&SolveRequest::heuristic(Algorithm::MaxDegree, 3))
            .unwrap();
        let mut ordering = MaxDegreeSelector.ordering(&inst);
        ordering.truncate(3);
        assert_eq!(md.protectors, ordering);
        let (_md_warm, delta) = charged(&solver, || {
            solver
                .solve(&SolveRequest::heuristic(Algorithm::MaxDegree, 5))
                .unwrap()
        });
        assert_eq!(delta.ordering.hits, 1);
        let pr = solver
            .solve(&SolveRequest::heuristic(Algorithm::PageRank, 3))
            .unwrap();
        let mut pr_ordering = PageRankSelector::default().ordering(&inst);
        pr_ordering.truncate(3);
        assert_eq!(pr.protectors, pr_ordering);
        // Proximity picks come from the legacy pool.
        let pool = ProximitySelector.pool(&inst);
        let prox = solver
            .solve(&SolveRequest::heuristic(Algorithm::Proximity, 2))
            .unwrap();
        assert!(prox.protectors.iter().all(|v| pool.contains(v)));
        // Random picks are valid non-rumor nodes of the right count.
        let rnd = solver
            .solve(&SolveRequest::heuristic(Algorithm::Random, 4))
            .unwrap();
        assert_eq!(rnd.protectors.len(), 4);
        assert!(rnd.protectors.iter().all(|&v| !inst.is_rumor_seed(v)));
        let none = solver
            .solve(&SolveRequest::heuristic(Algorithm::NoBlocking, 4))
            .unwrap();
        assert!(none.protectors.is_empty());
    }

    #[test]
    fn heuristic_solves_are_deterministic_per_request() {
        let inst = community_instance(27);
        let a = Solver::new(inst.clone());
        let b = Solver::new(inst);
        for algo in [Algorithm::Proximity, Algorithm::Random] {
            let req = SolveRequest::heuristic(algo, 3);
            assert_eq!(
                a.solve(&req).unwrap().protectors,
                b.solve(&req).unwrap().protectors
            );
            // Same request twice on one solver: same picks.
            assert_eq!(
                a.solve(&req).unwrap().protectors,
                b.solve(&req).unwrap().protectors
            );
        }
    }

    #[test]
    fn unsupported_requests_are_typed_errors() {
        let inst = chain_instance();
        let solver = Solver::new(inst);
        for req in [
            SolveRequest {
                stop: StopRule::Alpha(0.5),
                ..SolveRequest::heuristic(Algorithm::MaxDegree, 1)
            },
            SolveRequest {
                pagerank_damping: 1.5,
                ..SolveRequest::heuristic(Algorithm::PageRank, 1)
            },
            SolveRequest {
                pagerank_damping: f64::NAN,
                ..SolveRequest::heuristic(Algorithm::PageRank, 1)
            },
        ] {
            assert!(matches!(
                solver.solve(&req).unwrap_err(),
                LcrbError::UnsupportedRequest { .. }
            ));
        }
        assert!(matches!(
            solver.solve(&SolveRequest::greedy_alpha(1.5)).unwrap_err(),
            LcrbError::InvalidAlpha { .. }
        ));
        let bad_sketch =
            SolveRequest::greedy_budget(1).with_estimator(Estimator::Sketch(crate::SketchParams {
                epsilon: 0.0,
                ..crate::SketchParams::default()
            }));
        assert!(matches!(
            solver.solve(&bad_sketch).unwrap_err(),
            LcrbError::InvalidSketchParams { .. }
        ));
    }

    #[test]
    fn failed_solve_does_not_poison_the_cache() {
        let inst = community_instance(29);
        let solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(2)
        };
        let cold = solver.solve(&req).unwrap();
        // A failing request (bad sketch params) between two good ones.
        let bad =
            SolveRequest::greedy_budget(2).with_estimator(Estimator::Sketch(crate::SketchParams {
                delta: 1.0,
                ..crate::SketchParams::default()
            }));
        assert!(solver.solve(&bad).is_err());
        let (warm, delta) = charged(&solver, || solver.solve(&req).unwrap());
        assert_eq!(warm.protectors, cold.protectors);
        assert_eq!(delta.misses(), 0);
    }

    #[test]
    fn failed_sketch_build_frees_same_key_waiters() {
        // InvalidSketchParams that pass `validate()` but fail at build
        // time don't exist today, so exercise the error path at the
        // family-cache level directly: a failed build vacates the slot
        // and the next lookup rebuilds.
        let cache: FamilyCache<u8, u32> = FamilyCache::default();
        let err: Result<u32, &str> = cache.get_or_try_build(1, 0, || Err("boom"));
        assert_eq!(err, Err("boom"));
        // The slot was vacated: the next build runs (another miss).
        let ok: Result<u32, &str> = cache.get_or_try_build(1, 0, || Ok(7));
        assert_eq!(ok, Ok(7));
        let stats = cache.counters.snapshot();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
        // And the stored value now hits.
        let again: Result<u32, &str> = cache.get_or_try_build(1, 0, || Err("unused"));
        assert_eq!(again, Ok(7));
        assert_eq!(cache.counters.snapshot().hits, 1);
    }

    #[test]
    fn family_cache_builds_once_under_contention() {
        let cache: FamilyCache<u8, u64> = FamilyCache::default();
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let builds = &builds;
                scope.spawn(move || {
                    let v = cache.get_or_build(3, 0, || {
                        builds.fetch_add(1, AtomicOrdering::Relaxed);
                        // Widen the race window so waiters actually park.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(v, 42);
                });
            }
        });
        assert_eq!(builds.load(AtomicOrdering::Relaxed), 1);
        let stats = cache.counters.snapshot();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn solve_many_matches_serial_solves() {
        let inst = community_instance(37);
        let batch = [
            SolveRequest {
                realizations: 8,
                max_hops: 10,
                ..SolveRequest::greedy_budget(2)
            },
            SolveRequest::scbg(),
            SolveRequest::heuristic(Algorithm::MaxDegree, 2),
            SolveRequest {
                realizations: 8,
                max_hops: 10,
                ..SolveRequest::greedy_budget(3)
            },
        ];
        let serial_solver = Solver::new(inst.clone());
        let serial: Vec<_> = batch.iter().map(|r| serial_solver.solve(r)).collect();
        let solver = Solver::new(inst);
        let parallel = solver.solve_many_threaded(&batch, 3);
        assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.algorithm, p.algorithm);
            assert_eq!(s.protectors, p.protectors);
        }
    }

    #[test]
    fn solve_many_preserves_order_and_isolates_errors() {
        let inst = community_instance(39);
        let solver = Solver::new(inst);
        let batch = [
            SolveRequest::heuristic(Algorithm::MaxDegree, 1),
            SolveRequest::greedy_alpha(1.5), // invalid α
            SolveRequest::heuristic(Algorithm::NoBlocking, 1),
        ];
        let reports = solver.solve_many_threaded(&batch, 2);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].as_ref().unwrap().algorithm, "max-degree");
        assert!(matches!(
            reports[1].as_ref().unwrap_err(),
            LcrbError::InvalidAlpha { .. }
        ));
        assert_eq!(reports[2].as_ref().unwrap().algorithm, "no-blocking");
    }

    #[test]
    fn concurrent_same_key_solves_build_the_trajectory_once() {
        let inst = community_instance(41);
        let solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(2)
        };
        let batch = vec![req.clone(); 6];
        let (reports, delta) = charged(&solver, || solver.solve_many_threaded(&batch, 6));
        let first = reports[0].as_ref().unwrap();
        for r in &reports {
            let r = r.as_ref().unwrap();
            assert_eq!(r.protectors, first.protectors);
        }
        // Exactly one cold build: the other five solves waited on the
        // lease and resumed the parked trajectory.
        assert_eq!(delta.celf.misses, 1);
        assert_eq!(delta.celf.hits, 5);
        assert_eq!(delta.bridge.misses, 1);
    }

    #[test]
    fn budgeted_adapter_wraps_legacy_selectors() {
        let inst = community_instance(31);
        let solver = Solver::new(inst);
        let adapter = Budgeted {
            selector: &RandomSelector,
            budget: 3,
        };
        assert_eq!(Selector::name(&adapter), "random");
        let via_adapter = solver.run(&adapter).unwrap();
        assert_eq!(via_adapter.algorithm, "random");
        assert_eq!(via_adapter.protectors.len(), 3);
        assert!(matches!(via_adapter.detail, SolveDetail::Heuristic));
        // The adapter and the native request share the RNG stream.
        let native = solver
            .solve(&SolveRequest::heuristic(Algorithm::Random, 3))
            .unwrap();
        assert_eq!(via_adapter.protectors, native.protectors);
        assert!(format!("{adapter:?}").contains("random"));
    }

    #[test]
    fn compare_runs_selectors_through_the_session() {
        let inst = community_instance(33);
        let solver = Solver::new(inst);
        let greedy = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(2)
        };
        let scbg_req = SolveRequest::scbg();
        let none = Budgeted {
            selector: &NoBlockingSelector,
            budget: 2,
        };
        let selectors: [&dyn Selector; 3] = [&greedy, &scbg_req, &none];
        let report = solver
            .compare(
                &OpoaoModel::new(10),
                &selectors,
                &MonteCarloConfig {
                    runs: 3,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].name, "greedy");
        assert_eq!(report.runs[1].name, "scbg");
        assert_eq!(report.runs[2].name, "no-blocking");
        assert!(report.runs[2].protectors.is_empty());
    }

    #[test]
    fn reports_carry_stage_timings() {
        let inst = chain_instance();
        let solver = Solver::new(inst);
        let report = solver
            .solve(&SolveRequest {
                realizations: 4,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        let names: Vec<_> = report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["bridge", "estimator", "select"]);
        assert!(report.stage_nanos("select").is_some());
        assert!(report.stage_nanos("nope").is_none());
        assert_eq!(
            report.total_nanos(),
            report.stages.iter().map(|s| s.nanos).sum::<u128>()
        );
    }

    #[test]
    fn cache_stats_accumulate_and_delta() {
        let inst = community_instance(35);
        let solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        let before = solver.cache_stats();
        assert_eq!(before.hits() + before.misses(), 0);
        solver.solve(&req).unwrap();
        solver.solve(&req).unwrap();
        let after = solver.cache_stats();
        assert!(after.hits() >= 2);
        assert!(after.misses() >= 2);
        let delta = after.delta_since(&before);
        assert_eq!(delta.hits(), after.hits());
    }

    #[test]
    fn advance_budget_degrades_to_prefix_of_exact_run() {
        let inst = community_instance(41);
        let req = SolveRequest {
            realizations: 12,
            max_hops: 15,
            ..SolveRequest::greedy_budget(3)
        };
        let exact = Solver::new(inst.clone()).solve(&req).unwrap();
        assert_eq!(exact.completion, Completion::Exact);
        assert!(!exact.is_degraded());
        assert_eq!(exact.protectors.len(), 3);

        let starved = Solver::new(inst)
            .solve(
                &req.clone()
                    .with_budget(RunBudget::unlimited().with_max_advances(1)),
            )
            .unwrap();
        assert_eq!(
            starved.completion,
            Completion::Degraded {
                checkpoints_done: 1,
                checkpoints_total: 3,
                reason: StopReason::AdvanceBudget,
            }
        );
        assert!(starved.is_degraded());
        // Best-so-far is a bitwise prefix of the uncancelled run.
        assert_eq!(starved.protectors[..], exact.protectors[..1]);
        let (SolveDetail::Greedy(s), SolveDetail::Greedy(e)) = (&starved.detail, &exact.detail)
        else {
            panic!("expected greedy details");
        };
        assert_eq!(s.sigma_history[..], e.sigma_history[..1]);
    }

    #[test]
    fn degraded_solve_parks_a_reusable_prefix() {
        let inst = community_instance(43);
        let req = SolveRequest {
            realizations: 12,
            max_hops: 15,
            ..SolveRequest::greedy_budget(3)
        };
        let solver = Solver::new(inst.clone());
        let starved = solver
            .solve(
                &req.clone()
                    .with_budget(RunBudget::unlimited().with_max_advances(2)),
            )
            .unwrap();
        assert!(starved.is_degraded());
        assert_eq!(starved.protectors.len(), 2);
        // The parked partial trajectory resumes and the finished solve
        // is bitwise-equal to a cold exact run: degraded solves never
        // poison the session.
        let resumed = solver.solve(&req).unwrap();
        assert_eq!(resumed.completion, Completion::Exact);
        let cold = Solver::new(inst).solve(&req).unwrap();
        assert_eq!(resumed.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&resumed.detail, &cold.detail)
        else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
    }

    #[test]
    fn sim_budget_stops_the_initial_sweep_gracefully() {
        let inst = community_instance(45);
        let report = Solver::new(inst)
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                budget: RunBudget::unlimited().with_max_sims(0),
                ..SolveRequest::greedy_budget(2)
            })
            .unwrap();
        assert!(report.is_degraded());
        assert!(report.protectors.is_empty());
        let Completion::Degraded { reason, .. } = report.completion else {
            panic!("expected a degraded completion");
        };
        assert_eq!(reason, StopReason::SimBudget);
    }

    #[test]
    fn sketch_cap_truncates_and_bypasses_the_shared_caches() {
        let inst = community_instance(47);
        let solver = Solver::new(inst);
        // Warm the bridge cache so the delta isolates the sketch path.
        solver.solve(&sketch_request(1)).unwrap();
        let capped = sketch_request(2).with_budget(RunBudget::unlimited().with_max_sketches(3));
        let (report, delta) = charged(&solver, || solver.solve(&capped).unwrap());
        let Completion::Degraded { reason, .. } = report.completion else {
            panic!("expected a degraded completion");
        };
        assert_eq!(reason, StopReason::SketchBudget);
        // A truncated index and its trajectory are private to the
        // request: neither the sketch family nor the CELF cache is
        // read or written.
        assert_eq!(delta.sketch.hits + delta.sketch.misses, 0);
        assert_eq!(delta.celf.hits + delta.celf.misses, 0);
        // And the session still answers exact sketch solves untainted.
        let exact = solver.solve(&sketch_request(2)).unwrap();
        assert_eq!(exact.completion, Completion::Exact);
    }

    #[test]
    fn cancelled_request_errors_without_poisoning_the_session() {
        let inst = community_instance(49);
        let solver = Solver::new(inst.clone());
        let token = CancelToken::new();
        token.cancel();
        let req = SolveRequest {
            realizations: 12,
            max_hops: 15,
            ..SolveRequest::greedy_budget(2)
        };
        let err = solver.solve(&req.clone().with_cancel(token)).unwrap_err();
        assert!(matches!(
            err,
            LcrbError::Interrupted {
                reason: StopReason::Cancelled
            }
        ));
        // The aborted build vacated its cache slots: a later solve on
        // the same session rebuilds and matches a cold solver.
        let after = solver.solve(&req).unwrap();
        assert_eq!(after.completion, Completion::Exact);
        let cold = Solver::new(inst).solve(&req).unwrap();
        assert_eq!(after.protectors, cold.protectors);
    }

    #[test]
    fn expired_deadline_interrupts_every_algorithm() {
        let inst = community_instance(51);
        let solver = Solver::new(inst);
        let deadline = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        for req in [
            SolveRequest::greedy_budget(1),
            sketch_request(1),
            SolveRequest::scbg(),
            SolveRequest::gvs(1),
        ] {
            let err = solver.solve(&req.with_budget(deadline)).unwrap_err();
            assert!(matches!(
                err,
                LcrbError::Interrupted {
                    reason: StopReason::DeadlineExpired
                }
            ));
        }
    }

    #[test]
    fn gvs_sim_budget_interrupts_before_the_baseline() {
        let inst = community_instance(53);
        let err = Solver::new(inst)
            .solve(&SolveRequest::gvs(1).with_budget(RunBudget::unlimited().with_max_sims(0)))
            .unwrap_err();
        assert!(matches!(
            err,
            LcrbError::Interrupted {
                reason: StopReason::SimBudget
            }
        ));
    }

    #[test]
    fn batch_cancel_interrupts_every_request() {
        let inst = community_instance(55);
        let solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        let batch = vec![req.clone(); 4];
        let token = CancelToken::new();
        token.cancel();
        for slot in solver.solve_many_with_cancel(&batch, 2, &token) {
            assert!(matches!(
                slot,
                Err(LcrbError::Interrupted {
                    reason: StopReason::Cancelled
                })
            ));
        }
        // An untripped token leaves the batch equal to a plain one.
        let fresh = CancelToken::new();
        let with_token = solver.solve_many_with_cancel(&batch, 2, &fresh);
        let plain = solver.solve_many(&batch);
        for (a, b) in with_token.iter().zip(&plain) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.protectors, b.protectors);
            assert_eq!(a.completion, Completion::Exact);
            assert_eq!(b.completion, Completion::Exact);
        }
    }
}
