//! Solver sessions: one engine in front of every selection
//! algorithm, with epoch-keyed artifact caching.
//!
//! The free functions ([`crate::greedy_lcrb_p`], [`crate::scbg`], the
//! heuristic selectors) rebuild every expensive artifact per call:
//! the bridge-end set, the RR-sketch sample, the CELF priority state,
//! degree/PageRank orderings. A [`Solver`] owns the
//! [`RumorBlockingInstance`] plus an [`ArtifactCache`] and reuses
//! those artifacts across queries, so a budget sweep or an α sweep
//! pays the construction cost once.
//!
//! Reuse is sound because each artifact depends only on what its
//! cache key names — never on the stopping rule:
//!
//! - the bridge-end set depends only on the instance and the
//!   [`BridgeEndRule`];
//! - a [`SketchIndex`] depends on the instance, the bridge ends, the
//!   `(ε, δ)` schedule, the master seed, and the hop budget — not on
//!   any budget or α;
//! - a CELF trajectory is *prefix-consistent*: the stopping rule only
//!   decides where the pick sequence stops, never which node is
//!   picked next (see [`crate::greedy`]'s trajectory invariant), so a
//!   smaller budget reads a prefix and a larger one resumes the
//!   stored heap, bitwise identical to a cold run.
//!
//! Every cache entry is stamped with the solver's **epoch**; mutating
//! the instance ([`Solver::set_rumor_seeds`]) or calling
//! [`Solver::invalidate`] bumps the epoch, so stale artifacts can
//! never serve a changed problem.
//!
//! # Examples
//!
//! ```
//! use lcrb::engine::{Solver, SolveRequest};
//! use lcrb::RumorBlockingInstance;
//! use lcrb_community::Partition;
//! use lcrb_graph::{DiGraph, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! let p = Partition::from_labels(vec![0, 0, 1, 1]);
//! let inst = RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)])?;
//! let mut solver = Solver::new(inst);
//! let report = solver.solve(&SolveRequest::greedy_budget(1))?;
//! assert_eq!(report.protectors.len(), 1);
//! // A second solve at a different budget reuses the cached
//! // artifacts (bridge ends + CELF trajectory).
//! let warm = solver.solve(&SolveRequest::greedy_budget(2))?;
//! assert!(warm.cache_hits() > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lcrb_diffusion::{MonteCarloConfig, ScratchPool, TwoCascadeModel};
use lcrb_graph::NodeId;

use crate::evaluate::{evaluate_protector_sets, HopSeriesReport};
use crate::greedy::{
    advance_trajectory, candidate_pool_for, normalized_model, selection_from_trajectory,
    GreedyTrajectory, SigmaBackend, SigmaScratch,
};
use crate::sketch_objective::mix;
use crate::{
    find_bridge_ends, greedy_viral_stopper, scbg, BridgeEndRule, BridgeEnds, CandidatePool,
    Estimator, GreedyConfig, GreedySelection, GvsConfig, GvsSelection, LcrbError,
    MaxDegreeSelector, ObjectiveModel, PageRankSelector, ProtectionObjective, ProtectorSelector,
    ProximitySelector, RumorBlockingInstance, ScbgConfig, ScbgSolution, SketchIndex,
    SketchObjective,
};

/// Which selection algorithm a [`SolveRequest`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Algorithm {
    /// Algorithm 1 (CELF greedy) for LCRB-P — the only algorithm that
    /// honors [`StopRule::Alpha`].
    Greedy,
    /// Set Cover Based Greedy (Algorithm 3) for LCRB-D; ignores the
    /// stopping rule (it always covers every bridge end it can).
    Scbg,
    /// The Greedy Viral Stopper related-work baseline.
    Gvs,
    /// Highest out-degree first.
    MaxDegree,
    /// Random direct out-neighbors of the rumor originators.
    Proximity,
    /// Uniformly random non-rumor nodes.
    Random,
    /// Highest PageRank first.
    PageRank,
    /// No protectors — the reference line.
    NoBlocking,
}

impl Algorithm {
    /// The canonical display name (matches the paper-figure labels
    /// and the legacy [`ProtectorSelector::name`] strings).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::Scbg => "scbg",
            Algorithm::Gvs => "gvs",
            Algorithm::MaxDegree => "max-degree",
            Algorithm::Proximity => "proximity",
            Algorithm::Random => "random",
            Algorithm::PageRank => "pagerank",
            Algorithm::NoBlocking => "no-blocking",
        }
    }
}

/// When a solve stops adding protectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Select at most this many protectors.
    Budget(usize),
    /// Select until `σ̂ ≥ α·|B|` (greedy only; `α ∈ (0, 1]`).
    Alpha(f64),
}

/// One query against a [`Solver`]: which algorithm, when to stop, and
/// every knob the algorithms share. Construct via the named builders
/// ([`SolveRequest::greedy_budget`], [`SolveRequest::greedy_alpha`],
/// [`SolveRequest::scbg`], [`SolveRequest::gvs`],
/// [`SolveRequest::heuristic`]) and adjust fields with struct-update
/// syntax.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveRequest {
    /// The selection algorithm to run.
    pub algorithm: Algorithm,
    /// The stopping rule ([`StopRule::Alpha`] is greedy-only).
    pub stop: StopRule,
    /// σ̂ estimator for the greedy (Monte Carlo or RR sketches).
    pub estimator: Estimator,
    /// Bridge-end detection rule.
    pub rule: BridgeEndRule,
    /// Diffusion model the greedy/GVS objective estimates under.
    pub model: ObjectiveModel,
    /// Realizations for the Monte-Carlo greedy estimator.
    pub realizations: usize,
    /// Hop budget applied to the OPOAO objective model.
    pub max_hops: u32,
    /// Candidate pool for greedy and GVS.
    pub candidates: CandidatePool,
    /// CELF lazy evaluation (greedy only).
    pub lazy: bool,
    /// Worker threads for the greedy's initial gain sweep.
    pub threads: usize,
    /// Hard protector cap for α-mode greedy solves.
    pub max_protectors: usize,
    /// Monte-Carlo runs per GVS candidate evaluation.
    pub mc_runs: usize,
    /// Damping factor for [`Algorithm::PageRank`], in `[0, 1)`.
    pub pagerank_damping: f64,
    /// BBST depth cap for [`Algorithm::Scbg`].
    pub max_bbst_depth: Option<u32>,
}

impl SolveRequest {
    fn base(algorithm: Algorithm, stop: StopRule) -> Self {
        let defaults = GreedyConfig::default();
        SolveRequest {
            algorithm,
            stop,
            estimator: defaults.estimator,
            rule: defaults.rule,
            model: defaults.model,
            realizations: defaults.realizations,
            max_hops: defaults.max_hops,
            candidates: defaults.candidates,
            lazy: defaults.lazy,
            threads: defaults.threads,
            max_protectors: defaults.max_protectors,
            mc_runs: 16,
            pagerank_damping: 0.85,
            max_bbst_depth: None,
        }
    }

    /// Budget-mode greedy: select exactly `budget` protectors (fewer
    /// only if gains hit zero).
    #[must_use]
    pub fn greedy_budget(budget: usize) -> Self {
        SolveRequest::base(Algorithm::Greedy, StopRule::Budget(budget))
    }

    /// α-mode greedy: select until `σ̂ ≥ α·|B|`.
    #[must_use]
    pub fn greedy_alpha(alpha: f64) -> Self {
        SolveRequest::base(Algorithm::Greedy, StopRule::Alpha(alpha))
    }

    /// Set Cover Based Greedy for LCRB-D (the stopping rule is
    /// ignored; SCBG always covers everything it can).
    #[must_use]
    pub fn scbg() -> Self {
        SolveRequest::base(Algorithm::Scbg, StopRule::Budget(usize::MAX))
    }

    /// The GVS related-work baseline at a fixed budget.
    #[must_use]
    pub fn gvs(budget: usize) -> Self {
        SolveRequest::base(Algorithm::Gvs, StopRule::Budget(budget))
    }

    /// A budgeted heuristic baseline ([`Algorithm::MaxDegree`],
    /// [`Algorithm::Proximity`], [`Algorithm::Random`],
    /// [`Algorithm::PageRank`], or [`Algorithm::NoBlocking`]).
    #[must_use]
    pub fn heuristic(algorithm: Algorithm, budget: usize) -> Self {
        SolveRequest::base(algorithm, StopRule::Budget(budget))
    }

    /// Replaces the σ̂ estimator (builder style).
    #[must_use]
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Replaces the stopping rule (builder style).
    #[must_use]
    pub fn with_stop(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// The equivalent legacy [`GreedyConfig`] (α is a placeholder in
    /// budget mode; the engine passes the target separately).
    fn greedy_config(&self, master_seed: u64) -> GreedyConfig {
        GreedyConfig {
            alpha: match self.stop {
                StopRule::Alpha(a) => a,
                StopRule::Budget(_) => 1.0,
            },
            realizations: self.realizations,
            master_seed,
            max_hops: self.max_hops,
            model: self.model,
            max_protectors: self.max_protectors,
            candidates: self.candidates,
            lazy: self.lazy,
            rule: self.rule,
            threads: self.threads,
            estimator: self.estimator,
        }
    }
}

/// Hit/miss counters for one artifact kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to (re)build the artifact.
    pub misses: u64,
}

impl CacheCounters {
    fn delta_since(self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Per-artifact-kind cache counters; cumulative on
/// [`Solver::cache_stats`], per-solve deltas on
/// [`SolveReport::cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bridge-end set lookups.
    pub bridge: CacheCounters,
    /// RR-sketch index lookups.
    pub sketch: CacheCounters,
    /// CELF trajectory lookups.
    pub celf: CacheCounters,
    /// SCBG solution lookups.
    pub scbg: CacheCounters,
    /// Heuristic ordering/pool lookups (degree, PageRank, proximity).
    pub ordering: CacheCounters,
    /// GVS selection lookups.
    pub gvs: CacheCounters,
}

impl CacheStats {
    /// Total hits across every artifact kind.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.bridge.hits
            + self.sketch.hits
            + self.celf.hits
            + self.scbg.hits
            + self.ordering.hits
            + self.gvs.hits
    }

    /// Total misses across every artifact kind.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.bridge.misses
            + self.sketch.misses
            + self.celf.misses
            + self.scbg.misses
            + self.ordering.misses
            + self.gvs.misses
    }

    /// The counter increments between `earlier` and `self` (both
    /// snapshots of the same solver's cumulative stats).
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            bridge: self.bridge.delta_since(earlier.bridge),
            sketch: self.sketch.delta_since(earlier.sketch),
            celf: self.celf.delta_since(earlier.celf),
            scbg: self.scbg.delta_since(earlier.scbg),
            ordering: self.ordering.delta_since(earlier.ordering),
            gvs: self.gvs.delta_since(earlier.gvs),
        }
    }
}

/// Wall-clock duration of one named stage of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (`"bridge"`, `"estimator"`, `"select"`, ...).
    pub stage: &'static str,
    /// Elapsed nanoseconds.
    pub nanos: u128,
}

/// Algorithm-specific detail attached to a [`SolveReport`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SolveDetail {
    /// The full greedy selection (σ̂ history, target, evaluations).
    Greedy(GreedySelection),
    /// The full SCBG solution (coverage accounting).
    Scbg(ScbgSolution),
    /// The full GVS selection (infected-count history).
    Gvs(GvsSelection),
    /// Heuristic baselines carry no extra detail.
    Heuristic,
}

/// The outcome of one [`Solver::solve`]: the selection plus
/// observability metadata (per-stage timings, cache hit/miss deltas).
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Canonical algorithm name ([`Algorithm::name`]).
    pub algorithm: String,
    /// Selected protector originators, in selection order.
    pub protectors: Vec<NodeId>,
    /// The solver epoch this solve ran at.
    pub epoch: u64,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// Cache hit/miss counters for this solve only.
    pub cache: CacheStats,
    /// Algorithm-specific detail.
    pub detail: SolveDetail,
}

impl SolveReport {
    /// Cache hits charged to this solve.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses charged to this solve.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Nanoseconds spent in `stage`, if it ran.
    #[must_use]
    pub fn stage_nanos(&self, stage: &str) -> Option<u128> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.nanos)
    }

    /// Total nanoseconds across all recorded stages.
    #[must_use]
    pub fn total_nanos(&self) -> u128 {
        self.stages.iter().map(|s| s.nanos).sum()
    }
}

/// Construction options for a [`Solver`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverConfig {
    /// Master seed every derived randomness stream mixes from
    /// (realization batches, sketch sampling, heuristic shuffles).
    pub master_seed: u64,
}

/// A unified selection strategy a [`Solver`] can run — implemented by
/// [`SolveRequest`] (the native path) and by [`Budgeted`] (the
/// adapter over legacy [`ProtectorSelector`]s).
pub trait Selector {
    /// Display name for reports and figures.
    fn name(&self) -> String;
    /// Runs the strategy against the solver (using its cache and
    /// derived randomness streams).
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from the underlying algorithm.
    fn select(&self, solver: &mut Solver) -> Result<SolveReport, LcrbError>;
}

impl Selector for SolveRequest {
    fn name(&self) -> String {
        self.algorithm.name().to_owned()
    }

    fn select(&self, solver: &mut Solver) -> Result<SolveReport, LcrbError> {
        solver.solve(self)
    }
}

/// Adapter running a legacy [`ProtectorSelector`] at a fixed budget
/// through the [`Selector`] interface (randomness comes from the
/// solver's derived stream for the selector's name and budget).
#[derive(Clone, Copy)]
pub struct Budgeted<'a> {
    /// The legacy selector to run.
    pub selector: &'a dyn ProtectorSelector,
    /// How many protectors it may pick.
    pub budget: usize,
}

impl std::fmt::Debug for Budgeted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budgeted")
            .field("selector", &self.selector.name())
            .field("budget", &self.budget)
            .finish()
    }
}

impl Selector for Budgeted<'_> {
    fn name(&self) -> String {
        self.selector.name().to_owned()
    }

    fn select(&self, solver: &mut Solver) -> Result<SolveReport, LcrbError> {
        let before = solver.cache.stats;
        let mut clock = StageClock::start();
        let mut rng = solver.named_rng(self.selector.name(), self.budget);
        let protectors = self
            .selector
            .select(&solver.instance, self.budget, &mut rng);
        clock.lap("select");
        Ok(SolveReport {
            algorithm: self.selector.name().to_owned(),
            protectors,
            epoch: solver.epoch,
            stages: clock.stages,
            cache: solver.cache.stats.delta_since(&before),
            detail: SolveDetail::Heuristic,
        })
    }
}

/// A clock read for stage timings. Observability metadata only: the
/// solver's *selections* never read the clock, so determinism of the
/// outputs is preserved.
#[allow(clippy::disallowed_methods)]
fn now() -> std::time::Instant {
    // xtask-allow: determinism -- stage timings are observability metadata; selections never read the clock
    std::time::Instant::now()
}

struct StageClock {
    last: std::time::Instant,
    stages: Vec<StageTiming>,
}

impl StageClock {
    fn start() -> Self {
        StageClock {
            last: now(),
            stages: Vec::new(),
        }
    }

    fn lap(&mut self, stage: &'static str) {
        let t = now();
        self.stages.push(StageTiming {
            stage,
            nanos: t.duration_since(self.last).as_nanos(),
        });
        self.last = t;
    }
}

/// A cache entry stamped with the solver epoch it was built at; an
/// epoch mismatch is a miss (lazy eviction).
#[derive(Clone, Debug)]
struct Keyed<T> {
    epoch: u64,
    value: T,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ModelKey {
    tag: u8,
    probability_bits: u64,
    max_hops: u32,
}

fn model_key(model: &ObjectiveModel) -> ModelKey {
    match model {
        ObjectiveModel::Opoao(m) => ModelKey {
            tag: 0,
            probability_bits: 0,
            max_hops: m.max_hops,
        },
        ObjectiveModel::CompetitiveIc(m) => ModelKey {
            tag: 1,
            probability_bits: m.probability().to_bits(),
            max_hops: m.max_hops,
        },
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EstimatorKey {
    tag: u8,
    realizations: usize,
    epsilon_bits: u64,
    delta_bits: u64,
    min_sketches: usize,
    max_sketches: usize,
}

fn estimator_key(estimator: &Estimator, realizations: usize) -> EstimatorKey {
    match estimator {
        Estimator::MonteCarlo => EstimatorKey {
            tag: 0,
            realizations,
            epsilon_bits: 0,
            delta_bits: 0,
            min_sketches: 0,
            max_sketches: 0,
        },
        Estimator::Sketch(p) => EstimatorKey {
            tag: 1,
            realizations: 0,
            epsilon_bits: p.epsilon.to_bits(),
            delta_bits: p.delta.to_bits(),
            min_sketches: p.min_sketches,
            max_sketches: p.max_sketches,
        },
    }
}

fn rule_tag(rule: BridgeEndRule) -> u8 {
    match rule {
        BridgeEndRule::WithinCommunity => 0,
        BridgeEndRule::AnyPath => 1,
    }
}

fn candidates_key(pool: CandidatePool) -> (u8, u32) {
    match pool {
        CandidatePool::AllNonRumor => (0, 0),
        CandidatePool::BackwardRadius(r) => (1, r),
        CandidatePool::BbstUnion => (2, 0),
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SketchKey {
    rule: u8,
    max_hops: u32,
    epsilon_bits: u64,
    delta_bits: u64,
    min_sketches: usize,
    max_sketches: usize,
}

/// A CELF trajectory is keyed by everything the pick sequence depends
/// on — estimator, model, candidate pool, rule, laziness — and by
/// nothing it does not (the stopping rule and thread count never
/// change which node is picked next).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CelfKey {
    rule: u8,
    estimator: EstimatorKey,
    model: ModelKey,
    candidates: (u8, u32),
    lazy: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ScbgKey {
    rule: u8,
    depth: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct OrderingKey {
    tag: u8,
    damping_bits: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct GvsKey {
    rule: u8,
    candidates: (u8, u32),
    model: ModelKey,
    mc_runs: usize,
    budget: usize,
}

fn cache_get_or_insert<K: Ord, V: Clone, E>(
    map: &mut BTreeMap<K, Keyed<V>>,
    counters: &mut CacheCounters,
    epoch: u64,
    key: K,
    build: impl FnOnce() -> Result<V, E>,
) -> Result<V, E> {
    if let Some(entry) = map.get(&key) {
        if entry.epoch == epoch {
            counters.hits += 1;
            return Ok(entry.value.clone());
        }
    }
    counters.misses += 1;
    let value = build()?;
    map.insert(
        key,
        Keyed {
            epoch,
            value: value.clone(),
        },
    );
    Ok(value)
}

/// The solver's epoch-keyed artifact store. Private to the engine;
/// inspect it through [`Solver::cache_stats`] and
/// [`SolveReport::cache`].
#[derive(Debug, Default)]
struct ArtifactCache {
    bridge: BTreeMap<u8, Keyed<Arc<BridgeEnds>>>,
    sketch: BTreeMap<SketchKey, Keyed<Arc<SketchIndex>>>,
    celf: BTreeMap<CelfKey, Keyed<GreedyTrajectory>>,
    scbg: BTreeMap<ScbgKey, Keyed<ScbgSolution>>,
    ordering: BTreeMap<OrderingKey, Keyed<Arc<Vec<NodeId>>>>,
    gvs: BTreeMap<GvsKey, Keyed<GvsSelection>>,
    stats: CacheStats,
}

impl ArtifactCache {
    fn clear(&mut self) {
        self.bridge.clear();
        self.sketch.clear();
        self.celf.clear();
        self.scbg.clear();
        self.ordering.clear();
        self.gvs.clear();
    }

    fn bridge(
        &mut self,
        rule: BridgeEndRule,
        epoch: u64,
        build: impl FnOnce() -> Arc<BridgeEnds>,
    ) -> Arc<BridgeEnds> {
        match cache_get_or_insert(
            &mut self.bridge,
            &mut self.stats.bridge,
            epoch,
            rule_tag(rule),
            || Ok::<_, std::convert::Infallible>(build()),
        ) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    fn sketch(
        &mut self,
        key: SketchKey,
        epoch: u64,
        build: impl FnOnce() -> Result<Arc<SketchIndex>, LcrbError>,
    ) -> Result<Arc<SketchIndex>, LcrbError> {
        cache_get_or_insert(&mut self.sketch, &mut self.stats.sketch, epoch, key, build)
    }

    /// CELF trajectories are taken by value (no clone of the heap)
    /// and stored back after the extension; an epoch-stale entry is
    /// evicted and counted as a miss.
    fn take_celf(&mut self, key: &CelfKey, epoch: u64) -> Option<GreedyTrajectory> {
        match self.celf.remove(key) {
            Some(entry) if entry.epoch == epoch => {
                self.stats.celf.hits += 1;
                Some(entry.value)
            }
            _ => {
                self.stats.celf.misses += 1;
                None
            }
        }
    }

    fn store_celf(&mut self, key: CelfKey, epoch: u64, value: GreedyTrajectory) {
        self.celf.insert(key, Keyed { epoch, value });
    }

    fn scbg(
        &mut self,
        key: ScbgKey,
        epoch: u64,
        build: impl FnOnce() -> ScbgSolution,
    ) -> ScbgSolution {
        match cache_get_or_insert(&mut self.scbg, &mut self.stats.scbg, epoch, key, || {
            Ok::<_, std::convert::Infallible>(build())
        }) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    fn ordering(
        &mut self,
        key: OrderingKey,
        epoch: u64,
        build: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        match cache_get_or_insert(
            &mut self.ordering,
            &mut self.stats.ordering,
            epoch,
            key,
            || Ok::<_, std::convert::Infallible>(Arc::new(build())),
        ) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    fn gvs(
        &mut self,
        key: GvsKey,
        epoch: u64,
        build: impl FnOnce() -> Result<GvsSelection, LcrbError>,
    ) -> Result<GvsSelection, LcrbError> {
        cache_get_or_insert(&mut self.gvs, &mut self.stats.gvs, epoch, key, build)
    }
}

/// A solver session: owns the instance, a deterministic derived-seed
/// policy, and the [`ArtifactCache`]; answers [`SolveRequest`]s.
///
/// See the [module docs](self) for the caching model and the
/// soundness argument.
#[derive(Debug)]
pub struct Solver {
    instance: RumorBlockingInstance,
    master_seed: u64,
    epoch: u64,
    cache: ArtifactCache,
    scratch: ScratchPool<SigmaScratch>,
}

impl Solver {
    /// Creates a session with the default configuration
    /// (`master_seed = 0`).
    #[must_use]
    pub fn new(instance: RumorBlockingInstance) -> Self {
        Solver::with_config(instance, SolverConfig::default())
    }

    /// Creates a session with an explicit configuration.
    #[must_use]
    pub fn with_config(instance: RumorBlockingInstance, config: SolverConfig) -> Self {
        Solver {
            instance,
            master_seed: config.master_seed,
            epoch: 0,
            cache: ArtifactCache::default(),
            scratch: ScratchPool::new(),
        }
    }

    /// The problem instance this session solves.
    #[must_use]
    pub fn instance(&self) -> &RumorBlockingInstance {
        &self.instance
    }

    /// The master seed derived randomness streams mix from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The current cache epoch (bumped by every invalidation).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative cache hit/miss counters over the session's life.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Drops every cached artifact and bumps the epoch. Called
    /// automatically when the instance changes
    /// ([`Solver::set_rumor_seeds`]); call it manually only to
    /// reclaim memory or to force cold re-solves.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
        self.cache.clear();
        // Pooled scratches cache seed pairs built from the old rumor
        // set; they must not survive an instance change.
        self.scratch.clear();
    }

    /// Replaces the rumor originators (revalidating them against the
    /// rumor community) and invalidates every cached artifact.
    ///
    /// # Errors
    ///
    /// Propagates [`RumorBlockingInstance::with_rumor_seeds`] errors;
    /// on error the session is unchanged.
    pub fn set_rumor_seeds(&mut self, rumor_seeds: Vec<NodeId>) -> Result<(), LcrbError> {
        self.instance = self.instance.with_rumor_seeds(rumor_seeds)?;
        self.invalidate();
        Ok(())
    }

    /// A deterministic RNG stream derived from the master seed, the
    /// stream name, and the budget — so identical requests draw
    /// identical randomness regardless of solve order.
    #[must_use]
    pub fn named_rng(&self, name: &str, budget: usize) -> SmallRng {
        let mut s = mix(self.master_seed, 0x6c63_7262); // "lcrb"
        for &b in name.as_bytes() {
            s = mix(s, u64::from(b));
        }
        SmallRng::seed_from_u64(mix(s, budget as u64))
    }

    /// Runs one [`Selector`] (a [`SolveRequest`] or a [`Budgeted`]
    /// legacy adapter) against this session.
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from the strategy.
    pub fn run(&mut self, selector: &dyn Selector) -> Result<SolveReport, LcrbError> {
        selector.select(self)
    }

    /// Answers one [`SolveRequest`], reusing every cached artifact
    /// the request's key matches.
    ///
    /// # Errors
    ///
    /// - [`LcrbError::InvalidAlpha`] for an out-of-range
    ///   [`StopRule::Alpha`];
    /// - [`LcrbError::UnsupportedRequest`] for combinations no
    ///   algorithm implements (α stop on a baseline, PageRank damping
    ///   outside `[0, 1)`);
    /// - plus whatever the underlying algorithm returns
    ///   ([`LcrbError::NoRealizations`],
    ///   [`LcrbError::InvalidSketchParams`],
    ///   [`LcrbError::SketchModelUnsupported`], ...).
    pub fn solve(&mut self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        match request.algorithm {
            Algorithm::Greedy => self.solve_greedy(request),
            Algorithm::Scbg => self.solve_scbg(request),
            Algorithm::Gvs => self.solve_gvs(request),
            Algorithm::MaxDegree
            | Algorithm::Proximity
            | Algorithm::Random
            | Algorithm::PageRank
            | Algorithm::NoBlocking => self.solve_heuristic(request),
        }
    }

    /// Runs several selectors and Monte-Carlo evaluates their
    /// selections under `model` — the engine-native form of
    /// [`crate::evaluate::compare_selectors`].
    ///
    /// # Errors
    ///
    /// Propagates any [`LcrbError`] from a selector or the
    /// evaluation.
    pub fn compare<M>(
        &mut self,
        model: &M,
        selectors: &[&dyn Selector],
        mc: &MonteCarloConfig,
    ) -> Result<HopSeriesReport, LcrbError>
    where
        M: TwoCascadeModel + Sync,
    {
        let mut sets = Vec::with_capacity(selectors.len());
        for s in selectors {
            let report = s.select(self)?;
            sets.push((report.algorithm, report.protectors));
        }
        evaluate_protector_sets(&self.instance, model, &sets, mc)
    }

    fn solve_greedy(&mut self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        let config = request.greedy_config(self.master_seed);
        let (target_alpha, budget) = match request.stop {
            StopRule::Alpha(a) => {
                if a.is_nan() || a <= 0.0 || a > 1.0 {
                    return Err(LcrbError::InvalidAlpha { alpha: a });
                }
                (Some(a), None)
            }
            StopRule::Budget(k) => (None, Some(k)),
        };
        if let Estimator::Sketch(params) = config.estimator {
            params.validate()?;
        }
        let before = self.cache.stats;
        let mut clock = StageClock::start();
        let Solver {
            ref instance,
            ref mut cache,
            ref mut scratch,
            master_seed,
            epoch,
            ..
        } = *self;

        let bridge = cache.bridge(config.rule, epoch, || {
            Arc::new(find_bridge_ends(instance, config.rule))
        });
        clock.lap("bridge");

        let model = normalized_model(&config);
        let backend = match config.estimator {
            Estimator::MonteCarlo => SigmaBackend::Mc(ProtectionObjective::with_model(
                instance,
                bridge.nodes.clone(),
                model,
                config.realizations,
                master_seed,
            )?),
            Estimator::Sketch(params) => {
                if !matches!(model, ObjectiveModel::Opoao(_)) {
                    return Err(LcrbError::SketchModelUnsupported);
                }
                let key = SketchKey {
                    rule: rule_tag(config.rule),
                    max_hops: config.max_hops,
                    epsilon_bits: params.epsilon.to_bits(),
                    delta_bits: params.delta.to_bits(),
                    min_sketches: params.min_sketches,
                    max_sketches: params.max_sketches,
                };
                let index = cache.sketch(key, epoch, || {
                    SketchIndex::build(
                        instance,
                        bridge.nodes.clone(),
                        params,
                        master_seed,
                        config.max_hops,
                    )
                    .map(Arc::new)
                })?;
                SigmaBackend::Sketch(SketchObjective::from_index(instance, index))
            }
        };
        clock.lap("estimator");

        let target = match target_alpha {
            Some(a) => a * bridge.len() as f64,
            None => f64::INFINITY,
        };
        let cap = match budget {
            Some(k) => k.min(config.max_protectors),
            None => config.max_protectors,
        };

        let celf_key = CelfKey {
            rule: rule_tag(config.rule),
            estimator: estimator_key(&config.estimator, config.realizations),
            model: model_key(&model),
            candidates: candidates_key(config.candidates),
            lazy: config.lazy,
        };
        let mut traj = match cache.take_celf(&celf_key, epoch) {
            Some(t) => t,
            None => GreedyTrajectory::new(candidate_pool_for(instance, &bridge, config.candidates)),
        };
        let evals_before = traj.evaluations();
        let mut sigma_scratch = scratch.lend();
        let advanced = advance_trajectory(
            &backend,
            &mut traj,
            target,
            cap,
            config.lazy,
            config.threads,
            &mut sigma_scratch,
        );
        scratch.restore(sigma_scratch);
        // On error the trajectory is dropped, not stored: a partially
        // extended trajectory after a failed σ̂ evaluation could
        // otherwise serve poisoned prefixes.
        advanced?;
        clock.lap("select");

        let evaluations = traj.evaluations() - evals_before;
        let selection =
            selection_from_trajectory(&traj, target, cap, evaluations, (*bridge).clone());
        cache.store_celf(celf_key, epoch, traj);

        Ok(SolveReport {
            algorithm: Algorithm::Greedy.name().to_owned(),
            protectors: selection.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache: self.cache.stats.delta_since(&before),
            detail: SolveDetail::Greedy(selection),
        })
    }

    fn solve_scbg(&mut self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        let before = self.cache.stats;
        let mut clock = StageClock::start();
        let Solver {
            ref instance,
            ref mut cache,
            epoch,
            ..
        } = *self;
        let key = ScbgKey {
            rule: rule_tag(request.rule),
            depth: request.max_bbst_depth.map_or(u64::MAX, u64::from),
        };
        let solution = cache.scbg(key, epoch, || {
            scbg(
                instance,
                &ScbgConfig {
                    rule: request.rule,
                    max_bbst_depth: request.max_bbst_depth,
                },
            )
        });
        clock.lap("select");
        Ok(SolveReport {
            algorithm: Algorithm::Scbg.name().to_owned(),
            protectors: solution.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache: self.cache.stats.delta_since(&before),
            detail: SolveDetail::Scbg(solution),
        })
    }

    fn solve_gvs(&mut self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        let StopRule::Budget(budget) = request.stop else {
            return Err(LcrbError::UnsupportedRequest {
                reason:
                    "the GVS baseline selects by budget; alpha targets apply only to the greedy",
            });
        };
        let before = self.cache.stats;
        let mut clock = StageClock::start();
        let config = request.greedy_config(self.master_seed);
        let model = normalized_model(&config);
        let Solver {
            ref instance,
            ref mut cache,
            master_seed,
            epoch,
            ..
        } = *self;
        let gvs_config = GvsConfig {
            mc_runs: request.mc_runs,
            seed: master_seed,
            candidates: request.candidates,
            rule: request.rule,
        };
        let key = GvsKey {
            rule: rule_tag(request.rule),
            candidates: candidates_key(request.candidates),
            model: model_key(&model),
            mc_runs: request.mc_runs,
            budget,
        };
        let selection = cache.gvs(key, epoch, || match model {
            ObjectiveModel::Opoao(m) => greedy_viral_stopper(instance, &m, budget, &gvs_config),
            ObjectiveModel::CompetitiveIc(m) => {
                greedy_viral_stopper(instance, &m, budget, &gvs_config)
            }
        })?;
        clock.lap("select");
        Ok(SolveReport {
            algorithm: Algorithm::Gvs.name().to_owned(),
            protectors: selection.protectors.clone(),
            epoch,
            stages: clock.stages,
            cache: self.cache.stats.delta_since(&before),
            detail: SolveDetail::Gvs(selection),
        })
    }

    fn solve_heuristic(&mut self, request: &SolveRequest) -> Result<SolveReport, LcrbError> {
        let StopRule::Budget(budget) = request.stop else {
            return Err(LcrbError::UnsupportedRequest {
                reason:
                    "heuristic baselines select by budget; alpha targets apply only to the greedy",
            });
        };
        let before = self.cache.stats;
        let mut clock = StageClock::start();
        let protectors = match request.algorithm {
            Algorithm::MaxDegree => {
                let ordering = self.cached_ordering(
                    OrderingKey {
                        tag: 0,
                        damping_bits: 0,
                    },
                    |inst| MaxDegreeSelector.ordering(inst),
                );
                clock.lap("ordering");
                let mut nodes = ordering.to_vec();
                nodes.truncate(budget);
                nodes
            }
            Algorithm::PageRank => {
                let damping = request.pagerank_damping;
                if !(damping.is_finite() && (0.0..1.0).contains(&damping)) {
                    return Err(LcrbError::UnsupportedRequest {
                        reason: "pagerank damping must be in [0, 1)",
                    });
                }
                let key = OrderingKey {
                    tag: 1,
                    damping_bits: damping.to_bits(),
                };
                let ordering =
                    self.cached_ordering(key, |inst| PageRankSelector::new(damping).ordering(inst));
                clock.lap("ordering");
                let mut nodes = ordering.to_vec();
                nodes.truncate(budget);
                nodes
            }
            Algorithm::Proximity => {
                let pool = self.cached_ordering(
                    OrderingKey {
                        tag: 2,
                        damping_bits: 0,
                    },
                    |inst| ProximitySelector.pool(inst),
                );
                clock.lap("ordering");
                let mut rng = self.named_rng(Algorithm::Proximity.name(), budget);
                let mut nodes = pool.to_vec();
                nodes.shuffle(&mut rng);
                nodes.truncate(budget);
                nodes
            }
            Algorithm::Random => {
                let mut rng = self.named_rng(Algorithm::Random.name(), budget);
                let mut nodes: Vec<NodeId> = self
                    .instance
                    .graph()
                    .nodes()
                    .filter(|&v| !self.instance.is_rumor_seed(v))
                    .collect();
                nodes.shuffle(&mut rng);
                nodes.truncate(budget);
                nodes
            }
            Algorithm::NoBlocking => Vec::new(),
            Algorithm::Greedy | Algorithm::Scbg | Algorithm::Gvs => {
                unreachable!("non-heuristic algorithms are dispatched by solve()")
            }
        };
        clock.lap("select");
        Ok(SolveReport {
            algorithm: request.algorithm.name().to_owned(),
            protectors,
            epoch: self.epoch,
            stages: clock.stages,
            cache: self.cache.stats.delta_since(&before),
            detail: SolveDetail::Heuristic,
        })
    }

    fn cached_ordering(
        &mut self,
        key: OrderingKey,
        build: impl FnOnce(&RumorBlockingInstance) -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        let Solver {
            ref instance,
            ref mut cache,
            epoch,
            ..
        } = *self;
        cache.ordering(key, epoch, || build(instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_lcrb_p, greedy_with_budget, NoBlockingSelector, RandomSelector};
    use lcrb_community::Partition;
    use lcrb_diffusion::OpoaoModel;
    use lcrb_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_instance() -> RumorBlockingInstance {
        let g = generators::path_graph(4);
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        RumorBlockingInstance::new(g, p, 0, vec![NodeId::new(0)]).unwrap()
    }

    fn community_instance(seed: u64) -> RumorBlockingInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (g, labels) =
            generators::planted_partition(&[20, 20, 20], 0.3, 0.03, false, &mut rng).unwrap();
        let p = Partition::from_labels(labels);
        RumorBlockingInstance::with_random_seeds(g, p, 0, 2, &mut rng).unwrap()
    }

    fn sketch_request(budget: usize) -> SolveRequest {
        SolveRequest::greedy_budget(budget)
            .with_estimator(Estimator::Sketch(crate::SketchParams::default()))
    }

    #[test]
    fn greedy_solve_matches_free_function_cold() {
        let inst = community_instance(5);
        let config = GreedyConfig {
            realizations: 16,
            max_hops: 20,
            ..GreedyConfig::default()
        };
        let free = greedy_with_budget(&inst, 2, &config).unwrap();
        let mut solver = Solver::new(inst);
        let report = solver
            .solve(&SolveRequest {
                realizations: 16,
                max_hops: 20,
                ..SolveRequest::greedy_budget(2)
            })
            .unwrap();
        assert_eq!(report.protectors, free.protectors);
        let SolveDetail::Greedy(sel) = &report.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(sel.sigma_history, free.sigma_history);
        assert_eq!(sel.achieved, free.achieved);
        assert_eq!(sel.evaluations, free.evaluations);
        // A cold solve misses everything it looks up.
        assert_eq!(report.cache_hits(), 0);
        assert!(report.cache_misses() >= 2); // bridge + celf
    }

    #[test]
    fn greedy_alpha_solve_matches_free_function() {
        let inst = community_instance(7);
        let config = GreedyConfig {
            realizations: 12,
            alpha: 0.6,
            max_hops: 15,
            ..GreedyConfig::default()
        };
        let free = greedy_lcrb_p(&inst, &config).unwrap();
        let mut solver = Solver::new(inst);
        let report = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        assert_eq!(report.protectors, free.protectors);
        let SolveDetail::Greedy(sel) = &report.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(sel.target, free.target);
        assert_eq!(sel.target_met, free.target_met);
        assert_eq!(sel.achieved, free.achieved);
    }

    #[test]
    fn warm_resolve_is_bitwise_identical_and_hits_cache() {
        let inst = community_instance(9);
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 12,
            max_hops: 15,
            ..SolveRequest::greedy_budget(2)
        };
        let cold = solver.solve(&req).unwrap();
        let warm = solver.solve(&req).unwrap();
        assert_eq!(warm.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&cold.detail, &warm.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
        assert_eq!(a.achieved, b.achieved);
        // The warm solve re-evaluates nothing and hits every artifact.
        assert_eq!(b.evaluations, 0);
        assert_eq!(warm.cache_misses(), 0);
        assert!(warm.cache_hits() >= 2);
    }

    #[test]
    fn budget_change_resumes_the_cached_trajectory() {
        let inst = community_instance(11);
        let mut solver = Solver::new(inst.clone());
        let small = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        let grown = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(3)
            })
            .unwrap();
        // Prefix consistency: the grown solve extends the small one.
        assert_eq!(
            &grown.protectors[..small.protectors.len()],
            &small.protectors[..]
        );
        assert!(grown.cache_hits() > 0);
        // And matches a cold solver asked for the large budget directly.
        let mut fresh = Solver::new(inst);
        let cold = fresh
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(3)
            })
            .unwrap();
        assert_eq!(grown.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&grown.detail, &cold.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
        assert_eq!(a.achieved, b.achieved);
        // Shrinking back reads a prefix without any new evaluations.
        let shrunk = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        assert_eq!(shrunk.protectors, small.protectors);
        let SolveDetail::Greedy(s) = &shrunk.detail else {
            panic!("expected greedy detail");
        };
        assert_eq!(s.evaluations, 0);
    }

    #[test]
    fn sketch_index_is_shared_across_budgets() {
        let inst = community_instance(13);
        let mut solver = Solver::new(inst.clone());
        let cold = solver.solve(&sketch_request(1)).unwrap();
        assert_eq!(cold.cache.sketch.misses, 1);
        let warm = solver.solve(&sketch_request(3)).unwrap();
        assert_eq!(warm.cache.sketch.hits, 1);
        assert_eq!(warm.cache.sketch.misses, 0);
        assert_eq!(warm.cache.bridge.hits, 1);
        // Bitwise identical to a cold budget-3 sketch solve.
        let mut fresh = Solver::new(inst);
        let direct = fresh.solve(&sketch_request(3)).unwrap();
        assert_eq!(warm.protectors, direct.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&warm.detail, &direct.detail)
        else {
            panic!("expected greedy details");
        };
        assert_eq!(a.sigma_history, b.sigma_history);
    }

    #[test]
    fn alpha_after_budget_reuses_the_trajectory() {
        let inst = community_instance(15);
        let mut solver = Solver::new(inst.clone());
        solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_budget(4)
            })
            .unwrap();
        let warm = solver
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        let mut fresh = Solver::new(inst);
        let cold = fresh
            .solve(&SolveRequest {
                realizations: 12,
                max_hops: 15,
                ..SolveRequest::greedy_alpha(0.6)
            })
            .unwrap();
        assert_eq!(warm.protectors, cold.protectors);
        let (SolveDetail::Greedy(a), SolveDetail::Greedy(b)) = (&warm.detail, &cold.detail) else {
            panic!("expected greedy details");
        };
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.target, b.target);
        assert_eq!(a.target_met, b.target_met);
    }

    #[test]
    fn invalidate_forces_cold_resolve() {
        let inst = community_instance(17);
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        let cold = solver.solve(&req).unwrap();
        assert_eq!(solver.epoch(), 0);
        solver.invalidate();
        assert_eq!(solver.epoch(), 1);
        let after = solver.solve(&req).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.cache_hits(), 0);
        assert_eq!(after.protectors, cold.protectors);
    }

    #[test]
    fn set_rumor_seeds_revalidates_and_invalidates() {
        let inst = community_instance(19);
        let members = inst.rumor_community_members();
        let fresh_seed = members
            .iter()
            .copied()
            .find(|&v| !inst.is_rumor_seed(v))
            .unwrap();
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        solver.solve(&req).unwrap();
        let epoch_before = solver.epoch();
        solver.set_rumor_seeds(vec![fresh_seed]).unwrap();
        assert_eq!(solver.epoch(), epoch_before + 1);
        assert_eq!(solver.instance().rumor_seeds(), &[fresh_seed]);
        let report = solver.solve(&req).unwrap();
        assert_eq!(report.cache_hits(), 0);
        // An invalid update leaves the session untouched.
        let err = solver.set_rumor_seeds(vec![]).unwrap_err();
        assert!(matches!(err, LcrbError::NoRumorSeeds));
        assert_eq!(solver.instance().rumor_seeds(), &[fresh_seed]);
    }

    #[test]
    fn scbg_solve_matches_free_function_and_caches() {
        let inst = community_instance(21);
        let free = scbg(&inst, &ScbgConfig::default());
        let mut solver = Solver::new(inst);
        let cold = solver.solve(&SolveRequest::scbg()).unwrap();
        assert_eq!(cold.protectors, free.protectors);
        let SolveDetail::Scbg(sol) = &cold.detail else {
            panic!("expected scbg detail");
        };
        assert_eq!(sol.covered, free.covered);
        let warm = solver.solve(&SolveRequest::scbg()).unwrap();
        assert_eq!(warm.cache.scbg.hits, 1);
        assert_eq!(warm.protectors, free.protectors);
    }

    #[test]
    fn gvs_solve_matches_free_function_and_caches() {
        let inst = community_instance(23);
        let config = GvsConfig {
            mc_runs: 4,
            seed: 0,
            ..GvsConfig::default()
        };
        let free = greedy_viral_stopper(&inst, &OpoaoModel::new(10), 2, &config).unwrap();
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            mc_runs: 4,
            max_hops: 10,
            ..SolveRequest::gvs(2)
        };
        let cold = solver.solve(&req).unwrap();
        assert_eq!(cold.protectors, free.protectors);
        let warm = solver.solve(&req).unwrap();
        assert_eq!(warm.cache.gvs.hits, 1);
        assert_eq!(warm.protectors, free.protectors);
        // α stops are not a GVS concept.
        let err = solver
            .solve(&SolveRequest {
                stop: StopRule::Alpha(0.5),
                ..req
            })
            .unwrap_err();
        assert!(matches!(err, LcrbError::UnsupportedRequest { .. }));
    }

    #[test]
    fn heuristics_match_legacy_selectors_and_cache_orderings() {
        let inst = community_instance(25);
        let mut solver = Solver::new(inst.clone());
        // Deterministic orderings agree with the legacy selectors.
        let md = solver
            .solve(&SolveRequest::heuristic(Algorithm::MaxDegree, 3))
            .unwrap();
        let mut ordering = MaxDegreeSelector.ordering(&inst);
        ordering.truncate(3);
        assert_eq!(md.protectors, ordering);
        let md_warm = solver
            .solve(&SolveRequest::heuristic(Algorithm::MaxDegree, 5))
            .unwrap();
        assert_eq!(md_warm.cache.ordering.hits, 1);
        let pr = solver
            .solve(&SolveRequest::heuristic(Algorithm::PageRank, 3))
            .unwrap();
        let mut pr_ordering = PageRankSelector::default().ordering(&inst);
        pr_ordering.truncate(3);
        assert_eq!(pr.protectors, pr_ordering);
        // Proximity picks come from the legacy pool.
        let pool = ProximitySelector.pool(&inst);
        let prox = solver
            .solve(&SolveRequest::heuristic(Algorithm::Proximity, 2))
            .unwrap();
        assert!(prox.protectors.iter().all(|v| pool.contains(v)));
        // Random picks are valid non-rumor nodes of the right count.
        let rnd = solver
            .solve(&SolveRequest::heuristic(Algorithm::Random, 4))
            .unwrap();
        assert_eq!(rnd.protectors.len(), 4);
        assert!(rnd.protectors.iter().all(|&v| !inst.is_rumor_seed(v)));
        let none = solver
            .solve(&SolveRequest::heuristic(Algorithm::NoBlocking, 4))
            .unwrap();
        assert!(none.protectors.is_empty());
    }

    #[test]
    fn heuristic_solves_are_deterministic_per_request() {
        let inst = community_instance(27);
        let mut a = Solver::new(inst.clone());
        let mut b = Solver::new(inst);
        for algo in [Algorithm::Proximity, Algorithm::Random] {
            let req = SolveRequest::heuristic(algo, 3);
            assert_eq!(
                a.solve(&req).unwrap().protectors,
                b.solve(&req).unwrap().protectors
            );
            // Same request twice on one solver: same picks.
            assert_eq!(
                a.solve(&req).unwrap().protectors,
                b.solve(&req).unwrap().protectors
            );
        }
    }

    #[test]
    fn unsupported_requests_are_typed_errors() {
        let inst = chain_instance();
        let mut solver = Solver::new(inst);
        for req in [
            SolveRequest {
                stop: StopRule::Alpha(0.5),
                ..SolveRequest::heuristic(Algorithm::MaxDegree, 1)
            },
            SolveRequest {
                pagerank_damping: 1.5,
                ..SolveRequest::heuristic(Algorithm::PageRank, 1)
            },
            SolveRequest {
                pagerank_damping: f64::NAN,
                ..SolveRequest::heuristic(Algorithm::PageRank, 1)
            },
        ] {
            assert!(matches!(
                solver.solve(&req).unwrap_err(),
                LcrbError::UnsupportedRequest { .. }
            ));
        }
        assert!(matches!(
            solver.solve(&SolveRequest::greedy_alpha(1.5)).unwrap_err(),
            LcrbError::InvalidAlpha { .. }
        ));
        let bad_sketch =
            SolveRequest::greedy_budget(1).with_estimator(Estimator::Sketch(crate::SketchParams {
                epsilon: 0.0,
                ..crate::SketchParams::default()
            }));
        assert!(matches!(
            solver.solve(&bad_sketch).unwrap_err(),
            LcrbError::InvalidSketchParams { .. }
        ));
    }

    #[test]
    fn failed_solve_does_not_poison_the_cache() {
        let inst = community_instance(29);
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(2)
        };
        let cold = solver.solve(&req).unwrap();
        // A failing request (bad sketch params) between two good ones.
        let bad =
            SolveRequest::greedy_budget(2).with_estimator(Estimator::Sketch(crate::SketchParams {
                delta: 1.0,
                ..crate::SketchParams::default()
            }));
        assert!(solver.solve(&bad).is_err());
        let warm = solver.solve(&req).unwrap();
        assert_eq!(warm.protectors, cold.protectors);
        assert_eq!(warm.cache_misses(), 0);
    }

    #[test]
    fn budgeted_adapter_wraps_legacy_selectors() {
        let inst = community_instance(31);
        let mut solver = Solver::new(inst);
        let adapter = Budgeted {
            selector: &RandomSelector,
            budget: 3,
        };
        assert_eq!(Selector::name(&adapter), "random");
        let via_adapter = solver.run(&adapter).unwrap();
        assert_eq!(via_adapter.algorithm, "random");
        assert_eq!(via_adapter.protectors.len(), 3);
        assert!(matches!(via_adapter.detail, SolveDetail::Heuristic));
        // The adapter and the native request share the RNG stream.
        let native = solver
            .solve(&SolveRequest::heuristic(Algorithm::Random, 3))
            .unwrap();
        assert_eq!(via_adapter.protectors, native.protectors);
        assert!(format!("{adapter:?}").contains("random"));
    }

    #[test]
    fn compare_runs_selectors_through_the_session() {
        let inst = community_instance(33);
        let mut solver = Solver::new(inst);
        let greedy = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(2)
        };
        let scbg_req = SolveRequest::scbg();
        let none = Budgeted {
            selector: &NoBlockingSelector,
            budget: 2,
        };
        let selectors: [&dyn Selector; 3] = [&greedy, &scbg_req, &none];
        let report = solver
            .compare(
                &OpoaoModel::new(10),
                &selectors,
                &MonteCarloConfig {
                    runs: 3,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].name, "greedy");
        assert_eq!(report.runs[1].name, "scbg");
        assert_eq!(report.runs[2].name, "no-blocking");
        assert!(report.runs[2].protectors.is_empty());
    }

    #[test]
    fn reports_carry_stage_timings() {
        let inst = chain_instance();
        let mut solver = Solver::new(inst);
        let report = solver
            .solve(&SolveRequest {
                realizations: 4,
                ..SolveRequest::greedy_budget(1)
            })
            .unwrap();
        let names: Vec<_> = report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["bridge", "estimator", "select"]);
        assert!(report.stage_nanos("select").is_some());
        assert!(report.stage_nanos("nope").is_none());
        assert_eq!(
            report.total_nanos(),
            report.stages.iter().map(|s| s.nanos).sum::<u128>()
        );
    }

    #[test]
    fn cache_stats_accumulate_and_delta() {
        let inst = community_instance(35);
        let mut solver = Solver::new(inst);
        let req = SolveRequest {
            realizations: 8,
            max_hops: 10,
            ..SolveRequest::greedy_budget(1)
        };
        let before = solver.cache_stats();
        assert_eq!(before.hits() + before.misses(), 0);
        solver.solve(&req).unwrap();
        solver.solve(&req).unwrap();
        let after = solver.cache_stats();
        assert!(after.hits() >= 2);
        assert!(after.misses() >= 2);
        let delta = after.delta_since(&before);
        assert_eq!(delta.hits(), after.hits());
    }
}
