//! Greedy set cover (Algorithm 2 of the paper) with lazy evaluation,
//! plus a weighted variant and the `H(n)` approximation bound.
//!
//! Theorem 2/3 of the paper reduce LCRB-D to set cover: greedy gives
//! the optimal-up-to-constants `O(ln n)` factor, and no polynomial
//! algorithm does asymptotically better unless P = NP (Feige).

// xtask-allow-file: index -- element and set ids are dense indices assigned by this module's own builder over one arena
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lcrb_diffusion::{StopReason, WorkMeter};

/// The result of a greedy set cover run.
#[derive(Clone, Debug, PartialEq)]
pub struct SetCoverSolution {
    /// Indices of the selected sets, in selection order.
    pub selected: Vec<usize>,
    /// Number of universe elements covered by the selection.
    pub covered: usize,
    /// Total cost of the selection (= `selected.len()` for the
    /// unweighted variant).
    pub cost: f64,
}

/// Classic greedy set cover: repeatedly pick the set covering the
/// most uncovered elements, until the universe is covered or no set
/// adds coverage.
///
/// Elements are integers in `0..universe_size`; `sets[i]` lists the
/// elements of set `i` (duplicates tolerated). Implemented with lazy
/// (CELF-style) evaluation: stale heap entries are re-scored on pop,
/// which is sound because coverage gain only shrinks as elements get
/// covered.
///
/// If some elements appear in no set, they stay uncovered and
/// `covered < universe_size` on return.
///
/// # Panics
///
/// Panics if a set contains an element `>= universe_size`.
///
/// # Examples
///
/// ```
/// use lcrb::setcover::greedy_set_cover;
///
/// let sets = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]];
/// let sol = greedy_set_cover(5, &sets);
/// assert_eq!(sol.covered, 5);
/// assert!(sol.selected.len() <= 3);
/// ```
#[must_use]
pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<u32>]) -> SetCoverSolution {
    let (solution, _) = greedy_set_cover_metered(universe_size, sets, &WorkMeter::unlimited())
        // xtask-allow: panic -- an unlimited meter's poll never stops the cover loop
        .expect("unlimited meter cannot stop the cover");
    solution
}

/// [`greedy_set_cover`] under a [`WorkMeter`]: the meter is polled
/// before each heap pop, so a deadline stop keeps the selection
/// prefix built so far (a valid partial cover) while a cancellation
/// aborts.
///
/// Returns `Some(reason)` alongside the (then partial) solution when
/// a deadline stopped the loop; work-unit caps do not apply to set
/// cover.
///
/// # Errors
///
/// [`StopReason::Cancelled`] when a poll observes cancellation.
pub(crate) fn greedy_set_cover_metered(
    universe_size: usize,
    sets: &[Vec<u32>],
    meter: &WorkMeter,
) -> Result<(SetCoverSolution, Option<StopReason>), StopReason> {
    for (i, s) in sets.iter().enumerate() {
        for &e in s {
            assert!(
                (e as usize) < universe_size,
                "set {i} contains element {e} outside universe of size {universe_size}"
            );
        }
    }
    let mut covered = vec![false; universe_size];
    let mut covered_count = 0usize;
    let mut selected = Vec::new();
    let mut stop = None;

    // Heap of (gain, set index); gains may be stale and are re-scored
    // on pop.
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| (s.len(), Reverse(i)))
        .collect();
    let fresh_gain =
        |i: usize, covered: &[bool]| sets[i].iter().filter(|&&e| !covered[e as usize]).count();

    while covered_count < universe_size {
        match meter.poll() {
            Ok(()) => {}
            Err(StopReason::Cancelled) => return Err(StopReason::Cancelled),
            Err(reason) => {
                stop = Some(reason);
                break;
            }
        }
        let Some((claimed, Reverse(i))) = heap.pop() else {
            break;
        };
        if claimed == 0 {
            break;
        }
        let gain = fresh_gain(i, &covered);
        if gain < claimed {
            if gain > 0 {
                heap.push((gain, Reverse(i)));
            }
            continue;
        }
        selected.push(i);
        for &e in &sets[i] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                covered_count += 1;
            }
        }
    }
    Ok((
        SetCoverSolution {
            cost: selected.len() as f64,
            selected,
            covered: covered_count,
        },
        stop,
    ))
}

/// Weighted greedy set cover: repeatedly pick the set minimizing
/// `cost / newly covered elements`. Provided as an extension for
/// protector-cost variants of LCRB-D.
///
/// # Panics
///
/// Panics if `sets` and `costs` differ in length, if a cost is not
/// strictly positive and finite, or if an element is outside the
/// universe.
#[must_use]
pub fn greedy_weighted_set_cover(
    universe_size: usize,
    sets: &[Vec<u32>],
    costs: &[f64],
) -> SetCoverSolution {
    assert_eq!(sets.len(), costs.len(), "one cost per set required");
    for (i, &c) in costs.iter().enumerate() {
        assert!(
            c.is_finite() && c > 0.0,
            "cost of set {i} must be positive and finite, got {c}"
        );
    }
    for (i, s) in sets.iter().enumerate() {
        for &e in s {
            assert!(
                (e as usize) < universe_size,
                "set {i} contains element {e} outside universe of size {universe_size}"
            );
        }
    }
    let mut covered = vec![false; universe_size];
    let mut covered_count = 0usize;
    let mut selected = Vec::new();
    let mut total_cost = 0.0;
    let mut active: Vec<usize> = (0..sets.len()).collect();

    while covered_count < universe_size {
        let mut best: Option<(f64, usize)> = None;
        active.retain(|&i| {
            let gain = sets[i].iter().filter(|&&e| !covered[e as usize]).count();
            if gain == 0 {
                return false;
            }
            let ratio = costs[i] / gain as f64;
            if best.is_none_or(|(b, _)| ratio < b) {
                best = Some((ratio, i));
            }
            true
        });
        let Some((_, i)) = best else { break };
        selected.push(i);
        total_cost += costs[i];
        for &e in &sets[i] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                covered_count += 1;
            }
        }
    }
    SetCoverSolution {
        selected,
        covered: covered_count,
        cost: total_cost,
    }
}

/// The harmonic number `H(n) = 1 + 1/2 + ... + 1/n`, the greedy set
/// cover approximation factor (Theorem 2: greedy SCBG is an
/// `H(|B|) = O(ln |B|)` approximation).
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_simple_instance() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let sol = greedy_set_cover(4, &sets);
        assert_eq!(sol.covered, 4);
        assert_eq!(sol.selected.len(), 2);
        assert!(sol.selected.contains(&0));
        assert!(sol.selected.contains(&2));
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn picks_largest_first() {
        let sets = vec![vec![0], vec![0, 1, 2, 3], vec![3, 4]];
        let sol = greedy_set_cover(5, &sets);
        assert_eq!(sol.selected[0], 1);
        assert_eq!(sol.covered, 5);
    }

    #[test]
    fn uncoverable_elements_reported() {
        let sets = vec![vec![0, 1]];
        let sol = greedy_set_cover(3, &sets);
        assert_eq!(sol.covered, 2);
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn empty_inputs() {
        let sol = greedy_set_cover(0, &[]);
        assert_eq!(sol.covered, 0);
        assert!(sol.selected.is_empty());
        let sol = greedy_set_cover(3, &[]);
        assert_eq!(sol.covered, 0);
        // Empty sets are never selected.
        let sol = greedy_set_cover(2, &[vec![], vec![0, 1]]);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn duplicate_elements_in_a_set_are_harmless() {
        let sets = vec![vec![0, 0, 1, 1]];
        let sol = greedy_set_cover(2, &sets);
        assert_eq!(sol.covered, 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_universe_elements() {
        let _ = greedy_set_cover(2, &[vec![5]]);
    }

    #[test]
    fn greedy_respects_harmonic_bound_on_known_optimum() {
        // Universe 0..12 covered optimally by 3 disjoint sets of 4;
        // decoys force greedy to behave. Greedy <= H(12) * 3.
        let sets = vec![
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![8, 9, 10, 11],
            vec![0, 4, 8],
            vec![1, 5, 9],
            vec![3, 7, 11, 10],
        ];
        let sol = greedy_set_cover(12, &sets);
        assert_eq!(sol.covered, 12);
        let bound = (harmonic(12) * 3.0).floor() as usize;
        assert!(
            sol.selected.len() <= bound,
            "{} > {bound}",
            sol.selected.len()
        );
    }

    #[test]
    fn weighted_prefers_cheap_efficient_sets() {
        // Set 0 covers everything at cost 10; sets 1 and 2 cover it
        // in two steps at total cost 2.
        let sets = vec![vec![0, 1, 2, 3], vec![0, 1], vec![2, 3]];
        let costs = vec![10.0, 1.0, 1.0];
        let sol = greedy_weighted_set_cover(4, &sets, &costs);
        assert_eq!(sol.covered, 4);
        assert_eq!(sol.cost, 2.0);
        assert!(!sol.selected.contains(&0));
    }

    #[test]
    fn weighted_with_uniform_costs_matches_unweighted_quality() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        let a = greedy_set_cover(4, &sets);
        let b = greedy_weighted_set_cover(4, &sets, &[1.0; 4]);
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.selected.len(), b.selected.len());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn weighted_rejects_zero_cost() {
        let _ = greedy_weighted_set_cover(1, &[vec![0]], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "one cost per set")]
    fn weighted_rejects_length_mismatch() {
        let _ = greedy_weighted_set_cover(1, &[vec![0]], &[]);
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H(n) ~ ln n + γ.
        let n = 10_000;
        let expected = (n as f64).ln() + 0.577_215_664_9;
        assert!((harmonic(n) - expected).abs() < 1e-4);
    }
}
